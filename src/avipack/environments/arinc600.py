"""ARINC 600 forced-air cooling conventions.

The paper's central capacity argument is quantified against ARINC 600:
racks in the electronics bay receive a cooling-air allocation of
**220 kg/h per kW** of dissipation, and "up to ten times the standard air
flow rate would be required" to handle the coming hot spots.  This module
encodes the allocation, the resulting thermal performance of a card
channel, and the hot-spot feasibility analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InputError
from ..materials.fluids import air_properties
from ..thermal.convection import (
    air_outlet_temperature,
    duct_velocity,
    forced_convection_duct,
)
from ..units import arinc_flow_to_kg_per_s, celsius_to_kelvin

#: Standard ARINC 600 specific cooling-air allocation [kg/h per kW].
STANDARD_FLOW_KG_H_PER_KW = 220.0

#: Standard coolant supply temperature at the rack inlet [K] (40 degC max).
STANDARD_INLET_TEMPERATURE = celsius_to_kelvin(40.0)


@dataclass(frozen=True)
class CardChannel:
    """The air channel alongside one plug-in module/card.

    ``card_height`` × ``card_depth`` define the wetted card face;
    ``channel_gap`` is the card-to-card air gap.
    """

    card_height: float = 0.19   # ARINC 600 3/4 ATR class
    card_depth: float = 0.32
    channel_gap: float = 0.005

    def __post_init__(self) -> None:
        for name in ("card_height", "card_depth", "channel_gap"):
            if getattr(self, name) <= 0.0:
                raise InputError(f"{name} must be positive")

    @property
    def flow_area(self) -> float:
        """Channel cross-section seen by the air [m²]."""
        return self.card_height * self.channel_gap

    @property
    def hydraulic_diameter(self) -> float:
        """Hydraulic diameter 4A/P of the channel [m]."""
        perimeter = 2.0 * (self.card_height + self.channel_gap)
        return 4.0 * self.flow_area / perimeter

    @property
    def wetted_area(self) -> float:
        """Card face area wetted by the channel air [m²]."""
        return self.card_height * self.card_depth


@dataclass(frozen=True)
class ForcedAirPerformance:
    """Thermal performance of one forced-air-cooled module."""

    mass_flow: float
    air_velocity: float
    film_coefficient: float
    outlet_temperature: float
    surface_temperature: float

    @property
    def surface_rise(self) -> float:
        """Surface temperature above the inlet [K]."""
        return self.surface_temperature - STANDARD_INLET_TEMPERATURE


def allocated_mass_flow(power: float,
                        specific_flow: float = STANDARD_FLOW_KG_H_PER_KW
                        ) -> float:
    """ARINC 600 cooling-air allocation for ``power`` [W] → kg/s."""
    return arinc_flow_to_kg_per_s(specific_flow, power)


def module_performance(power: float, channel: CardChannel = CardChannel(),
                       inlet_temperature: float = STANDARD_INLET_TEMPERATURE,
                       flow_multiplier: float = 1.0) -> ForcedAirPerformance:
    """Steady performance of a module at its ARINC 600 allocation.

    ``flow_multiplier`` scales the allocation (the paper's "ten times the
    standard air flow" experiment).  The surface temperature assumes the
    dissipation spreads uniformly over the wetted card face and uses the
    mean of inlet/outlet air as the driving temperature.
    """
    if power <= 0.0:
        raise InputError("power must be positive")
    if flow_multiplier <= 0.0:
        raise InputError("flow multiplier must be positive")
    if inlet_temperature <= 0.0:
        raise InputError("inlet temperature must be positive kelvin")
    mass_flow = allocated_mass_flow(power) * flow_multiplier
    fluid = air_properties(inlet_temperature)
    velocity = duct_velocity(mass_flow, fluid, channel.flow_area)
    h = forced_convection_duct(fluid, velocity, channel.hydraulic_diameter)
    outlet = air_outlet_temperature(inlet_temperature, power, mass_flow,
                                    fluid.specific_heat)
    mean_air = 0.5 * (inlet_temperature + outlet)
    surface = mean_air + power / (h * channel.wetted_area)
    return ForcedAirPerformance(
        mass_flow=mass_flow,
        air_velocity=velocity,
        film_coefficient=h,
        outlet_temperature=outlet,
        surface_temperature=surface,
    )


def hotspot_surface_rise(flux_w_m2: float, film_coefficient: float) -> float:
    """Local surface rise of a hot spot over the driving air [K].

    ΔT = q''/h — the first-order check that exposes the hot-spot crisis:
    at 100 W/cm² and h ≈ 100 W/m²K the rise is 10 000 K, i.e. impossible.
    """
    if flux_w_m2 < 0.0:
        raise InputError("flux must be non-negative")
    if film_coefficient <= 0.0:
        raise InputError("film coefficient must be positive")
    return flux_w_m2 / film_coefficient


def required_flow_multiplier(flux_w_cm2: float, max_surface_rise: float,
                             channel: CardChannel = CardChannel(),
                             reference_power: float = 100.0,
                             spreading_factor: float = 8.0,
                             max_multiplier: float = 50.0) -> float:
    """Flow multiplier needed to hold a hot spot within a surface rise.

    Finds, by bisection, the factor over the ARINC 600 allocation at which
    direct air keeps a local flux of ``flux_w_cm2`` [W/cm²] within
    ``max_surface_rise`` [K] of the air — using the channel film
    coefficient, which improves as velocity^0.8 in turbulent flow.

    ``spreading_factor`` accounts for board conduction enlarging the
    component footprint before the heat meets the air (copper planes
    spread a cm²-class source over roughly an order of magnitude more
    area).  ``max_multiplier`` caps the search at the point where channel
    air velocities become physically absurd (~50× the allocation is
    already ≈ 100 m/s in a card channel).

    Returns ``inf`` if even ``max_multiplier`` cannot do it: the paper's
    conclusion that forced air "cannot cope with the hot spot problems".
    """
    if flux_w_cm2 <= 0.0 or max_surface_rise <= 0.0:
        raise InputError("flux and allowed rise must be positive")
    if spreading_factor < 1.0:
        raise InputError("spreading factor must be >= 1")
    flux = flux_w_cm2 * 1.0e4 / spreading_factor

    def rise(multiplier: float) -> float:
        perf = module_performance(reference_power, channel,
                                  flow_multiplier=multiplier)
        return hotspot_surface_rise(flux, perf.film_coefficient)

    if rise(1.0) <= max_surface_rise:
        return 1.0
    if rise(max_multiplier) > max_surface_rise:
        return float("inf")
    lo, hi = 1.0, max_multiplier
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if rise(mid) > max_surface_rise:
            lo = mid
        else:
            hi = mid
    return hi
