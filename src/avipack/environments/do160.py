"""RTCA DO-160 environmental categories: vibration curves and temperature
categories.

DO-160 is the qualification bible for airborne equipment; the paper's
COSEE seats were vibrated "according to DO-160 curve C1".  This module
encodes

* the standard random-vibration PSD curve shapes (B, C, C1, D, E) as
  :class:`~avipack.mechanical.random_vibration.PowerSpectralDensity`
  break-point tables.  The shapes follow the published curves: a +6
  dB/octave rise to a plateau between 40 and 500 Hz, then a −6 dB/octave
  roll-off to 2 kHz, with the plateau level setting the severity;
* operating/survival temperature categories for equipment locations
  (controlled bay, uncontrolled bay, external).

Values are representative of the standard's tables and documented as the
simulation's qualification levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import InputError
from ..mechanical.random_vibration import PowerSpectralDensity
from ..units import celsius_to_kelvin

#: Plateau PSD level [g²/Hz] per DO-160 random vibration curve.
_CURVE_PLATEAUS: Dict[str, float] = {
    "B": 0.002,    # low-vibration fuselage zones
    "B1": 0.0012,
    "C": 0.012,    # standard equipment racks, turbofan
    "C1": 0.02,    # equipment near structure, the COSEE test level
    "D": 0.04,     # high-vibration zones
    "E": 0.08,     # engine-mounted / extreme
}


def vibration_curve(curve: str) -> PowerSpectralDensity:
    """DO-160 random-vibration PSD for ``curve`` (e.g. ``"C1"``).

    Shape: +6 dB/octave from 10 Hz to the 40–500 Hz plateau, −6 dB/octave
    from 500 Hz to 2 kHz.
    """
    if curve not in _CURVE_PLATEAUS:
        raise InputError(f"unknown DO-160 curve {curve!r}; known: "
                         f"{sorted(_CURVE_PLATEAUS)}")
    plateau = _CURVE_PLATEAUS[curve]
    # +6 dB/octave = PSD x4 per frequency doubling => level ∝ f².
    level_10 = plateau * (10.0 / 40.0) ** 2
    level_2000 = plateau * (500.0 / 2000.0) ** 2
    return PowerSpectralDensity((
        (10.0, level_10),
        (40.0, plateau),
        (500.0, plateau),
        (2000.0, level_2000),
    ))


def curve_names() -> Tuple[str, ...]:
    """Available DO-160 vibration curve identifiers."""
    return tuple(sorted(_CURVE_PLATEAUS))


@dataclass(frozen=True)
class TemperatureCategory:
    """A DO-160 section 4/5 temperature/altitude category.

    All temperatures in kelvin.
    """

    name: str
    operating_low: float
    operating_high: float
    short_time_high: float
    ground_survival_low: float
    ground_survival_high: float
    max_altitude_m: float

    def __post_init__(self) -> None:
        if not (self.ground_survival_low <= self.operating_low
                <= self.operating_high <= self.short_time_high
                <= self.ground_survival_high + 30.0):
            raise InputError(
                f"category {self.name}: inconsistent temperature ordering")
        if self.max_altitude_m <= 0.0:
            raise InputError("altitude must be positive")

    def contains_operating(self, temperature: float) -> bool:
        """True if ``temperature`` [K] is inside the operating band."""
        return self.operating_low <= temperature <= self.operating_high


#: Representative DO-160 temperature categories.
TEMPERATURE_CATEGORIES: Dict[str, TemperatureCategory] = {
    # Controlled temperature bay (most avionics racks).
    "A1": TemperatureCategory(
        name="A1",
        operating_low=celsius_to_kelvin(-15.0),
        operating_high=celsius_to_kelvin(55.0),
        short_time_high=celsius_to_kelvin(70.0),
        ground_survival_low=celsius_to_kelvin(-55.0),
        ground_survival_high=celsius_to_kelvin(85.0),
        max_altitude_m=4600.0,
    ),
    # Partially controlled zones (the IFE cabin equipment case).
    "A2": TemperatureCategory(
        name="A2",
        operating_low=celsius_to_kelvin(-25.0),
        operating_high=celsius_to_kelvin(55.0),
        short_time_high=celsius_to_kelvin(70.0),
        ground_survival_low=celsius_to_kelvin(-55.0),
        ground_survival_high=celsius_to_kelvin(85.0),
        max_altitude_m=4600.0,
    ),
    # Uncontrolled / non-pressurised zones.
    "B2": TemperatureCategory(
        name="B2",
        operating_low=celsius_to_kelvin(-45.0),
        operating_high=celsius_to_kelvin(70.0),
        short_time_high=celsius_to_kelvin(85.0),
        ground_survival_low=celsius_to_kelvin(-55.0),
        ground_survival_high=celsius_to_kelvin(85.0),
        max_altitude_m=10_700.0,
    ),
    # External / severe.
    "D2": TemperatureCategory(
        name="D2",
        operating_low=celsius_to_kelvin(-55.0),
        operating_high=celsius_to_kelvin(70.0),
        short_time_high=celsius_to_kelvin(85.0),
        ground_survival_low=celsius_to_kelvin(-55.0),
        ground_survival_high=celsius_to_kelvin(85.0),
        max_altitude_m=16_800.0,
    ),
}


def temperature_category(name: str) -> TemperatureCategory:
    """Look a temperature category up by name."""
    try:
        return TEMPERATURE_CATEGORIES[name]
    except KeyError:
        raise InputError(
            f"unknown temperature category {name!r}; known: "
            f"{sorted(TEMPERATURE_CATEGORIES)}") from None


def ambient_pressure_at_altitude(altitude_m: float) -> float:
    """ISA ambient pressure at ``altitude_m`` [Pa] (troposphere model).

    Needed to derate natural convection for equipment in unpressurised
    zones: p = p₀·(1 − 2.25577e-5·h)^5.25588.
    """
    if altitude_m < 0.0:
        raise InputError("altitude must be non-negative")
    if altitude_m > 20_000.0:
        raise InputError("ISA troposphere model limited to 20 km")
    if altitude_m <= 11_000.0:
        return 101_325.0 * (1.0 - 2.25577e-5 * altitude_m) ** 5.25588
    # Constant-temperature stratosphere layer above 11 km.
    p11 = 101_325.0 * (1.0 - 2.25577e-5 * 11_000.0) ** 5.25588
    import math

    return p11 * math.exp(-(altitude_m - 11_000.0) / 6341.6)
