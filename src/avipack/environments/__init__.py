"""Avionics environmental specifications.

* :mod:`~avipack.environments.do160` — DO-160 vibration curves and
  temperature categories;
* :mod:`~avipack.environments.arinc600` — ARINC 600 forced-air cooling
  allocations and the hot-spot feasibility analysis;
* :mod:`~avipack.environments.profiles` — qualification test profiles
  (the COSEE campaign).
"""

from .arinc600 import (
    STANDARD_FLOW_KG_H_PER_KW,
    STANDARD_INLET_TEMPERATURE,
    CardChannel,
    ForcedAirPerformance,
    allocated_mass_flow,
    hotspot_surface_rise,
    module_performance,
    required_flow_multiplier,
)
from .do160 import (
    TEMPERATURE_CATEGORIES,
    TemperatureCategory,
    ambient_pressure_at_altitude,
    curve_names,
    temperature_category,
    vibration_curve,
)
from .ingress import (
    ZONE_SEALING,
    SealingAssessment,
    SealingLevel,
    assess_sealing,
    compatible_techniques,
    required_sealing,
    seb_zone_explains_passive_choice,
    technique_compatible,
)
from .profiles import (
    AccelerationTest,
    ClimaticTest,
    QualificationCampaign,
    ThermalShockTest,
    VibrationTest,
    cosee_campaign,
)

__all__ = [
    "AccelerationTest",
    "SealingAssessment",
    "SealingLevel",
    "ZONE_SEALING",
    "assess_sealing",
    "compatible_techniques",
    "required_sealing",
    "seb_zone_explains_passive_choice",
    "technique_compatible",
    "CardChannel",
    "ClimaticTest",
    "ForcedAirPerformance",
    "QualificationCampaign",
    "STANDARD_FLOW_KG_H_PER_KW",
    "STANDARD_INLET_TEMPERATURE",
    "TEMPERATURE_CATEGORIES",
    "TemperatureCategory",
    "ThermalShockTest",
    "VibrationTest",
    "allocated_mass_flow",
    "ambient_pressure_at_altitude",
    "cosee_campaign",
    "curve_names",
    "hotspot_surface_rise",
    "module_performance",
    "required_flow_multiplier",
    "temperature_category",
    "vibration_curve",
]
