"""Qualification test profiles.

The COSEE demonstrators passed a campaign of four environmental tests
(§IV.A of the paper):

* linear acceleration — up to 9 g, 3 minutes per axis;
* vibration — random per DO-160 curve C1;
* climatic — performance evaluated between −25 and +55 °C ambient;
* thermal shock — −45 °C / +55 °C at 5 °C/min.

Each profile here is a declarative dataclass consumed by the virtual
qualification engine in :mod:`avipack.core.qualification`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import InputError
from ..mechanical.random_vibration import PowerSpectralDensity
from ..units import celsius_to_kelvin
from .do160 import vibration_curve


@dataclass(frozen=True)
class AccelerationTest:
    """Linear (quasi-static) acceleration test."""

    level_g: float = 9.0
    duration_per_axis_s: float = 180.0
    axes: Tuple[str, ...] = ("x", "y", "z")

    def __post_init__(self) -> None:
        if self.level_g <= 0.0 or self.duration_per_axis_s <= 0.0:
            raise InputError("level and duration must be positive")
        if not self.axes:
            raise InputError("need at least one test axis")
        for axis in self.axes:
            if axis not in ("x", "y", "z"):
                raise InputError(f"invalid axis {axis!r}")


@dataclass(frozen=True)
class VibrationTest:
    """Random vibration endurance test."""

    psd: PowerSpectralDensity
    duration_per_axis_s: float = 3600.0
    axes: Tuple[str, ...] = ("x", "y", "z")

    def __post_init__(self) -> None:
        if self.duration_per_axis_s <= 0.0:
            raise InputError("duration must be positive")
        if not self.axes:
            raise InputError("need at least one test axis")

    @classmethod
    def do160(cls, curve: str = "C1",
              duration_per_axis_s: float = 3600.0) -> "VibrationTest":
        """Build from a DO-160 curve name (default the paper's C1)."""
        return cls(psd=vibration_curve(curve),
                   duration_per_axis_s=duration_per_axis_s)


@dataclass(frozen=True)
class ClimaticTest:
    """Steady climatic performance evaluation at ambient extremes."""

    ambient_low: float = celsius_to_kelvin(-25.0)
    ambient_high: float = celsius_to_kelvin(55.0)
    soak_time_s: float = 7200.0

    def __post_init__(self) -> None:
        if self.ambient_low >= self.ambient_high:
            raise InputError("low ambient must be below high ambient")
        if self.ambient_low <= 0.0:
            raise InputError("ambient temperatures must be positive kelvin")
        if self.soak_time_s <= 0.0:
            raise InputError("soak time must be positive")

    def evaluation_points(self, n_points: int = 5) -> Tuple[float, ...]:
        """Evenly spaced ambient temperatures across the band [K]."""
        if n_points < 2:
            raise InputError("need at least two evaluation points")
        step = (self.ambient_high - self.ambient_low) / (n_points - 1)
        return tuple(self.ambient_low + i * step for i in range(n_points))


@dataclass(frozen=True)
class ThermalShockTest:
    """Thermal shock / rapid-cycling chamber test."""

    temperature_low: float = celsius_to_kelvin(-45.0)
    temperature_high: float = celsius_to_kelvin(55.0)
    ramp_rate_k_per_min: float = 5.0
    n_cycles: int = 10
    dwell_time_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.temperature_low >= self.temperature_high:
            raise InputError("low temperature must be below high")
        if self.temperature_low <= 0.0:
            raise InputError("temperatures must be positive kelvin")
        if self.ramp_rate_k_per_min <= 0.0:
            raise InputError("ramp rate must be positive")
        if self.n_cycles < 1:
            raise InputError("need at least one cycle")
        if self.dwell_time_s < 0.0:
            raise InputError("dwell time must be non-negative")

    @property
    def ramp_rate_k_per_s(self) -> float:
        """Chamber ramp rate [K/s]."""
        return self.ramp_rate_k_per_min / 60.0

    @property
    def swing(self) -> float:
        """Total temperature swing [K]."""
        return self.temperature_high - self.temperature_low

    @property
    def cycle_period_s(self) -> float:
        """Duration of one full cycle [s]."""
        ramp = self.swing / self.ramp_rate_k_per_s
        return 2.0 * (ramp + self.dwell_time_s)


@dataclass(frozen=True)
class QualificationCampaign:
    """The full campaign applied to the COSEE seats."""

    acceleration: AccelerationTest = field(default_factory=AccelerationTest)
    vibration: VibrationTest = field(
        default_factory=lambda: VibrationTest.do160("C1"))
    climatic: ClimaticTest = field(default_factory=ClimaticTest)
    thermal_shock: ThermalShockTest = field(
        default_factory=ThermalShockTest)


def cosee_campaign() -> QualificationCampaign:
    """The exact campaign of §IV.A: 9 g / DO-160 C1 / −25…+55 °C /
    −45/+55 °C at 5 °C/min."""
    return QualificationCampaign()
