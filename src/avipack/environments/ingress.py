"""Ingress protection: the "fluid resistance, sand and dust" constraint.

§II lists "other environmental constraints as fluid resistance, sand and
dust" among the main causes of failure, and §III notes that direct air
cooling is attractive precisely because it "does not require complex and
expensive sealing devices" — i.e. sealing and cooling trade against each
other.  This module encodes that trade:

* IP-code style sealing levels per installation zone,
* the compatibility matrix between sealing level and cooling technique
  (a sealed box cannot take direct air through the electronics),
* the sealing surcharge (complexity score) a design inherits when its
  zone forces both sealing and high power.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from ..errors import InputError

if TYPE_CHECKING:  # pragma: no cover - import cycle avoided at runtime
    from ..packaging.cooling import CoolingTechnique


class SealingLevel(enum.IntEnum):
    """Required sealing, ordered by severity."""

    NONE = 0          # conditioned avionics bay
    DUST_PROTECTED = 1  # cabin floor/ceiling zones (the SEB case)
    DUST_TIGHT = 2      # cargo, wheel-well adjacent
    SPLASH_PROOF = 3    # galley/lavatory adjacent
    IMMERSION = 4       # external / severe fluid exposure


#: Installation zone → required sealing.
ZONE_SEALING: Dict[str, SealingLevel] = {
    "avionics_bay": SealingLevel.NONE,
    "cabin_seat": SealingLevel.DUST_PROTECTED,
    "cabin_ceiling": SealingLevel.DUST_PROTECTED,
    "galley": SealingLevel.SPLASH_PROOF,
    "cargo_bay": SealingLevel.DUST_TIGHT,
    "unpressurised": SealingLevel.IMMERSION,
}

#: Techniques that pass environment air THROUGH the electronics volume
#: (values of :class:`~avipack.packaging.cooling.CoolingTechnique`; kept
#: as strings to avoid an import cycle with the packaging layer).
_OPEN_TECHNIQUES = ("direct_air_flow",)

#: Techniques that need an external air wash but keep electronics sealed.
_WASHED_TECHNIQUES = ("air_flow_around", "air_flow_through")


def required_sealing(zone: str) -> SealingLevel:
    """Sealing level mandated by an installation zone."""
    try:
        return ZONE_SEALING[zone]
    except KeyError:
        raise InputError(f"unknown zone {zone!r}; known: "
                         f"{sorted(ZONE_SEALING)}") from None


def technique_compatible(technique: "CoolingTechnique",
                         sealing: SealingLevel) -> bool:
    """Can ``technique`` be used at the given sealing requirement?

    Direct air through the electronics is ruled out from DUST_PROTECTED
    up (filters are the fan-drawback the paper cites); externally washed
    shells survive until SPLASH_PROOF; fully sealed techniques (free
    convection, conduction, liquid loops, two-phase) always work.
    """
    value = getattr(technique, "value", technique)
    if value in _OPEN_TECHNIQUES:
        return sealing < SealingLevel.DUST_PROTECTED
    if value in _WASHED_TECHNIQUES:
        return sealing < SealingLevel.SPLASH_PROOF
    return True


def compatible_techniques(zone: str) -> Tuple["CoolingTechnique", ...]:
    """All cooling techniques usable in ``zone``."""
    from ..packaging.cooling import CoolingTechnique

    sealing = required_sealing(zone)
    return tuple(t for t in CoolingTechnique
                 if technique_compatible(t, sealing))


@dataclass(frozen=True)
class SealingAssessment:
    """Sealing verdict for one equipment in one zone."""

    zone: str
    sealing: SealingLevel
    technique: "CoolingTechnique"
    compatible: bool
    complexity_surcharge: int

    @property
    def accepted(self) -> bool:
        """True when the technique survives the zone's sealing needs."""
        return self.compatible


def assess_sealing(zone: str, technique: "CoolingTechnique"
                   ) -> SealingAssessment:
    """Assess one technique in one zone.

    The complexity surcharge counts the gaskets/connectors/drains the
    sealing level adds (0 for an open bay, up to 4 for immersion) — the
    "complex and expensive sealing devices" of §III.
    """
    sealing = required_sealing(zone)
    return SealingAssessment(
        zone=zone,
        sealing=sealing,
        technique=technique,
        compatible=technique_compatible(technique, sealing),
        complexity_surcharge=int(sealing),
    )


def seb_zone_explains_passive_choice() -> bool:
    """The COSEE logic, as a checkable proposition.

    The SEB lives in a cabin seat zone (dust-protected): direct air
    through the box is incompatible without filters, while the passive
    free-convection + two-phase chain is compatible with zero surcharge
    beyond the zone's base level.  Returns True when the model agrees.
    """
    from ..packaging.cooling import CoolingTechnique

    zone = "cabin_seat"
    direct = assess_sealing(zone, CoolingTechnique.DIRECT_AIR_FLOW)
    passive = assess_sealing(zone, CoolingTechnique.FREE_CONVECTION)
    return (not direct.compatible) and passive.compatible
