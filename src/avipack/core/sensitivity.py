"""Sensitivity analysis: which parameter owns the margin?

"To identify the weaknesses of the design and margins" (§II) is, in
practice, a sensitivity study: perturb each design parameter by a small
relative step, measure the response of the metric of interest, and rank
the drivers — the tornado chart of a design review.  The module is
generic over any ``metric(parameters: dict) -> float`` callable so every
model in the library can be screened the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Mapping, Sequence, Tuple

from ..errors import InputError

#: A scalar model: parameter dict in, metric out.
Metric = Callable[[Mapping[str, float]], float]


@dataclass(frozen=True)
class SensitivityEntry:
    """Sensitivity of the metric to one parameter.

    ``elasticity`` is the dimensionless (dM/M)/(dp/p) — how many percent
    the metric moves per percent of parameter change; ``low``/``high``
    are the metric values at the perturbed ends (the tornado bar).
    """

    parameter: str
    baseline_value: float
    elasticity: float
    low: float
    high: float

    @property
    def swing(self) -> float:
        """Tornado bar width |high − low|."""
        return abs(self.high - self.low)


@dataclass(frozen=True)
class SensitivityStudy:
    """Complete one-at-a-time study, ranked by |elasticity|."""

    metric_baseline: float
    entries: Tuple[SensitivityEntry, ...]

    def ranked(self) -> Tuple[SensitivityEntry, ...]:
        """Entries sorted by descending influence."""
        return tuple(sorted(self.entries,
                            key=lambda e: abs(e.elasticity),
                            reverse=True))

    def dominant(self) -> SensitivityEntry:
        """The single strongest driver."""
        if not self.entries:
            raise InputError("study has no entries")
        return self.ranked()[0]

    def entry(self, parameter: str) -> SensitivityEntry:
        """Look one parameter's entry up."""
        for candidate in self.entries:
            if candidate.parameter == parameter:
                return candidate
        raise InputError(f"no parameter named {parameter!r}")


def one_at_a_time(metric: Metric, baseline: Mapping[str, float],
                  relative_step: float = 0.1,
                  parameters: Sequence[str] = ()) -> SensitivityStudy:
    """One-at-a-time (OAT) sensitivity of ``metric`` around ``baseline``.

    Each selected parameter is perturbed ±``relative_step`` (relative);
    the elasticity uses the central difference.  Parameters with zero
    baseline value are skipped (no relative perturbation exists).

    Parameters
    ----------
    metric:
        ``f(params) -> float``; must accept the full baseline dict.
    baseline:
        Parameter name → nominal value.
    relative_step:
        Fractional perturbation (0.1 = ±10 %).
    parameters:
        Subset to study (default: every baseline key).
    """
    if not baseline:
        raise InputError("baseline must contain at least one parameter")
    if not 0.0 < relative_step < 1.0:
        raise InputError("relative step must be in (0, 1)")
    names = list(parameters) if parameters else list(baseline)
    for name in names:
        if name not in baseline:
            raise InputError(f"unknown parameter {name!r}")

    m0 = float(metric(dict(baseline)))
    if not math.isfinite(m0):
        raise InputError("metric is not finite at the baseline")
    entries: List[SensitivityEntry] = []
    for name in names:
        value = baseline[name]
        if value == 0.0:
            continue
        low_params = dict(baseline)
        low_params[name] = value * (1.0 - relative_step)
        high_params = dict(baseline)
        high_params[name] = value * (1.0 + relative_step)
        m_low = float(metric(low_params))
        m_high = float(metric(high_params))
        if m0 != 0.0:
            elasticity = ((m_high - m_low) / (2.0 * relative_step)) / m0
        else:
            elasticity = float("inf")
        entries.append(SensitivityEntry(
            parameter=name,
            baseline_value=value,
            elasticity=elasticity,
            low=m_low,
            high=m_high,
        ))
    return SensitivityStudy(metric_baseline=m0, entries=tuple(entries))


def tornado_rows(study: SensitivityStudy,
                 top_n: int = 10) -> Tuple[Tuple[str, float, float,
                                                 float], ...]:
    """Rows for a tornado chart: (parameter, low, high, elasticity).

    Sorted by influence, truncated to ``top_n``.
    """
    if top_n < 1:
        raise InputError("top_n must be >= 1")
    return tuple((e.parameter, e.low, e.high, e.elasticity)
                 for e in study.ranked()[:top_n])
