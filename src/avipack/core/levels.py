"""The three-level thermal simulation pyramid of Fig. 4.

"Basically, we consider three levels for the simulation which correspond
to the three phases of the design":

* **Level 1 — equipment, preliminary design**: the rack's external
  constraints only; PCBs are volumetric sources.  Output: cooling-
  technology feasibility.
* **Level 2 — PCB, preliminary + detailed design**: boards represented,
  functional areas as dissipative surfaces.  Output: board temperatures,
  copper/drain/wedge-lock optimisation.
* **Level 3 — component, detailed design + validation**: every
  dissipating component with its package model.  Output: junction
  temperatures, fed to the safety and reliability calculations.

Each level consumes the previous level's boundary result, exactly as the
industrial flow hands temperatures down the pyramid.

Every runner optionally accepts a ``cache`` — any object exposing
``get_or_compute(key, compute)``, typically an
:class:`avipack.sweep.cache.SolverCache` — keyed on a stable content
fingerprint of the inputs, so a design-space sweep reaching the same
sub-problem from different candidates computes it once.  ``run_level3``
additionally accepts an injected detail solver, keeping the branch
runners picklable and testable with instrumented solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import ConvergenceError, InputError
from ..fingerprint import stable_fingerprint
from ..packaging.cooling import (
    CoolingTechnique,
    ModuleEnvelope,
    compare_techniques,
)
from ..packaging.pcb import Pcb
from ..packaging.rack import Rack, SlotResult
from ..resilience.faults import fire as _fire_fault
from ..units import celsius_to_kelvin

#: The paper's component environment ceiling (85 degC ambient rule).
BOARD_LIMIT = celsius_to_kelvin(85.0)

#: The paper's junction ceiling (125 degC rule).
JUNCTION_LIMIT = celsius_to_kelvin(125.0)


@dataclass(frozen=True)
class Level1Result:
    """Equipment-level feasibility outcome."""

    total_power: float
    technique_rises: Dict[CoolingTechnique, float]
    feasible_techniques: Tuple[CoolingTechnique, ...]
    recommended: Optional[CoolingTechnique]

    @property
    def is_feasible(self) -> bool:
        """True when at least one technique keeps the boards legal."""
        return bool(self.feasible_techniques)


def run_level1(total_power: float,
               envelope: ModuleEnvelope = ModuleEnvelope(),
               ambient: float = celsius_to_kelvin(40.0),
               cache=None) -> Level1Result:
    """Level-1: volumetric-source feasibility scan over cooling options.

    Ranks the Fig. 5 techniques by simplicity (free convection first) and
    recommends the simplest feasible one — the "select the most
    appropriate cooling technology given a level of power" decision.
    ``cache`` memoises the full scan under a content key.
    """
    if total_power <= 0.0:
        raise InputError("total power must be positive")
    if cache is not None:
        key = stable_fingerprint("level1", total_power, envelope, ambient)
        return cache.get_or_compute(
            key, lambda: run_level1(total_power, envelope, ambient))
    evaluations = compare_techniques(total_power, envelope, ambient)
    rises = {tech: ev.rise for tech, ev in evaluations.items()}
    simplicity_order = [
        CoolingTechnique.FREE_CONVECTION,
        CoolingTechnique.DIRECT_AIR_FLOW,
        CoolingTechnique.AIR_FLOW_AROUND,
        CoolingTechnique.CONDUCTION_COOLED,
        CoolingTechnique.AIR_FLOW_THROUGH,
        CoolingTechnique.LIQUID_FLOW_THROUGH,
    ]
    feasible = tuple(tech for tech in simplicity_order
                     if evaluations[tech].feasible_85c)
    recommended = feasible[0] if feasible else None
    return Level1Result(
        total_power=total_power,
        technique_rises=rises,
        feasible_techniques=feasible,
        recommended=recommended,
    )


@dataclass(frozen=True)
class Level2Result:
    """PCB-level outcome: board temperatures per slot."""

    slots: Tuple[SlotResult, ...]
    worst_board_temperature: float
    compliant: bool

    def board_temperature(self, module_name: str) -> float:
        """Board temperature of a named module [K]."""
        for slot in self.slots:
            if slot.module_name == module_name:
                return slot.board_temperature
        raise InputError(f"no module named {module_name!r} in the rack")


def run_level2(rack: Rack,
               board_limit: float = BOARD_LIMIT,
               cache=None) -> Level2Result:
    """Level-2: boards as dissipative surfaces in the rack airflow.

    ``cache`` memoises the result under a fingerprint of exactly the
    state the airflow solve reads (slot names and powers, channel
    geometry, supply temperature, plenum layout), so sweep candidates
    differing only in non-airflow choices (TIM, declared cooling mode)
    share one solve.
    """
    _fire_fault("levels.level2")
    if cache is not None:
        key = stable_fingerprint(
            "level2",
            tuple((module.name, module.power) for module in rack.modules),
            rack.channel, rack.supply_temperature, rack.series_fraction,
            board_limit)
        return cache.get_or_compute(key, lambda: run_level2(rack,
                                                            board_limit))
    slots = tuple(rack.solve())
    worst = max(slot.board_temperature for slot in slots)
    return Level2Result(slots=slots, worst_board_temperature=worst,
                        compliant=worst <= board_limit)


@dataclass(frozen=True)
class Level3Result:
    """Component-level outcome: junction temperatures.

    ``degraded`` is True when the result was produced at level-2
    fidelity (junctions estimated from the board boundary through the
    package R_jb, without the detailed board spreading solve) because
    the level-3 solve failed and the supervision policy chose graceful
    degradation over losing the candidate.
    """

    junction_temperatures: Dict[str, float]
    max_junction: float
    violations: Tuple[str, ...]
    degraded: bool = False

    @property
    def compliant(self) -> bool:
        """True when every junction respects the 125 degC rule."""
        return not self.violations


def run_level3(pcb: Pcb, board_boundary_temperature: float,
               h_film: float = 15.0,
               junction_limit: float = JUNCTION_LIMIT,
               cache=None,
               detail_solver: Optional[Callable[..., "object"]] = None
               ) -> Level3Result:
    """Level-3: detailed board solve with discrete component footprints.

    ``board_boundary_temperature`` is the level-2 air/wall boundary handed
    down the pyramid; the board is solved with film cooling on both faces
    against it, and each junction follows from the local board temperature
    through the package model.

    ``detail_solver`` overrides the board solver (default
    :meth:`~avipack.packaging.pcb.Pcb.solve_detail`); it must accept the
    same keyword arguments and return an object with
    ``junction_temperatures``.  ``cache`` memoises the level result under
    a content key of the board and boundary, so identical boards at the
    same boundary (e.g. replicated modules in a parallel-fed rack, or
    the same stack reached from different sweep candidates) solve once.
    """
    _fire_fault("levels.level3")
    if board_boundary_temperature <= 0.0:
        raise InputError("boundary temperature must be positive kelvin")
    if not pcb.components:
        raise InputError("level-3 needs a populated board")
    if cache is not None:
        key = stable_fingerprint("level3", pcb, board_boundary_temperature,
                                 h_film, junction_limit, detail_solver)
        return cache.get_or_compute(
            key, lambda: run_level3(pcb, board_boundary_temperature,
                                    h_film, junction_limit,
                                    detail_solver=detail_solver))
    solve = detail_solver if detail_solver is not None else pcb.solve_detail
    detail = solve(h_top=h_film, h_bottom=h_film,
                   ambient=board_boundary_temperature)
    junctions = detail.junction_temperatures
    violations = tuple(
        name for name, t_j in sorted(junctions.items())
        if t_j > junction_limit)
    return Level3Result(
        junction_temperatures=junctions,
        max_junction=max(junctions.values()),
        violations=violations,
    )


def degraded_level3(pcb: Pcb, board_boundary_temperature: float,
                    junction_limit: float = JUNCTION_LIMIT) -> Level3Result:
    """Level-2-fidelity fallback for a failed level-3 solve.

    Estimates every junction as the board boundary temperature plus the
    package's junction-to-board rise (P·R_jb) — the same data level 2
    already owns, with no board spreading solve.  The result is flagged
    ``degraded=True`` so reports and sweeps can surface that the
    candidate survived at reduced fidelity.
    """
    if board_boundary_temperature <= 0.0:
        raise InputError("boundary temperature must be positive kelvin")
    if not pcb.components:
        raise InputError("level-3 needs a populated board")
    junctions = {
        component.name:
        component.junction_temperature_from_board(board_boundary_temperature)
        for component in pcb.components}
    violations = tuple(name for name, t_j in sorted(junctions.items())
                       if t_j > junction_limit)
    return Level3Result(
        junction_temperatures=junctions,
        max_junction=max(junctions.values()),
        violations=violations,
        degraded=True,
    )


@dataclass(frozen=True)
class PyramidResult:
    """Full three-level run, level by level."""

    level1: Level1Result
    level2: Level2Result
    level3: Dict[str, Level3Result]

    @property
    def compliant(self) -> bool:
        """Design passes when every level passes."""
        return (self.level1.is_feasible and self.level2.compliant
                and all(result.compliant
                        for result in self.level3.values()))

    @property
    def degraded(self) -> bool:
        """True when any level-3 result ran at reduced fidelity."""
        return any(result.degraded for result in self.level3.values())


def run_pyramid(rack: Rack,
                ambient: float = celsius_to_kelvin(40.0),
                cache=None,
                envelope: Optional[ModuleEnvelope] = None,
                supervisor=None) -> PyramidResult:
    """Run the full Fig. 4 pyramid on a rack.

    Level 1 checks the rack total power; level 2 resolves per-slot board
    temperatures; level 3 runs on every module that has a populated PCB,
    using its slot's mean air temperature as the boundary.  ``cache`` is
    threaded through every level's runner.  ``envelope`` overrides the
    level-1 cooling envelope (default: the standard module envelope, as
    the preliminary-design scan has always assumed).

    ``supervisor`` (an :class:`avipack.resilience.Supervisor`, optional)
    wraps the iterative levels with the campaign's recovery policy:
    transient :class:`~avipack.errors.ConvergenceError` at level 2/3 is
    retried, and a level-3 component solve that stays broken degrades
    to :func:`degraded_level3` when the policy allows — each attempt
    recorded on the supervisor's recovery trails.
    """
    if envelope is None:
        envelope = ModuleEnvelope()
    level1 = run_level1(max(rack.total_power, 1e-9), envelope=envelope,
                        ambient=ambient, cache=cache)
    if supervisor is None:
        level2 = run_level2(rack, cache=cache)
    else:
        level2 = supervisor.call(
            "levels.level2", lambda: run_level2(rack, cache=cache),
            retry_on=(ConvergenceError,))
    level3: Dict[str, Level3Result] = {}
    for module, slot in zip(rack.modules, level2.slots, strict=True):
        if module.pcb is None or not module.pcb.components:
            continue
        boundary = 0.5 * (slot.inlet_temperature
                          + slot.outlet_temperature)
        if supervisor is None:
            level3[module.name] = run_level3(module.pcb, boundary,
                                             cache=cache)
            continue

        def compute(pcb=module.pcb, b=boundary):
            return run_level3(pcb, b, cache=cache)

        fallback = None
        if supervisor.policy.degrade_level3:
            def fallback(_exc, pcb=module.pcb, b=boundary):
                return degraded_level3(pcb, b)

        level3[module.name] = supervisor.call(
            f"levels.level3[{module.name}]", compute,
            retry_on=(ConvergenceError,), fallback=fallback,
            fallback_label="degrade-to-level2")
    return PyramidResult(level1=level1, level2=level2, level3=level3)
