"""Cooling-technology selection: the architecture decision of the flow.

Turns the paper's qualitative guidance into an explicit decision
procedure.  Given the power class, hot-spot flux, environment and
constraints (sealed equipment, available air, orientation stability), it
returns a ranked list of viable architectures, flagging when standard
forced air is no longer applicable and a two-phase system is required —
the paper's central message.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import InputError
from ..units import celsius_to_kelvin


class Architecture(enum.Enum):
    """Candidate cooling architectures."""

    FREE_CONVECTION = "free_convection"
    FORCED_AIR = "forced_air"
    CONDUCTION_TO_COLDWALL = "conduction_to_coldwall"
    HEAT_PIPE_ASSISTED = "heat_pipe_assisted"
    LOOP_HEAT_PIPE = "loop_heat_pipe"
    THERMOSYPHON = "thermosyphon"
    LIQUID_COOLING = "liquid_cooling"


@dataclass(frozen=True)
class ThermalRequirement:
    """The specification inputs to the architecture decision.

    Parameters
    ----------
    module_power:
        Dissipation per module/board [W].
    peak_flux_w_cm2:
        Worst local heat flux [W/cm²].
    air_available:
        True when the platform provides ECS cooling air (ARINC 600).
    sealed:
        True for sealed equipment (dust/fluid resistance) — rules out
        direct air over the electronics.
    orientation_stable:
        True when the equipment keeps a fixed attitude (false for
        aerobatic/missile applications) — gravity-driven thermosyphons
        need it.
    transport_distance:
        Distance from source to usable sink [m]; long distances favour
        LHPs.
    ambient:
        Environment temperature [K].
    """

    module_power: float
    peak_flux_w_cm2: float = 5.0
    air_available: bool = True
    sealed: bool = False
    orientation_stable: bool = True
    transport_distance: float = 0.1
    ambient: float = celsius_to_kelvin(40.0)
    coldwall_available: bool = True

    def __post_init__(self) -> None:
        if self.module_power <= 0.0:
            raise InputError("module power must be positive")
        if self.peak_flux_w_cm2 < 0.0:
            raise InputError("peak flux must be non-negative")
        if self.transport_distance < 0.0:
            raise InputError("transport distance must be non-negative")
        if self.ambient <= 0.0:
            raise InputError("ambient must be positive kelvin")


@dataclass(frozen=True)
class ArchitectureAssessment:
    """Verdict on one architecture."""

    architecture: Architecture
    viable: bool
    complexity: int           # 1 (simple) .. 5 (complex/expensive)
    reasons: Tuple[str, ...]


#: Capability envelope per architecture:
#: (max module power W, max local flux W/cm², complexity).
_ENVELOPES = {
    Architecture.FREE_CONVECTION: (25.0, 2.0, 1),
    Architecture.FORCED_AIR: (100.0, 10.0, 2),
    Architecture.CONDUCTION_TO_COLDWALL: (150.0, 25.0, 2),
    Architecture.HEAT_PIPE_ASSISTED: (250.0, 60.0, 3),
    Architecture.THERMOSYPHON: (300.0, 40.0, 3),
    Architecture.LOOP_HEAT_PIPE: (500.0, 80.0, 4),
    Architecture.LIQUID_COOLING: (2000.0, 150.0, 5),
}


def assess(requirement: ThermalRequirement) -> List[ArchitectureAssessment]:
    """Assess every architecture against a requirement, ranked.

    Viable architectures come first, ordered by complexity (prefer
    simple); each verdict carries human-readable reasons, which the design
    report quotes.
    """
    assessments: List[ArchitectureAssessment] = []
    for architecture, (max_power, max_flux, complexity) in \
            _ENVELOPES.items():
        reasons: List[str] = []
        viable = True
        if requirement.module_power > max_power:
            viable = False
            reasons.append(
                f"power {requirement.module_power:.0f} W exceeds the "
                f"~{max_power:.0f} W envelope")
        if requirement.peak_flux_w_cm2 > max_flux:
            viable = False
            reasons.append(
                f"local flux {requirement.peak_flux_w_cm2:.0f} W/cm2 "
                f"exceeds the ~{max_flux:.0f} W/cm2 envelope")
        if architecture in (Architecture.FORCED_AIR,) \
                and not requirement.air_available:
            viable = False
            reasons.append("no ECS cooling air at this location")
        if architecture is Architecture.FORCED_AIR and requirement.sealed:
            viable = False
            reasons.append("sealed equipment excludes direct air flow")
        if architecture is Architecture.THERMOSYPHON \
                and not requirement.orientation_stable:
            viable = False
            reasons.append("gravity return needs a stable orientation")
        if (architecture is Architecture.THERMOSYPHON
                and requirement.transport_distance > 0.3):
            viable = False
            reasons.append(
                "long horizontal transport needs capillary pumping (LHP)")
        if (architecture in (Architecture.CONDUCTION_TO_COLDWALL,
                             Architecture.LIQUID_COOLING)
                and not requirement.coldwall_available):
            viable = False
            reasons.append(
                "no cold wall / liquid loop provision at this location")
        if architecture is Architecture.FREE_CONVECTION \
                and requirement.ambient > celsius_to_kelvin(70.0):
            viable = False
            reasons.append("ambient too hot for pure free convection")
        if (architecture is Architecture.HEAT_PIPE_ASSISTED
                and requirement.transport_distance > 0.5):
            viable = False
            reasons.append(
                "transport distance beyond conventional heat pipes; "
                "use a loop heat pipe")
        if viable and not reasons:
            reasons.append("within capability envelope")
        assessments.append(ArchitectureAssessment(
            architecture=architecture, viable=viable,
            complexity=complexity, reasons=tuple(reasons)))
    assessments.sort(key=lambda item: (not item.viable, item.complexity))
    return assessments


def select_architecture(requirement: ThermalRequirement) -> Architecture:
    """The simplest viable architecture.

    Raises :class:`InputError` when nothing fits (the requirement itself
    must change — the paper's "no longer applicable" situation).
    """
    ranked = assess(requirement)
    for assessment in ranked:
        if assessment.viable:
            return assessment.architecture
    raise InputError(
        "no cooling architecture satisfies the requirement: "
        + "; ".join(f"{a.architecture.value}: {', '.join(a.reasons)}"
                    for a in ranked))


def select_for_zone(zone: str,
                    requirement: ThermalRequirement) -> Architecture:
    """Architecture selection constrained by the installation zone.

    Combines the capability envelopes with the zone's ingress-protection
    requirements (§II "fluid resistance, sand and dust"): a cabin-seat
    zone rules out direct air through the electronics regardless of the
    power class, which is exactly why the SEB went passive + two-phase.
    """
    from dataclasses import replace as _replace

    from ..environments.ingress import SealingLevel, required_sealing

    sealing = required_sealing(zone)
    # Platform provisions per zone: only the avionics bay and cargo bay
    # offer ECS air; only the avionics bay offers coldwall/liquid loops.
    zone_air = zone in ("avionics_bay", "cargo_bay")
    zone_coldwall = zone == "avionics_bay"
    requirement = _replace(
        requirement,
        air_available=requirement.air_available and zone_air,
        coldwall_available=(requirement.coldwall_available
                            and zone_coldwall))
    ranked = assess(requirement)
    for assessment in ranked:
        if not assessment.viable:
            continue
        if (assessment.architecture is Architecture.FORCED_AIR
                and sealing >= SealingLevel.DUST_PROTECTED):
            continue
        if (assessment.architecture is Architecture.FREE_CONVECTION
                and sealing >= SealingLevel.IMMERSION):
            # Fully immersed equipment is sealed so tightly that its
            # shell convection is compromised; require a pumped path.
            continue
        return assessment.architecture
    raise InputError(
        f"no architecture satisfies the requirement in zone {zone!r}")


def forced_air_no_longer_applicable(requirement: ThermalRequirement) -> bool:
    """The paper's headline predicate.

    True when neither free convection nor standard forced air is viable —
    i.e. novel (two-phase or liquid) technologies are mandatory.
    """
    ranked = {a.architecture: a for a in assess(requirement)}
    return (not ranked[Architecture.FREE_CONVECTION].viable
            and not ranked[Architecture.FORCED_AIR].viable)
