"""Virtual qualification: run the environmental campaign by simulation.

The COSEE seats "have been submitted to all the different tests without
damage" (§IV.A).  The physical chamber and shaker are hardware gates, so
this module runs the same campaign virtually:

* **linear acceleration** — quasi-static plate bending under the g-load,
  checked against laminate strength and a deflection allowable;
* **vibration** — DO-160 random PSD through Miles' equation on the board's
  fundamental mode, three-band fatigue life vs. test duration;
* **climatic** — the equipment thermal model solved at the ambient
  extremes, electronics temperature checked against its limit;
* **thermal shock** — the transient network driven by the chamber ramp,
  solder-joint Coffin–Manson life checked against the cycle count.

Equipment is described by :class:`EquipmentUnderTest`; results carry
explicit margins so a design report can quote them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..environments.profiles import QualificationCampaign
from ..errors import InputError
from ..mechanical.fatigue import (
    fatigue_life_hours,
    margin_of_safety,
    steinberg_allowable_deflection,
    thermal_cycling_life_coffin_manson,
)
from ..mechanical.plate import PlateSpec, fundamental_frequency
from ..mechanical.random_vibration import (
    default_q_factor,
    miles_rms_acceleration,
    rms_displacement_from_acceleration,
)
from ..thermal.network import ThermalNetwork
from ..thermal.transient import TransientNetworkSolver, cyclic_profile
from ..units import G0, celsius_to_kelvin


@dataclass(frozen=True)
class EquipmentUnderTest:
    """What the virtual chamber needs to know about the equipment.

    Parameters
    ----------
    name:
        Equipment reference.
    board:
        Structural idealisation of the critical PCB.
    critical_component_length:
        Body length of the fatigue-critical component [m].
    critical_component_type:
        Steinberg family of that component.
    network_builder:
        ``f(ambient_K) -> ThermalNetwork`` building the powered thermal
        model against an ambient (nodes must include ``monitor_node``).
    monitor_node:
        Network node whose temperature is the acceptance criterion.
    temperature_limit:
        Acceptance limit for ``monitor_node`` [K].
    isolator_transmissibility:
        Optional |H(f)| applied to the vibration input (isolated units).
    """

    name: str
    board: PlateSpec
    critical_component_length: float = 0.02
    critical_component_type: str = "smt_gullwing"
    network_builder: Optional[Callable[[float], ThermalNetwork]] = None
    monitor_node: str = "pcb"
    temperature_limit: float = celsius_to_kelvin(85.0)
    isolator_transmissibility: Optional[Callable[[float], float]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise InputError("equipment name must be non-empty")
        if self.critical_component_length <= 0.0:
            raise InputError("component length must be positive")
        if self.temperature_limit <= 0.0:
            raise InputError("temperature limit must be positive kelvin")


@dataclass(frozen=True)
class TestVerdict:
    """Outcome of one qualification test."""

    test_name: str
    passed: bool
    margin: float
    detail: str


@dataclass(frozen=True)
class QualificationReport:
    """Full campaign outcome."""

    equipment_name: str
    verdicts: Tuple[TestVerdict, ...]

    @property
    def passed(self) -> bool:
        """True when every test passed — the "without damage" verdict."""
        return all(verdict.passed for verdict in self.verdicts)

    def verdict(self, test_name: str) -> TestVerdict:
        """Verdict of a named test."""
        for verdict in self.verdicts:
            if verdict.test_name == test_name:
                return verdict
        raise InputError(f"no test named {test_name!r} in the report")


def run_acceleration_test(equipment: EquipmentUnderTest,
                          campaign: QualificationCampaign) -> TestVerdict:
    """Quasi-static g-load: board centre deflection vs. the allowable.

    A uniformly loaded simply supported plate deflects
    w = α·q·a⁴/D with α ≈ 0.00406 for square-ish plates; the inertial
    pressure is (surface density)·a_g.
    """
    board = equipment.board
    accel = campaign.acceleration.level_g * G0
    pressure = board.surface_density * accel
    a = min(board.length, board.width)
    deflection = 0.00406 * pressure * a ** 4 / board.flexural_rigidity
    allowable = steinberg_allowable_deflection(
        board.length, equipment.critical_component_length,
        equipment.critical_component_type,
        board_thickness=board.thickness)
    margin = margin_of_safety(deflection, allowable)
    return TestVerdict(
        test_name="linear_acceleration",
        passed=margin >= 0.0,
        margin=margin,
        detail=(f"{campaign.acceleration.level_g:.0f} g static deflection "
                f"{deflection * 1e6:.1f} um vs allowable "
                f"{allowable * 1e6:.1f} um"),
    )


def run_vibration_test(equipment: EquipmentUnderTest,
                       campaign: QualificationCampaign) -> TestVerdict:
    """Random vibration endurance per the campaign PSD (DO-160 C1)."""
    board = equipment.board
    f_n = fundamental_frequency(board)
    psd = campaign.vibration.psd
    if equipment.isolator_transmissibility is not None:
        psd = psd.through_transmissibility(
            equipment.isolator_transmissibility)
    q = default_q_factor(f_n)
    rms_g = miles_rms_acceleration(f_n, q, psd)
    rms_z = rms_displacement_from_acceleration(rms_g, f_n)
    allowable = steinberg_allowable_deflection(
        board.length, equipment.critical_component_length,
        equipment.critical_component_type,
        board_thickness=board.thickness)
    life_h = fatigue_life_hours(rms_z, allowable, f_n)
    test_hours = (campaign.vibration.duration_per_axis_s
                  * len(campaign.vibration.axes) / 3600.0)
    margin = (life_h / test_hours - 1.0) if math.isfinite(life_h) \
        else float("inf")
    return TestVerdict(
        test_name="vibration",
        passed=life_h >= test_hours,
        margin=margin,
        detail=(f"f1={f_n:.0f} Hz, response {rms_g:.2f} gRMS, "
                f"3-band life {life_h:.1f} h vs {test_hours:.1f} h test"),
    )


def run_climatic_test(equipment: EquipmentUnderTest,
                      campaign: QualificationCampaign) -> TestVerdict:
    """Steady performance at the ambient extremes (−25…+55 °C)."""
    if equipment.network_builder is None:
        raise InputError(
            f"{equipment.name}: climatic test needs a thermal model")
    worst_temp = -float("inf")
    for ambient in campaign.climatic.evaluation_points():
        network = equipment.network_builder(ambient)
        solution = network.solve(initial_guess=ambient + 20.0)
        worst_temp = max(worst_temp,
                         solution.temperature(equipment.monitor_node))
    margin = (equipment.temperature_limit - worst_temp) / max(
        worst_temp - celsius_to_kelvin(20.0), 1.0)
    return TestVerdict(
        test_name="climatic",
        passed=worst_temp <= equipment.temperature_limit,
        margin=margin,
        detail=(f"worst {equipment.monitor_node} temperature "
                f"{worst_temp - 273.15:.1f} degC vs limit "
                f"{equipment.temperature_limit - 273.15:.0f} degC"),
    )


def run_thermal_shock_test(equipment: EquipmentUnderTest,
                           campaign: QualificationCampaign) -> TestVerdict:
    """Chamber thermal shock: transient tracking + solder fatigue.

    The network follows the chamber ramp; the realised electronics swing
    (smaller than the chamber swing because of thermal mass) feeds a
    Coffin–Manson solder life compared against the test cycle count with
    a 4x life factor.
    """
    if equipment.network_builder is None:
        raise InputError(
            f"{equipment.name}: thermal shock test needs a thermal model")
    shock = campaign.thermal_shock
    network = equipment.network_builder(shock.temperature_low)
    profile = cyclic_profile(shock.temperature_low, shock.temperature_high,
                             shock.ramp_rate_k_per_s, shock.dwell_time_s)
    # Two full cycles establish the periodic swing.
    duration = 2.0 * shock.cycle_period_s
    solver = TransientNetworkSolver(network,
                                    boundary_schedules={"ambient": profile})
    result = solver.integrate(duration=duration,
                              time_step=shock.cycle_period_s / 400.0,
                              initial_temperature=shock.temperature_low)
    second_half = result.node(equipment.monitor_node)[
        result.times >= shock.cycle_period_s]
    realized_swing = float(second_half.max() - second_half.min())
    life_cycles = thermal_cycling_life_coffin_manson(
        max(realized_swing, 1.0))
    required = 4.0 * shock.n_cycles
    margin = life_cycles / required - 1.0
    return TestVerdict(
        test_name="thermal_shock",
        passed=life_cycles >= required,
        margin=margin,
        detail=(f"chamber swing {shock.swing:.0f} K, realised "
                f"{realized_swing:.1f} K, solder life "
                f"{life_cycles:.0f} cycles vs {required:.0f} required"),
    )


def run_campaign(equipment: EquipmentUnderTest,
                 campaign: QualificationCampaign) -> QualificationReport:
    """Run the full campaign and collect the verdicts."""
    verdicts = [
        run_acceleration_test(equipment, campaign),
        run_vibration_test(equipment, campaign),
    ]
    if equipment.network_builder is not None:
        verdicts.append(run_climatic_test(equipment, campaign))
        verdicts.append(run_thermal_shock_test(equipment, campaign))
    return QualificationReport(equipment_name=equipment.name,
                               verdicts=tuple(verdicts))
