"""The packaging design procedure of Fig. 1.

"SPECIFICATION ANALYSIS → {thermal design (simu/exp), mechanical design
(simu/exp)} → PACKAGING DESIGN DOCUMENT."  The mechanical and thermal
branches run **in parallel** against the same specification, each
producing margins; the document collects them.

The flow object here is deliberately close to the industrial artefact:

* a :class:`PackagingSpecification` captures the requirement set — the
  environment (DO-160 category + vibration curve), the frequency-
  allocation plan, the power budget, and the acceptance rules (85 °C
  board / 125 °C junction / 40 000 h MTBF);
* :func:`run_thermal_branch` executes the level-1/2/3 pyramid;
* :func:`run_mechanical_branch` places the first mode per the frequency
  plan and closes the random-vibration fatigue margins;
* :func:`run_design_procedure` runs both and emits a
  :class:`DesignReview` with the pass/fail verdict and every margin —
  the "design at a minimum cost and in one shot" objective.

Both branch runners are plain module-level functions (hence picklable
for process-pool sweeps), accept an optional solver ``cache`` (any
object with ``get_or_compute(key, compute)``), and can be replaced
wholesale through :func:`run_design_procedure`'s ``thermal_branch`` /
``mechanical_branch`` injection points — the hooks
:mod:`avipack.sweep` uses to batch-evaluate candidate stacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..environments.do160 import (
    TemperatureCategory,
    temperature_category,
    vibration_curve,
)
from ..errors import InputError, SpecificationError
from ..fingerprint import stable_fingerprint
from ..mechanical.fatigue import (
    fatigue_life_hours,
    margin_of_safety,
    steinberg_allowable_deflection,
)
from ..mechanical.plate import fundamental_frequency
from ..mechanical.random_vibration import (
    default_q_factor,
    miles_rms_acceleration,
    rms_displacement_from_acceleration,
)
from ..packaging.rack import Rack
from ..reliability.mtbf import PartReliability, predict_mtbf
from ..units import celsius_to_kelvin
from .levels import PyramidResult, run_pyramid


@dataclass(frozen=True)
class FrequencyAllocation:
    """The carrier's frequency-allocation plan for one equipment.

    The Ariane navigation unit example: the power supply's main resonant
    mode must land "around 500 Hz as specified in the initial frequency
    allocation plan" — i.e. inside [minimum_hz, maximum_hz].
    """

    minimum_hz: float
    maximum_hz: float

    def __post_init__(self) -> None:
        if not 0.0 < self.minimum_hz < self.maximum_hz:
            raise InputError("need 0 < minimum < maximum frequency")

    def contains(self, frequency: float) -> bool:
        """True when ``frequency`` respects the plan."""
        return self.minimum_hz <= frequency <= self.maximum_hz

    @property
    def center(self) -> float:
        """Plan centre frequency [Hz]."""
        return 0.5 * (self.minimum_hz + self.maximum_hz)


@dataclass(frozen=True)
class PackagingSpecification:
    """The requirement set a packaging design must meet."""

    name: str
    temperature_category_name: str = "A1"
    vibration_curve_name: str = "C1"
    frequency_allocation: Optional[FrequencyAllocation] = None
    board_limit: float = celsius_to_kelvin(85.0)
    junction_limit: float = celsius_to_kelvin(125.0)
    mtbf_target_hours: float = 40_000.0
    mission_vibration_hours: float = 10_000.0

    def __post_init__(self) -> None:
        if not self.name:
            raise InputError("specification name must be non-empty")
        temperature_category(self.temperature_category_name)  # validates
        vibration_curve(self.vibration_curve_name)             # validates
        if self.board_limit <= 0.0 or self.junction_limit <= 0.0:
            raise InputError("temperature limits must be positive kelvin")
        if self.mtbf_target_hours <= 0.0:
            raise InputError("MTBF target must be positive")
        if self.mission_vibration_hours <= 0.0:
            raise InputError("mission vibration time must be positive")

    @property
    def category(self) -> TemperatureCategory:
        """The resolved DO-160 temperature category."""
        return temperature_category(self.temperature_category_name)


@dataclass(frozen=True)
class MechanicalReview:
    """Outcome of the mechanical branch."""

    fundamental_hz: float
    allocation_respected: bool
    response_rms_g: float
    rms_deflection: float
    allowable_deflection: float
    fatigue_life_hours: float
    fatigue_margin: float
    deflection_margin: float

    @property
    def compliant(self) -> bool:
        """Pass when the plan is respected and fatigue life covers the
        mission."""
        return self.allocation_respected and self.fatigue_margin >= 0.0


def run_mechanical_branch(rack: Rack, spec: PackagingSpecification,
                          critical_component_length: float = 0.02,
                          critical_component_type: str = "smt_gullwing",
                          cache=None) -> MechanicalReview:
    """Modal placement + random-vibration fatigue for the worst board.

    The worst board is the one with the lowest fundamental frequency
    (softest, hence largest deflections).  ``cache`` memoises the review
    under a fingerprint of exactly what the branch reads: the structural
    plates and the specification's vibration requirements.
    """
    boards = [module.pcb.as_plate() for module in rack.modules
              if module.pcb is not None]
    if not boards:
        raise InputError("mechanical branch needs at least one real PCB")
    if cache is not None:
        key = stable_fingerprint(
            "mechanical", tuple(boards), spec.vibration_curve_name,
            spec.frequency_allocation, spec.mission_vibration_hours,
            critical_component_length, critical_component_type)
        return cache.get_or_compute(
            key, lambda: run_mechanical_branch(
                rack, spec, critical_component_length,
                critical_component_type))
    plate = min(boards, key=fundamental_frequency)
    f_1 = fundamental_frequency(plate)
    allocation_ok = (spec.frequency_allocation is None
                     or spec.frequency_allocation.contains(f_1))
    psd = vibration_curve(spec.vibration_curve_name)
    q = default_q_factor(f_1)
    rms_g = miles_rms_acceleration(f_1, q, psd)
    rms_z = rms_displacement_from_acceleration(rms_g, f_1)
    allowable = steinberg_allowable_deflection(
        plate.length, critical_component_length, critical_component_type,
        board_thickness=plate.thickness)
    life = fatigue_life_hours(rms_z, allowable, f_1)
    fatigue_margin = (life / spec.mission_vibration_hours - 1.0
                      if math.isfinite(life) else float("inf"))
    deflection_margin = margin_of_safety(3.0 * rms_z, allowable)
    return MechanicalReview(
        fundamental_hz=f_1,
        allocation_respected=allocation_ok,
        response_rms_g=rms_g,
        rms_deflection=rms_z,
        allowable_deflection=allowable,
        fatigue_life_hours=life,
        fatigue_margin=fatigue_margin,
        deflection_margin=deflection_margin,
    )


def run_thermal_branch(rack: Rack, spec: PackagingSpecification,
                       cache=None, supervisor=None) -> PyramidResult:
    """Thermal branch of Fig. 1: the level-1/2/3 pyramid for a spec.

    Runs the pyramid at the specification's worst-case operating
    ambient, using the first module's cooling envelope for the level-1
    technique scan (every rack the library builds is homogeneous; the
    standard envelope is used for bare racks).  ``supervisor`` (an
    :class:`avipack.resilience.Supervisor`, optional) applies the
    campaign's retry/degradation policy to the iterative levels.
    """
    envelope = rack.modules[0].envelope if rack.modules else None
    return run_pyramid(rack, ambient=spec.category.operating_high,
                       cache=cache, envelope=envelope,
                       supervisor=supervisor)


#: Signature shared by injectable Fig. 1 branch runners.
BranchRunner = Callable[..., object]


@dataclass(frozen=True)
class DesignReview:
    """The packaging design document's verdict block."""

    specification: PackagingSpecification
    thermal: PyramidResult
    mechanical: MechanicalReview
    mtbf_hours: Optional[float]
    violations: Tuple[str, ...]

    @property
    def compliant(self) -> bool:
        """One-shot success: every branch green."""
        return not self.violations


def run_design_procedure(rack: Rack, spec: PackagingSpecification,
                         parts: Optional[List[PartReliability]] = None,
                         strict: bool = False,
                         cache=None,
                         thermal_branch: Optional[BranchRunner] = None,
                         mechanical_branch: Optional[BranchRunner] = None,
                         supervisor=None) -> DesignReview:
    """Run the full Fig. 1 procedure on a rack against a specification.

    ``parts`` (optional) enables the reliability roll-up using the
    level-3 junction temperatures.  With ``strict=True`` a non-compliant
    design raises :class:`SpecificationError` instead of returning.

    ``cache`` memoises solver sub-results across calls (see
    :mod:`avipack.sweep.cache`); ``thermal_branch`` and
    ``mechanical_branch`` replace the default branch runners
    (:func:`run_thermal_branch`, :func:`run_mechanical_branch`) — both
    are called as ``branch(rack, spec, cache=cache)``.

    ``supervisor`` (an :class:`avipack.resilience.Supervisor`, optional)
    applies the campaign's retry/escalation/degradation policy to the
    default thermal branch — the paper's iterate-until-compliant loop
    made survivable.  Custom branch runners keep their historical
    two-argument call shape and are not supervised here.
    """
    mechanical_runner = (mechanical_branch if mechanical_branch is not None
                         else run_mechanical_branch)
    if thermal_branch is not None:
        thermal = thermal_branch(rack, spec, cache=cache)
    else:
        thermal = run_thermal_branch(rack, spec, cache=cache,
                                     supervisor=supervisor)
    mechanical = mechanical_runner(rack, spec, cache=cache)
    violations: List[str] = []
    if not thermal.level1.is_feasible:
        violations.append("level1: no feasible cooling technique")
    if not thermal.level2.compliant:
        violations.append(
            f"level2: worst board "
            f"{thermal.level2.worst_board_temperature - 273.15:.0f} degC "
            f"exceeds {spec.board_limit - 273.15:.0f} degC")
    for module_name, level3 in thermal.level3.items():
        for part in level3.violations:
            violations.append(
                f"level3: {module_name}/{part} junction over "
                f"{spec.junction_limit - 273.15:.0f} degC")
    if not mechanical.allocation_respected:
        violations.append(
            f"mechanical: fundamental {mechanical.fundamental_hz:.0f} Hz "
            "violates the frequency-allocation plan")
    if mechanical.fatigue_margin < 0.0:
        violations.append(
            f"mechanical: fatigue life {mechanical.fatigue_life_hours:.0f} "
            f"h below the {spec.mission_vibration_hours:.0f} h mission")

    mtbf_hours: Optional[float] = None
    if parts:
        junctions: Dict[str, float] = {}
        for level3 in thermal.level3.values():
            junctions.update(level3.junction_temperatures)
        prediction = predict_mtbf(parts, junctions)
        mtbf_hours = prediction.mtbf_hours
        if mtbf_hours < spec.mtbf_target_hours:
            violations.append(
                f"reliability: MTBF {mtbf_hours:.0f} h below the "
                f"{spec.mtbf_target_hours:.0f} h target")
        violations.extend("reliability: " + violation
                          for violation in prediction.derating_violations)

    review = DesignReview(
        specification=spec,
        thermal=thermal,
        mechanical=mechanical,
        mtbf_hours=mtbf_hours,
        violations=tuple(violations),
    )
    if strict and violations:
        raise SpecificationError(
            f"design {spec.name!r} violates its specification",
            violations=tuple(violations))
    return review
