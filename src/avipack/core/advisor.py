"""Design-closure advisor: turn violations into concrete design moves.

The design procedure's goal is a product that "responds to the
specification at a minimum cost and in one shot".  When a review comes
back non-compliant, an experienced packaging engineer reaches for a
standard playbook; this module encodes it:

* frequency-allocation miss → compute the stiffening (or thickness) that
  places the mode;
* random-vibration fatigue miss → stiffening and/or isolator options
  with their side effects;
* board over-temperature → escalate the cooling technique via the
  architecture selector, or boost copper content;
* junction over-temperature → local moves (drain, spreader, TIM) ranked
  by intrusiveness;
* MTBF miss → quantify the junction-temperature reduction needed to
  close it through the Arrhenius model.

Each recommendation is a :class:`DesignMove` with a human-readable
action, the quantified parameter change, and the expected effect — the
content of the "action items" slide of a design review.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..errors import InputError
from ..mechanical.plate import (
    PlateSpec,
    fundamental_frequency,
    stiffener_rigidity_for_frequency,
    thickness_for_frequency,
)
from ..reliability.mtbf import REFERENCE_JUNCTION
from ..units import BOLTZMANN_EV
from .design_flow import DesignReview
from .selector import Architecture, ThermalRequirement, select_architecture


@dataclass(frozen=True)
class DesignMove:
    """One recommended design change.

    ``category`` groups moves ("mechanical", "thermal", "reliability"),
    ``action`` is the human-readable instruction, ``parameter`` and
    ``value`` quantify it and ``intrusiveness`` ranks the cost of the
    change (1 = parameter tweak … 5 = architecture change).
    """

    category: str
    action: str
    parameter: str
    value: float
    intrusiveness: int

    def __post_init__(self) -> None:
        if not 1 <= self.intrusiveness <= 5:
            raise InputError("intrusiveness must be in 1..5")


def advise_mode_placement(board: PlateSpec, target_hz: float
                          ) -> List[DesignMove]:
    """Moves that place a board's fundamental at ``target_hz``.

    Offers both classical options: add stiffeners (cheap, adds mass
    brackets) or thicken the laminate (touches the PCB fab).
    """
    if target_hz <= 0.0:
        raise InputError("target frequency must be positive")
    moves: List[DesignMove] = []
    current = fundamental_frequency(board)
    if current >= target_hz:
        return moves
    rigidity = stiffener_rigidity_for_frequency(board, target_hz)
    moves.append(DesignMove(
        category="mechanical",
        action=(f"add stiffeners worth {rigidity:.0f} N.m smeared "
                f"rigidity to move f1 {current:.0f} -> "
                f"{target_hz:.0f} Hz"),
        parameter="stiffener_rigidity",
        value=rigidity,
        intrusiveness=2,
    ))
    try:
        thickness = thickness_for_frequency(board, target_hz)
        moves.append(DesignMove(
            category="mechanical",
            action=(f"increase laminate thickness to "
                    f"{thickness * 1e3:.1f} mm"),
            parameter="thickness",
            value=thickness,
            intrusiveness=3,
        ))
    except InputError:
        pass  # unreachable by thickness alone; stiffeners remain
    return moves


def advise_cooling_escalation(module_power: float,
                              peak_flux_w_cm2: float,
                              air_available: bool = True
                              ) -> DesignMove:
    """The architecture move for an over-temperature board.

    An over-temperature design by definition outgrew its current
    (simplest) cooling, so the escalation skips free convection and
    recommends the simplest *active/conducted* architecture that fits.
    """
    from .selector import assess

    requirement = ThermalRequirement(
        module_power=module_power,
        peak_flux_w_cm2=peak_flux_w_cm2,
        air_available=air_available)
    architecture = next(
        (a.architecture for a in assess(requirement)
         if a.viable and a.architecture is not
         Architecture.FREE_CONVECTION),
        None)
    if architecture is None:
        architecture = select_architecture(requirement)
    intrusiveness = {
        Architecture.FREE_CONVECTION: 1,
        Architecture.FORCED_AIR: 2,
        Architecture.CONDUCTION_TO_COLDWALL: 3,
        Architecture.HEAT_PIPE_ASSISTED: 3,
        Architecture.THERMOSYPHON: 3,
        Architecture.LOOP_HEAT_PIPE: 4,
        Architecture.LIQUID_COOLING: 5,
    }[architecture]
    return DesignMove(
        category="thermal",
        action=(f"escalate the cooling architecture to "
                f"{architecture.value} for {module_power:.0f} W / "
                f"{peak_flux_w_cm2:.0f} W/cm2"),
        parameter="architecture",
        value=float(intrusiveness),
        intrusiveness=intrusiveness,
    )


def junction_drop_for_mtbf(current_mtbf_hours: float,
                           target_mtbf_hours: float,
                           current_junction: float,
                           activation_energy_ev: float = 0.45) -> float:
    """Junction-temperature reduction that closes an MTBF gap [K].

    Inverts the Arrhenius factor: the failure-rate ratio needed is
    MTBF_target/MTBF_now, and

    .. math:: \\Delta(1/T) = \\frac{k}{E_a} \\ln r \\;\\Rightarrow\\;
              T_{new} = \\left( \\frac{1}{T} + \\frac{k}{E_a}
              \\ln r \\right)^{-1}

    Returns 0 when the target is already met.
    """
    if current_mtbf_hours <= 0.0 or target_mtbf_hours <= 0.0:
        raise InputError("MTBF values must be positive")
    if current_junction <= 0.0:
        raise InputError("junction temperature must be positive kelvin")
    if activation_energy_ev <= 0.0:
        raise InputError("activation energy must be positive")
    if current_mtbf_hours >= target_mtbf_hours:
        return 0.0
    ratio = target_mtbf_hours / current_mtbf_hours
    inv_t_new = (1.0 / current_junction
                 + BOLTZMANN_EV / activation_energy_ev * math.log(ratio))
    t_new = 1.0 / inv_t_new
    return current_junction - t_new


def advise(review: DesignReview,
           module_power: Optional[float] = None,
           peak_flux_w_cm2: float = 5.0) -> List[DesignMove]:
    """Full playbook: one ranked list of moves for a failed review.

    Returns an empty list for a compliant review.  Moves are sorted by
    intrusiveness so the review board sees the cheap fixes first.
    """
    moves: List[DesignMove] = []
    if review.compliant:
        return moves
    spec = review.specification
    mech = review.mechanical

    if not mech.allocation_respected and spec.frequency_allocation:
        # Rebuild a plate surrogate from the review's numbers: advise on
        # stiffening ratio directly (f ~ sqrt(D)).
        target = spec.frequency_allocation.minimum_hz
        ratio = (target / mech.fundamental_hz) ** 2
        moves.append(DesignMove(
            category="mechanical",
            action=(f"stiffen the worst board by x{ratio:.2f} in bending"
                    f" rigidity to move f1 {mech.fundamental_hz:.0f} -> "
                    f"{target:.0f} Hz"),
            parameter="rigidity_ratio",
            value=ratio,
            intrusiveness=2,
        ))

    if mech.fatigue_margin < 0.0:
        # Deflection falls as f^-2-ish: quantify the frequency raise that
        # buys the missing life through the b=6.4 power law.
        deficit = (spec.mission_vibration_hours
                   / max(mech.fatigue_life_hours, 1e-6))
        frequency_factor = deficit ** (1.0 / (2.0 * 6.4 - 1.0))
        moves.append(DesignMove(
            category="mechanical",
            action=(f"raise the board fundamental by x"
                    f"{frequency_factor:.2f} (stiffen/re-support) to "
                    f"recover the x{deficit:.1f} fatigue-life deficit"),
            parameter="frequency_factor",
            value=frequency_factor,
            intrusiveness=2,
        ))

    thermal_violation = (not review.thermal.level2.compliant
                         or any(not l3.compliant
                                for l3 in review.thermal.level3.values()))
    if thermal_violation:
        power = module_power or review.thermal.level1.total_power
        moves.append(advise_cooling_escalation(power, peak_flux_w_cm2))
        moves.append(DesignMove(
            category="thermal",
            action="increase board copper coverage/layer count to "
                   "spread component heat (level-3 local fix)",
            parameter="copper_coverage",
            value=0.8,
            intrusiveness=1,
        ))

    if (review.mtbf_hours is not None
            and review.mtbf_hours < spec.mtbf_target_hours):
        worst_junction = max(
            (t for l3 in review.thermal.level3.values()
             for t in l3.junction_temperatures.values()),
            default=REFERENCE_JUNCTION)
        drop = junction_drop_for_mtbf(review.mtbf_hours,
                                      spec.mtbf_target_hours,
                                      worst_junction)
        moves.append(DesignMove(
            category="reliability",
            action=(f"cool the worst junction by {drop:.0f} K to close "
                    f"the MTBF gap {review.mtbf_hours:.0f} -> "
                    f"{spec.mtbf_target_hours:.0f} h through Arrhenius"),
            parameter="junction_drop_k",
            value=drop,
            intrusiveness=2,
        ))

    moves.sort(key=lambda move: move.intrusiveness)
    return moves
