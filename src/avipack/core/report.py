"""Packaging design document rendering.

The terminal artefact of Fig. 1 is the "PACKAGING DESIGN DOCUMENT".  This
module renders a :class:`~avipack.core.design_flow.DesignReview` (and a
qualification report) into the plain-text document a design review would
circulate: requirement recap, thermal pyramid results, mechanical margins,
reliability figure, and the violation list.
"""

from __future__ import annotations

from typing import List

from ..errors import InputError
from ..units import kelvin_to_celsius
from .design_flow import DesignReview
from .qualification import QualificationReport


def section_header(title: str) -> List[str]:
    """Title banner lines shared by every rendered document.

    Public so sibling report renderers (qualification, design-space
    sweeps) emit documents in one consistent style.
    """
    bar = "=" * max(len(title), 8)
    return [bar, title, bar]


#: Backward-compatible alias for the pre-1.1 private name.
_header = section_header


def render_design_document(review: DesignReview) -> str:
    """Render a design review as a plain-text design document."""
    spec = review.specification
    lines: List[str] = []
    lines += _header(f"PACKAGING DESIGN DOCUMENT - {spec.name}")
    lines.append("")
    lines.append("1. SPECIFICATION ANALYSIS")
    lines.append(f"   environment category : {spec.temperature_category_name}"
                 f" (operating {kelvin_to_celsius(spec.category.operating_low):+.0f}"
                 f" .. {kelvin_to_celsius(spec.category.operating_high):+.0f} degC)")
    lines.append(f"   vibration            : DO-160 curve "
                 f"{spec.vibration_curve_name}")
    if spec.frequency_allocation is not None:
        lines.append(f"   frequency allocation : "
                     f"[{spec.frequency_allocation.minimum_hz:.0f}, "
                     f"{spec.frequency_allocation.maximum_hz:.0f}] Hz")
    lines.append(f"   board / junction     : "
                 f"{kelvin_to_celsius(spec.board_limit):.0f} / "
                 f"{kelvin_to_celsius(spec.junction_limit):.0f} degC")
    lines.append(f"   MTBF target          : {spec.mtbf_target_hours:.0f} h")
    lines.append("")
    lines.append("2. THERMAL DESIGN (levels 1-3)")
    level1 = review.thermal.level1
    recommended = (level1.recommended.value if level1.recommended
                   else "NONE FEASIBLE")
    lines.append(f"   level 1 power        : {level1.total_power:.1f} W,"
                 f" recommended cooling: {recommended}")
    level2 = review.thermal.level2
    lines.append(f"   level 2 worst board  : "
                 f"{kelvin_to_celsius(level2.worst_board_temperature):.1f} "
                 f"degC ({'OK' if level2.compliant else 'VIOLATION'})")
    for module_name, level3 in sorted(review.thermal.level3.items()):
        lines.append(f"   level 3 {module_name:<13}: max junction "
                     f"{kelvin_to_celsius(level3.max_junction):.1f} degC "
                     f"({'OK' if level3.compliant else 'VIOLATION'})")
    lines.append("")
    lines.append("3. MECHANICAL DESIGN")
    mech = review.mechanical
    lines.append(f"   fundamental mode     : {mech.fundamental_hz:.1f} Hz "
                 f"({'in plan' if mech.allocation_respected else 'OUT OF PLAN'})")
    lines.append(f"   random response      : {mech.response_rms_g:.2f} gRMS,"
                 f" {mech.rms_deflection * 1e6:.1f} um RMS deflection")
    lines.append(f"   Steinberg allowable  : "
                 f"{mech.allowable_deflection * 1e6:.1f} um "
                 f"(margin {mech.deflection_margin:+.2f})")
    life = ("unlimited" if mech.fatigue_life_hours == float("inf")
            else f"{mech.fatigue_life_hours:.0f} h")
    lines.append(f"   fatigue life         : {life} "
                 f"(margin {mech.fatigue_margin:+.2f})")
    lines.append("")
    lines.append("4. RELIABILITY")
    if review.mtbf_hours is None:
        lines.append("   MTBF                 : not evaluated (no parts list)")
    else:
        lines.append(f"   MTBF                 : {review.mtbf_hours:.0f} h "
                     f"(target {spec.mtbf_target_hours:.0f} h)")
    lines.append("")
    lines.append("5. VERDICT")
    if review.compliant:
        lines.append("   COMPLIANT - design accepted in one shot")
    else:
        lines.append("   NON-COMPLIANT:")
        for violation in review.violations:
            lines.append(f"   - {violation}")
    return "\n".join(lines)


def render_qualification_report(report: QualificationReport) -> str:
    """Render a virtual qualification campaign report."""
    lines: List[str] = []
    lines += _header(f"QUALIFICATION REPORT - {report.equipment_name}")
    lines.append("")
    for verdict in report.verdicts:
        status = "PASS" if verdict.passed else "FAIL"
        margin = ("inf" if verdict.margin == float("inf")
                  else f"{verdict.margin:+.2f}")
        lines.append(f"  {verdict.test_name:<20} {status}  "
                     f"margin {margin}")
        lines.append(f"      {verdict.detail}")
    lines.append("")
    lines.append("OVERALL: " + ("PASS - no damage"
                                if report.passed else "FAIL"))
    return "\n".join(lines)


def summarize_margins(review: DesignReview) -> dict:
    """Machine-readable margin summary for dashboards and benches."""
    if review is None:
        raise InputError("review must not be None")
    return {
        "fundamental_hz": review.mechanical.fundamental_hz,
        "fatigue_margin": review.mechanical.fatigue_margin,
        "deflection_margin": review.mechanical.deflection_margin,
        "worst_board_c": kelvin_to_celsius(
            review.thermal.level2.worst_board_temperature),
        "mtbf_hours": review.mtbf_hours,
        "compliant": review.compliant,
        "n_violations": len(review.violations),
    }
