"""Monte-Carlo uncertainty propagation for thermal margins.

Design margins exist because parameters are uncertain: contact
resistances scatter part-to-part, film coefficients carry correlation
error, component powers depend on workload.  This module propagates
parameter distributions through any scalar model with a seeded
Monte-Carlo driver and reports the percentiles a margin policy needs
(P50/P95/P99) — turning the paper's qualitative "margins" into numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping

import numpy as np

from ..errors import InputError

#: A scalar model: parameter dict in, metric out.
Metric = Callable[[Mapping[str, float]], float]


@dataclass(frozen=True)
class Distribution:
    """One input distribution.

    ``kind`` ∈ {"normal", "uniform", "lognormal"}:

    * ``normal`` — mean ``a``, standard deviation ``b``;
    * ``uniform`` — lower ``a``, upper ``b``;
    * ``lognormal`` — median ``a``, geometric standard deviation ``b``
      (> 1), the natural choice for contact resistances.
    """

    kind: str
    a: float
    b: float

    def __post_init__(self) -> None:
        if self.kind not in ("normal", "uniform", "lognormal"):
            raise InputError(f"unknown distribution kind {self.kind!r}")
        if self.kind == "normal" and self.b < 0.0:
            raise InputError("normal sigma must be non-negative")
        if self.kind == "uniform" and self.b <= self.a:
            raise InputError("uniform upper bound must exceed lower")
        if self.kind == "lognormal" and (self.a <= 0.0 or self.b <= 1.0):
            raise InputError("lognormal needs median > 0 and GSD > 1")

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` samples."""
        if self.kind == "normal":
            return rng.normal(self.a, self.b, size)
        if self.kind == "uniform":
            return rng.uniform(self.a, self.b, size)
        return self.a * np.exp(rng.normal(0.0, math.log(self.b), size))


@dataclass(frozen=True)
class UncertaintyResult:
    """Monte-Carlo outcome for one scalar metric."""

    samples: np.ndarray
    failures: int

    @property
    def n(self) -> int:
        """Number of successful evaluations."""
        return int(self.samples.size)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return float(self.samples.std(ddof=1)) if self.n > 1 else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0–100)."""
        if not 0.0 <= q <= 100.0:
            raise InputError("percentile must be in [0, 100]")
        return float(np.percentile(self.samples, q))

    def probability_above(self, threshold: float) -> float:
        """Fraction of samples exceeding ``threshold``."""
        return float(np.mean(self.samples > threshold))

    def margin_summary(self) -> Dict[str, float]:
        """The review-board numbers: P50, P95, P99, mean, sigma."""
        return {
            "mean": self.mean,
            "std": self.std,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


def propagate(metric: Metric,
              distributions: Mapping[str, Distribution],
              n_samples: int = 1000,
              seed: int = 20100308,
              fixed: Mapping[str, float] = None) -> UncertaintyResult:
    """Propagate input distributions through ``metric``.

    Each sample draws every distributed parameter independently, merges
    the ``fixed`` parameters, and evaluates the metric; evaluations that
    raise are counted as ``failures`` (e.g. a draw that trips a device
    operating limit — itself useful information) and excluded from the
    statistics.

    Raises :class:`InputError` if fewer than 10 evaluations survive.
    """
    if not distributions:
        raise InputError("need at least one distributed parameter")
    if n_samples < 10:
        raise InputError("need at least 10 samples")
    rng = np.random.default_rng(seed)
    draws = {name: dist.sample(rng, n_samples)
             for name, dist in distributions.items()}
    results = []
    failures = 0
    for i in range(n_samples):
        params = {name: float(values[i])
                  for name, values in draws.items()}
        if fixed:
            params.update(fixed)
        try:
            value = float(metric(params))
        except Exception:
            failures += 1
            continue
        if math.isfinite(value):
            results.append(value)
        else:
            failures += 1
    if len(results) < 10:
        raise InputError(
            f"only {len(results)} of {n_samples} evaluations succeeded")
    return UncertaintyResult(samples=np.asarray(results),
                             failures=failures)
