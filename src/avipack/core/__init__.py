"""The paper's core contribution: the packaging design procedure.

* :mod:`~avipack.core.design_flow` — the Fig. 1 parallel thermal +
  mechanical procedure against a specification;
* :mod:`~avipack.core.levels` — the Fig. 4 three-level thermal pyramid;
* :mod:`~avipack.core.selector` — cooling-architecture selection;
* :mod:`~avipack.core.qualification` — the virtual environmental
  campaign;
* :mod:`~avipack.core.report` — design-document rendering.
"""

from .advisor import (
    DesignMove,
    advise,
    advise_cooling_escalation,
    advise_mode_placement,
    junction_drop_for_mtbf,
)
from .design_flow import (
    DesignReview,
    FrequencyAllocation,
    MechanicalReview,
    PackagingSpecification,
    run_design_procedure,
    run_mechanical_branch,
    run_thermal_branch,
)
from .levels import (
    BOARD_LIMIT,
    JUNCTION_LIMIT,
    Level1Result,
    Level2Result,
    Level3Result,
    PyramidResult,
    run_level1,
    run_level2,
    run_level3,
    run_pyramid,
)
from .qualification import (
    EquipmentUnderTest,
    QualificationReport,
    TestVerdict,
    run_acceleration_test,
    run_campaign,
    run_climatic_test,
    run_thermal_shock_test,
    run_vibration_test,
)
from .report import (
    render_design_document,
    render_qualification_report,
    section_header,
    summarize_margins,
)
from .selector import (
    Architecture,
    ArchitectureAssessment,
    ThermalRequirement,
    assess,
    forced_air_no_longer_applicable,
    select_architecture,
    select_for_zone,
)
from .sensitivity import (
    SensitivityEntry,
    SensitivityStudy,
    one_at_a_time,
    tornado_rows,
)
from .uncertainty import Distribution, UncertaintyResult, propagate

__all__ = [
    "Architecture",
    "DesignMove",
    "advise",
    "advise_cooling_escalation",
    "advise_mode_placement",
    "junction_drop_for_mtbf",
    "ArchitectureAssessment",
    "BOARD_LIMIT",
    "DesignReview",
    "EquipmentUnderTest",
    "FrequencyAllocation",
    "JUNCTION_LIMIT",
    "Level1Result",
    "Level2Result",
    "Level3Result",
    "MechanicalReview",
    "PackagingSpecification",
    "PyramidResult",
    "QualificationReport",
    "TestVerdict",
    "ThermalRequirement",
    "assess",
    "forced_air_no_longer_applicable",
    "Distribution",
    "SensitivityEntry",
    "SensitivityStudy",
    "UncertaintyResult",
    "one_at_a_time",
    "propagate",
    "tornado_rows",
    "render_design_document",
    "render_qualification_report",
    "run_acceleration_test",
    "run_campaign",
    "run_climatic_test",
    "run_design_procedure",
    "run_level1",
    "run_level2",
    "run_level3",
    "run_mechanical_branch",
    "run_pyramid",
    "run_thermal_branch",
    "run_thermal_shock_test",
    "run_vibration_test",
    "section_header",
    "select_architecture",
    "select_for_zone",
    "summarize_margins",
]
