"""Solver supervision: retry/escalation policies and fault injection.

The paper's Fig. 1 design procedure is explicitly iterative — analyses
loop against the specification until the design converges — and an
industrial campaign must survive individual analyses failing without
losing the batch.  This package is that survival layer:

* :mod:`~avipack.resilience.policy` — escalation ladders,
  :class:`SupervisionPolicy`, and the :class:`RecoveryTrail` diagnostic
  attached to recovered/degraded results;
* :mod:`~avipack.resilience.supervisor` — :class:`Supervisor` (generic
  retry-then-degrade around solver call sites) and
  :func:`solve_network` (the relaxation/iteration/warm-start escalation
  ladder for the thermal network solver);
* :mod:`~avipack.resilience.faults` — deterministic, seeded fault
  injection at named production sites (convergence failures,
  model-range errors, worker crashes, hangs, corrupted cache entries),
  so the sweep engine's failure isolation is tested rather than
  assumed.
"""

from .faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active,
    configure,
    corrupts,
    fire,
    install,
    uninstall,
)
from .policy import (
    DEFAULT_NETWORK_ESCALATION,
    NO_SUPERVISION,
    AttemptRecord,
    EscalationStep,
    RecoveryTrail,
    SupervisionPolicy,
)
from .supervisor import Supervisor, solve_network

__all__ = [
    "AttemptRecord",
    "DEFAULT_NETWORK_ESCALATION",
    "EscalationStep",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "NO_SUPERVISION",
    "RecoveryTrail",
    "Supervisor",
    "SupervisionPolicy",
    "active",
    "configure",
    "corrupts",
    "fire",
    "install",
    "solve_network",
    "uninstall",
]
