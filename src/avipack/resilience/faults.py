"""Deterministic, seeded fault injection at named solver sites.

The sweep engine's failure isolation should be *tested*, not assumed:
this module lets a chaos suite inject convergence failures, model-range
errors, worker-process crashes, hangs and corrupted cache entries at
named sites inside the production code paths, with decisions that are a
pure function of ``(seed, site, kind, scope)`` — so a serial and a
parallel run of the same plan fault the same candidates and rank the
same survivors.

Instrumented production sites call :func:`fire` with their site name
(``"thermal.network.solve"``, ``"levels.level2"``,
``"levels.level3[m2]"``, ``"sweep.worker"``, ``"sweep.cache"``).  With
no plan installed the call is a no-op costing one ``None`` check, so
the instrumentation stays in release code.

The durability layer (:mod:`avipack.durability`, PR 5) adds three
*data-corruption* sites probed through :func:`corrupts` with the
``"cache_corrupt"`` kind:

* ``"durability.journal_torn_write"`` — the journal truncates the
  record it is about to append (a power loss mid-``write``);
* ``"durability.journal_bitflip"`` — the journal flips one bit in the
  encoded record before appending it (storage bit rot);
* ``"durability.cache_disk_corrupt"`` — the on-disk solver cache
  treats the entry being read as damaged.

At these sites the injected error never propagates: the site *performs*
the corruption (or damage classification) so the recovery machinery —
checksums, quarantine, eviction — is exercised for real.

Determinism rules:

* A :class:`FaultSpec` matches every site whose name starts with its
  ``site`` prefix; the injection roll hashes the *full* site name, so
  per-module sites fault independently.
* Decisions are scoped: the sweep sets the scope to the candidate
  index, making injection independent of evaluation order, worker
  placement and cache state.
* Each matching ``(spec, site, scope)`` only injects for its first
  ``persist`` occurrences — retries of a transiently faulted site see
  the fault clear, which is what gives recovery policies something to
  recover from.

Crashes and hangs behave differently in a worker process than in the
parent: a worker really dies (``os._exit``) / really sleeps, proving
the pool isolation and watchdog; the parent raises
:class:`~avipack.errors.WorkerCrashError` /
:class:`~avipack.errors.WatchdogTimeout` immediately so serial runs
classify the same candidates as failed without killing the interpreter
or stalling the suite.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..errors import (
    AvipackError,
    CacheCorruptionError,
    ConvergenceError,
    InputError,
    ModelRangeError,
    WatchdogTimeout,
    WorkerCrashError,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "active",
    "configure",
    "corrupts",
    "fire",
    "install",
    "uninstall",
]

#: Supported fault kinds.
FAULT_KINDS = ("convergence", "model_range", "crash", "hang",
               "cache_corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One fault source: where, what, and how often.

    Attributes
    ----------
    site:
        Site-name prefix this spec matches (``"levels.level3"`` matches
        ``"levels.level3[m1]"`` and ``"levels.level3[m2]"``).
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Probability of injecting per ``(site, scope)``, in [0, 1].
    scopes:
        Optional explicit scope allow-list; when non-empty the spec
        only fires for those scopes (deterministic targeting for
        tests).
    """

    site: str
    kind: str
    rate: float = 1.0
    scopes: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InputError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if not self.site:
            raise InputError("fault site prefix must be non-empty")
        if not 0.0 <= self.rate <= 1.0:
            raise InputError("fault rate must be in [0, 1]")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, picklable chaos plan for one sweep.

    ``parent_pid`` defaults to the pid of the process that *built* the
    plan (the sweep parent); it is how the injector distinguishes "I am
    a pool worker, crash for real" from "I am the parent, raise a
    classifiable error instead".
    """

    specs: Tuple[FaultSpec, ...]
    seed: int = 0
    persist: int = 1
    hang_seconds: float = 30.0
    parent_pid: int = field(default_factory=os.getpid)

    def __post_init__(self) -> None:
        if self.persist < 1:
            raise InputError("persist must be >= 1")
        if self.hang_seconds <= 0.0:
            raise InputError("hang_seconds must be positive")


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at instrumented sites.

    One injector lives per process (see :func:`install`); the sweep
    sets the current scope around each candidate evaluation with
    :meth:`scoped`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._scope: Any = None
        self._counts: Dict[Tuple[str, str, str, Any], int] = {}
        self.injected: int = 0

    @property
    def in_parent(self) -> bool:
        """True when running in the process that built the plan."""
        return os.getpid() == self.plan.parent_pid

    @contextmanager
    def scoped(self, scope: Any):
        """Set the decision scope (e.g. the candidate index) for a block."""
        previous = self._scope
        self._scope = scope
        try:
            yield self
        finally:
            self._scope = previous

    # -- decision ------------------------------------------------------------

    def _roll(self, spec: FaultSpec, site: str) -> float:
        """Deterministic uniform in [0, 1) for ``(seed, spec, site, scope)``."""
        payload = repr((self.plan.seed, spec.site, spec.kind, site,
                        self._scope)).encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def fire(self, site: str) -> None:
        """Evaluate every matching spec at ``site``; may raise or exit."""
        for spec in self.plan.specs:
            if not site.startswith(spec.site):
                continue
            if spec.scopes and self._scope not in spec.scopes:
                continue
            key = (spec.site, spec.kind, site, self._scope)
            occurrence = self._counts.get(key, 0)
            self._counts[key] = occurrence + 1
            if occurrence >= self.plan.persist:
                continue
            if self._roll(spec, site) >= spec.rate:
                continue
            self.injected += 1
            self._trigger(spec, site)

    def _trigger(self, spec: FaultSpec, site: str) -> None:
        if spec.kind == "convergence":
            raise ConvergenceError(
                f"injected convergence fault at {site}",
                iterations=0, residual=float("nan"))
        if spec.kind == "model_range":
            raise ModelRangeError(f"injected model-range fault at {site}")
        if spec.kind == "crash":
            if self.in_parent:
                raise WorkerCrashError(
                    f"injected worker crash at {site} "
                    "(simulated: refusing to kill the parent process)")
            os._exit(86)
        if spec.kind == "hang":
            if self.in_parent:
                raise WatchdogTimeout(
                    f"injected hang at {site} (simulated in-process)")
            time.sleep(self.plan.hang_seconds)
            raise WatchdogTimeout(
                f"injected hang at {site} "
                f"({self.plan.hang_seconds:g} s elapsed)")
        if spec.kind == "cache_corrupt":
            raise CacheCorruptionError(
                f"injected cache corruption at {site}")
        raise InputError(f"unhandled fault kind {spec.kind!r}")


#: The process-wide injector (one per interpreter, like the worker cache).
_ACTIVE: Optional[FaultInjector] = None


def install(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` process-wide, reusing the injector if unchanged.

    Reuse preserves per-scope occurrence counters across the many tasks
    one pool worker executes, which is what makes ``persist`` faults
    transient under retry.
    """
    global _ACTIVE
    if _ACTIVE is None or _ACTIVE.plan != plan:
        _ACTIVE = FaultInjector(plan)
    return _ACTIVE


def uninstall() -> None:
    """Remove any installed plan (sites become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


def configure(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Install ``plan`` when given, uninstall when ``None``."""
    if plan is None:
        uninstall()
        return None
    return install(plan)


def active() -> Optional[FaultInjector]:
    """The currently installed injector, if any."""
    return _ACTIVE


def fire(site: str) -> None:
    """Instrumentation hook: evaluate installed faults at ``site``.

    No-op (one ``None`` check) unless a plan is installed.
    """
    if _ACTIVE is not None:
        _ACTIVE.fire(site)


#: Sentinel distinguishing "no scope given" from an explicit ``None``.
_KEEP_SCOPE = object()


def corrupts(site: str, scope: Any = _KEEP_SCOPE) -> bool:
    """True when an installed plan injects data corruption at ``site``.

    The probe form of :func:`fire` for sites whose fault is *silent data
    damage* rather than an exception: the durability layer asks whether
    to corrupt, performs the corruption itself (truncating or
    bit-flipping the bytes it was about to persist, classifying a cache
    entry as damaged), and continues — exactly how real torn writes and
    bit rot behave.  Any injected error counts as "corrupt here".

    ``scope`` (e.g. a journal record sequence number) overrides the
    injector's current scope for this one decision, so per-record
    corruption decisions stay deterministic and independent of whatever
    candidate scope surrounds the write.
    """
    if _ACTIVE is None:
        return False
    try:
        if scope is _KEEP_SCOPE:
            _ACTIVE.fire(site)
        else:
            with _ACTIVE.scoped(scope):
                _ACTIVE.fire(site)
    except AvipackError:
        return True
    return False
