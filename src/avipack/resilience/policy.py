"""Retry/escalation vocabulary and the structured recovery diagnostics.

The paper's design procedure (Fig. 1) is an *iterate-until-compliant*
loop: thermal and mechanical analyses are re-run against the
specification until the design converges.  An industrial campaign must
survive individual analyses failing without losing the batch, so every
supervised solver attempt — the baseline call, each escalated retry,
and any fidelity degradation — is recorded in a structured
:class:`RecoveryTrail` that travels with the result (and pickles
cleanly across sweep worker processes).

Three kinds of object live here:

* :class:`AttemptRecord` / :class:`RecoveryTrail` — the diagnostic
  ledger of one supervised call site;
* :class:`EscalationStep` — one rung of a solver-parameter escalation
  ladder (e.g. halve the relaxation, double the iteration budget,
  warm-start from the last iterate);
* :class:`SupervisionPolicy` — the per-sweep knobs: retry budget,
  whether level-3 failures degrade to level-2 fidelity, and the
  network-solver escalation ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import InputError

__all__ = [
    "AttemptRecord",
    "DEFAULT_NETWORK_ESCALATION",
    "EscalationStep",
    "NO_SUPERVISION",
    "RecoveryTrail",
    "SupervisionPolicy",
]


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt at a supervised call site.

    Attributes
    ----------
    attempt:
        Zero-based attempt counter within the site.
    action:
        What was tried: ``"call"``, ``"retry#n"``, an escalation step
        label such as ``"deep_relaxation(relaxation=0.175, ...)"``, or
        a degradation label such as ``"degrade-to-level2"``.
    outcome:
        ``"ok"`` or ``"failed"``.
    error_type, message:
        Exception classification when the attempt failed.
    elapsed_s:
        Wall-clock spent inside the attempt [s].
    """

    attempt: int
    action: str
    outcome: str
    error_type: str = ""
    message: str = ""
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when this attempt succeeded."""
        return self.outcome == "ok"


@dataclass(frozen=True)
class RecoveryTrail:
    """The full attempt ledger of one supervised site that misbehaved.

    A trail is only recorded when something went wrong: a site that
    succeeds on the first attempt leaves no trail.  ``recovered`` means
    a retry/escalation eventually succeeded at full fidelity;
    ``degraded`` means the site only survived by lowering fidelity
    (e.g. level-3 falling back to the level-2 boundary estimate).  A
    trail with neither flag records a failure that exhausted its
    policy.
    """

    site: str
    attempts: Tuple[AttemptRecord, ...]
    recovered: bool
    degraded: bool

    @property
    def resolved(self) -> bool:
        """True when the site ultimately produced a result."""
        return self.recovered or self.degraded

    @property
    def n_attempts(self) -> int:
        """Number of attempts recorded (including the final one)."""
        return len(self.attempts)

    def summary(self) -> str:
        """One-line human-readable digest for reports and logs."""
        parts = []
        for record in self.attempts:
            if record.ok:
                parts.append(f"{record.action} ok")
            else:
                parts.append(f"{record.action} failed({record.error_type})")
        return f"{self.site}: " + " -> ".join(parts)


@dataclass(frozen=True)
class EscalationStep:
    """One rung of a solver-parameter escalation ladder.

    Scales are applied to the *caller's* baseline parameters, so a
    ladder composes with whatever tolerances the workload already
    chose.

    Attributes
    ----------
    name:
        Step label recorded in :class:`AttemptRecord.action`.
    relaxation_scale:
        Multiplier on the under-relaxation factor (values < 1 damp
        harder).  The product is clamped to (0, 1].
    iteration_scale:
        Multiplier on the iteration budget.
    warm_start:
        Start from the previous attempt's last iterate (carried on
        :attr:`avipack.errors.ConvergenceError.last_iterate`) instead
        of the flat initial guess.
    """

    name: str
    relaxation_scale: float = 1.0
    iteration_scale: float = 1.0
    warm_start: bool = False

    def __post_init__(self) -> None:
        if self.relaxation_scale <= 0.0:
            raise InputError("relaxation_scale must be positive")
        if self.iteration_scale < 1.0:
            raise InputError("iteration_scale must be >= 1")


#: Default ladder for :meth:`avipack.thermal.network.ThermalNetwork.solve`:
#: the baseline attempt, then progressively stronger damping with a larger
#: iteration budget, warm-started from wherever the failed attempt stopped.
DEFAULT_NETWORK_ESCALATION: Tuple[EscalationStep, ...] = (
    EscalationStep("baseline"),
    EscalationStep("stronger_relaxation", relaxation_scale=0.5,
                   iteration_scale=2.0, warm_start=True),
    EscalationStep("deep_relaxation", relaxation_scale=0.25,
                   iteration_scale=5.0, warm_start=True),
)


@dataclass(frozen=True)
class SupervisionPolicy:
    """Per-campaign recovery knobs, picklable for sweep transport.

    Attributes
    ----------
    max_retries:
        Additional attempts a supervised site gets after its first
        failure on a retryable error (transient faults, convergence
        hiccups).
    degrade_level3:
        When a level-3 component solve fails beyond its retry budget,
        fall back to the level-2 boundary estimate (junction = board
        boundary + P·R_jb) and flag the result ``degraded`` instead of
        failing the candidate.
    network_escalation:
        Ladder used by :func:`avipack.resilience.solve_network` when no
        explicit ladder is given.
    """

    max_retries: int = 2
    degrade_level3: bool = True
    network_escalation: Tuple[EscalationStep, ...] = \
        DEFAULT_NETWORK_ESCALATION

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise InputError("max_retries must be >= 0")
        if not self.network_escalation:
            raise InputError("network_escalation needs at least one step")


#: Policy that disables every recovery mechanism: no retries, no
#: degradation, bare single-step escalation.  Failures propagate exactly
#: as they would without a supervisor (trails are still recorded).
NO_SUPERVISION = SupervisionPolicy(
    max_retries=0, degrade_level3=False,
    network_escalation=(EscalationStep("baseline"),))
