"""The supervision engine: retries, escalation ladders, degradation.

:class:`Supervisor` wraps iterative solver call sites with the
campaign's :class:`~avipack.resilience.policy.SupervisionPolicy` and
collects a :class:`~avipack.resilience.policy.RecoveryTrail` for every
site that misbehaved.  Two entry points cover the library's call
shapes:

* :meth:`Supervisor.call` — generic retry-then-degrade around any
  zero-argument callable (the level runners of the Fig. 4 pyramid);
* :func:`solve_network` — the escalation ladder for
  :meth:`avipack.thermal.network.ThermalNetwork.solve`: each failed
  attempt escalates to stronger relaxation and a larger iteration
  budget, warm-started from the failed attempt's last iterate.

The module deliberately imports nothing from the numerical packages —
networks are duck-typed through their ``solve`` method — so any layer
can depend on it without cycles.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple, Type

from ..errors import AvipackError, ConvergenceError
from .policy import (
    DEFAULT_NETWORK_ESCALATION,
    AttemptRecord,
    EscalationStep,
    RecoveryTrail,
    SupervisionPolicy,
)

__all__ = ["Supervisor", "solve_network"]


class Supervisor:
    """Runs supervised call sites and accumulates recovery trails.

    One supervisor lives per evaluation (per sweep candidate); its
    trails travel back to the parent attached to the candidate's
    result, so the sweep report can show exactly what was retried,
    escalated or degraded.
    """

    def __init__(self, policy: Optional[SupervisionPolicy] = None) -> None:
        self.policy = policy if policy is not None else SupervisionPolicy()
        self._trails: List[RecoveryTrail] = []

    @property
    def trails(self) -> Tuple[RecoveryTrail, ...]:
        """Every recovery trail recorded so far, in occurrence order."""
        return tuple(self._trails)

    @property
    def any_degraded(self) -> bool:
        """True when any site survived only by lowering fidelity."""
        return any(trail.degraded for trail in self._trails)

    @property
    def any_recovered(self) -> bool:
        """True when any site recovered at full fidelity after a retry."""
        return any(trail.recovered for trail in self._trails)

    def record(self, trail: RecoveryTrail) -> None:
        """Append a trail (used by :func:`solve_network` and helpers)."""
        self._trails.append(trail)

    def call(self, site: str, fn: Callable[[], object],
             retry_on: Tuple[Type[BaseException], ...] = (ConvergenceError,),
             fallback: Optional[Callable[[BaseException], object]] = None,
             fallback_label: str = "degrade") -> object:
        """Run ``fn`` under the policy's retry budget.

        Exceptions in ``retry_on`` consume retries; any other
        :class:`~avipack.errors.AvipackError` skips straight to the
        ``fallback`` (when given) — that is the level-3 "component
        failure degrades to level-2 fidelity" path.  Exceptions outside
        the :class:`AvipackError` family propagate untouched (they are
        bugs, not recoverable solver behaviour).  Whatever happens
        beyond a clean first attempt is recorded as a
        :class:`RecoveryTrail`.
        """
        attempts: List[AttemptRecord] = []
        last_exc: Optional[BaseException] = None
        for attempt in range(self.policy.max_retries + 1):
            action = "call" if attempt == 0 else f"retry#{attempt}"
            start = time.perf_counter()
            try:
                value = fn()
            except retry_on as exc:
                last_exc = exc
                attempts.append(AttemptRecord(
                    attempt, action, "failed", type(exc).__name__,
                    str(exc), time.perf_counter() - start))
                continue
            except AvipackError as exc:
                last_exc = exc
                attempts.append(AttemptRecord(
                    attempt, action, "failed", type(exc).__name__,
                    str(exc), time.perf_counter() - start))
                break
            attempts.append(AttemptRecord(
                attempt, action, "ok",
                elapsed_s=time.perf_counter() - start))
            if attempt > 0:
                self.record(RecoveryTrail(site, tuple(attempts),
                                          recovered=True, degraded=False))
            return value

        if fallback is not None:
            start = time.perf_counter()
            try:
                value = fallback(last_exc)
            except AvipackError as exc:
                last_exc = exc
                attempts.append(AttemptRecord(
                    len(attempts), fallback_label, "failed",
                    type(exc).__name__, str(exc),
                    time.perf_counter() - start))
            else:
                attempts.append(AttemptRecord(
                    len(attempts), fallback_label, "ok",
                    elapsed_s=time.perf_counter() - start))
                self.record(RecoveryTrail(site, tuple(attempts),
                                          recovered=False, degraded=True))
                return value

        self.record(RecoveryTrail(site, tuple(attempts),
                                  recovered=False, degraded=False))
        assert last_exc is not None
        raise last_exc

    def solve_network(self, network, **solve_kwargs):
        """Escalated network solve under this supervisor's policy ladder."""
        return solve_network(network,
                             escalation=self.policy.network_escalation,
                             supervisor=self, **solve_kwargs)


def solve_network(network,
                  escalation: Tuple[EscalationStep, ...] =
                  DEFAULT_NETWORK_ESCALATION,
                  supervisor: Optional[Supervisor] = None,
                  site: str = "thermal.network.solve",
                  **solve_kwargs):
    """Solve a thermal network, escalating through ``escalation`` rungs.

    Every rung scales the caller's baseline ``relaxation`` /
    ``max_iterations`` and optionally warm-starts from the previous
    attempt's last iterate (carried on
    :attr:`~avipack.errors.ConvergenceError.last_iterate`).  On
    success the :class:`~avipack.thermal.network.NetworkSolution` is
    returned; when every rung fails the final
    :class:`~avipack.errors.ConvergenceError` propagates.  If a
    ``supervisor`` is given and anything beyond a clean first attempt
    happened, the trail is recorded on it.

    ``network`` is duck-typed: any object whose ``solve`` accepts the
    :class:`~avipack.thermal.network.ThermalNetwork` keyword set works.
    """
    base_relaxation = float(solve_kwargs.pop("relaxation", 0.7))
    base_iterations = int(solve_kwargs.pop("max_iterations", 200))
    warm_start = solve_kwargs.pop("initial_temperatures", None)
    attempts: List[AttemptRecord] = []
    last_exc: Optional[ConvergenceError] = None
    for rung, step in enumerate(escalation):
        call_kwargs = dict(solve_kwargs)
        call_kwargs["relaxation"] = min(
            1.0, max(1e-3, base_relaxation * step.relaxation_scale))
        call_kwargs["max_iterations"] = max(
            1, int(round(base_iterations * step.iteration_scale)))
        warmed = step.warm_start and warm_start is not None
        if warmed:
            call_kwargs["initial_temperatures"] = warm_start
        action = (f"{step.name}(relaxation={call_kwargs['relaxation']:g}, "
                  f"max_iterations={call_kwargs['max_iterations']}"
                  f"{', warm-start' if warmed else ''})")
        start = time.perf_counter()
        try:
            solution = network.solve(**call_kwargs)
        except ConvergenceError as exc:
            last_exc = exc
            if exc.last_iterate:
                warm_start = exc.last_iterate
            attempts.append(AttemptRecord(
                rung, action, "failed", type(exc).__name__, str(exc),
                time.perf_counter() - start))
            continue
        attempts.append(AttemptRecord(
            rung, action, "ok", elapsed_s=time.perf_counter() - start))
        if rung > 0 and supervisor is not None:
            supervisor.record(RecoveryTrail(site, tuple(attempts),
                                            recovered=True,
                                            degraded=False))
        return solution
    if supervisor is not None:
        supervisor.record(RecoveryTrail(site, tuple(attempts),
                                        recovered=False, degraded=False))
    assert last_exc is not None
    raise last_exc
