"""repro — distribution shim re-exporting :mod:`avipack`.

The reproduction workspace mandates the ``repro`` import name; the
library proper lives in :mod:`avipack`.  Both names expose the same
public API::

    import repro
    repro.SeatElectronicsBox  # same object as avipack.SeatElectronicsBox
"""

from avipack import *  # noqa: F401,F403
from avipack import (  # noqa: F401
    __version__,
    core,
    environments,
    experiments,
    materials,
    mechanical,
    packaging,
    reliability,
    thermal,
    tim,
    twophase,
    units,
)
