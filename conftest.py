"""Repo-root pytest bootstrap.

Makes ``import avipack`` work when the package is not installed (CI
installs it with ``pip install -e '.[test]'``; local checkouts can just
run ``pytest`` from the repo root).  The ``src`` layout keeps the
import path explicit: installed copies win only if this insert is
absent, so tests always exercise the checkout they sit in.
"""

import pathlib
import sys

_SRC = str(pathlib.Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
