"""E4 — Fig. 5: cooling modes comparison.

Evaluates the Fig. 5 cooling principles (direct air flow, conduction
cooled, air/liquid flow through, air flow around, plus the free-
convection baseline) on the same 60 W module, prints the board
temperature per technique, and checks the capability ladder the paper's
survey implies: free convection < forced air < flow-through < liquid.
"""

import pytest

from avipack.packaging.cooling import (
    CoolingTechnique,
    compare_techniques,
    max_power_for_limit,
)
from avipack.units import kelvin_to_celsius

from conftest import fmt, print_table

MODULE_POWER = 60.0  # the paper's "next developments" module class


def test_fig05_cooling_modes(benchmark):
    results = benchmark.pedantic(
        lambda: compare_techniques(MODULE_POWER), rounds=1, iterations=1)

    rows = []
    for technique, evaluation in results.items():
        rows.append((
            technique.value,
            fmt(kelvin_to_celsius(evaluation.board_temperature)),
            fmt(evaluation.rise),
            "yes" if evaluation.feasible_85c else "NO",
        ))
    rows.sort(key=lambda row: float(row[2]))
    print_table(
        f"Fig. 5 - cooling modes at {MODULE_POWER:.0f} W/module",
        ("technique", "board [degC]", "rise [K]", "feasible (85C)"),
        rows)

    rises = {tech: ev.rise for tech, ev in results.items()}
    # Shape 1: the survey's ladder.
    assert rises[CoolingTechnique.FREE_CONVECTION] \
        > rises[CoolingTechnique.DIRECT_AIR_FLOW]
    assert rises[CoolingTechnique.DIRECT_AIR_FLOW] \
        > rises[CoolingTechnique.LIQUID_FLOW_THROUGH]
    # Shape 2: free convection cannot hold a 60 W module.
    assert not results[CoolingTechnique.FREE_CONVECTION].feasible_85c
    # Shape 3: at least one air technique and the liquid technique can.
    assert results[CoolingTechnique.LIQUID_FLOW_THROUGH].feasible_85c
    assert any(results[t].feasible_85c
               for t in (CoolingTechnique.DIRECT_AIR_FLOW,
                         CoolingTechnique.AIR_FLOW_THROUGH,
                         CoolingTechnique.CONDUCTION_COOLED))


def test_fig05_capability_ladder(benchmark):
    techniques = (CoolingTechnique.FREE_CONVECTION,
                  CoolingTechnique.DIRECT_AIR_FLOW,
                  CoolingTechnique.AIR_FLOW_THROUGH,
                  CoolingTechnique.LIQUID_FLOW_THROUGH)

    capabilities = benchmark.pedantic(
        lambda: {t: max_power_for_limit(t) for t in techniques},
        rounds=1, iterations=1)

    print_table(
        "Fig. 5 - maximum module power per technique (board <= 85 degC)",
        ("technique", "max power [W]"),
        [(t.value, fmt(p, 0)) for t, p in capabilities.items()])

    ladder = [capabilities[t] for t in techniques]
    # Shape: strictly increasing capability along the ladder.
    assert ladder == sorted(ladder)
    # Free convection tops out at a few tens of watts (the paper's reason
    # the SEB needed two-phase systems, not fans, at 40-100 W).
    assert capabilities[CoolingTechnique.FREE_CONVECTION] < 50.0
    assert capabilities[CoolingTechnique.LIQUID_FLOW_THROUGH] > 200.0
