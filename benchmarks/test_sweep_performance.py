"""Design-space sweep engine performance benchmarks.

Companion to ``test_solver_performance.py``: where that file guards the
numerical kernels, this one guards the batch layer above them — the
sweep engine must make a 200+ candidate grid *cheaper than the sum of
its candidates*, through process fan-out and cross-candidate solver
caching.  The headline check pits a cold serial sweep (no cache)
against the production configuration (4 workers, per-worker caches) on
the same grid and requires a wall-clock ratio below 0.6, identical
rankings, and a non-trivial cache hit rate.
"""

import time

import pytest

from avipack.sweep import DesignSpace, SweepRunner

#: Cold-serial / cached-parallel wall-clock ratio the engine must beat.
SPEEDUP_CEILING = 0.6


def build_grid():
    """The 240-point benchmark grid.

    Axes are chosen the way a real trade study would lay them out — and
    so that distinct candidates share sub-solves (every TIM/cooling
    choice reuses the rack airflow solve of its power/plenum bucket),
    which is precisely what the cache is for.
    """
    return DesignSpace({
        "power_per_module": (8.0, 12.0, 16.0, 20.0, 24.0),
        "series_fraction": (0.0, 0.3),
        "cooling": ("free_convection", "direct_air_flow",
                    "air_flow_around", "conduction_cooled",
                    "air_flow_through", "liquid_flow_through"),
        "tim_name": ("standard_grease", "silicone_pad",
                     "standard_silver_epoxy",
                     "nanopack_silver_flake_epoxy"),
    })


def test_sweep_parallel_cached_beats_cold_serial(table_printer):
    """The acceptance gate: 240 candidates, <0.6x cold-serial wall."""
    space = build_grid()
    assert space.size == 240

    t0 = time.perf_counter()
    cold = SweepRunner(parallel=False, use_cache=False).run(space)
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = SweepRunner(parallel=True, max_workers=4).run(space)
    t_fast = time.perf_counter() - t0

    ratio = t_fast / t_cold
    table_printer(
        "Sweep engine: cold serial vs 4-worker cached",
        ["configuration", "mode", "wall [s]", "cache hits", "hit rate"],
        [
            ["cold serial", cold.mode, f"{t_cold:.2f}",
             cold.cache.hits, f"{cold.cache.hit_rate:.0%}"],
            ["4 workers + cache", fast.mode, f"{t_fast:.2f}",
             fast.cache.hits, f"{fast.cache.hit_rate:.0%}"],
            ["ratio", "", f"{ratio:.2f}", "", ""],
        ])

    assert len(cold.outcomes) == len(fast.outcomes) == 240
    assert not cold.failures and not fast.failures
    assert fast.cache.hit_rate > 0.0
    # Same space, same verdicts, same deterministic ranking.
    assert [r.index for r in cold.ranked()] \
        == [r.index for r in fast.ranked()]
    for a, b in zip(cold.results, fast.results):
        assert a.worst_board_c == pytest.approx(b.worst_board_c)
    assert ratio < SPEEDUP_CEILING, \
        f"sweep took {ratio:.2f}x the cold-serial wall clock"


def test_sweep_cache_collapses_repeat_solves(table_printer):
    """A persistent cache serves a repeated grid entirely from memory —
    the reuse a design-iteration loop (tweak, re-sweep) sees."""
    from avipack.sweep import SolverCache, evaluate_candidate

    space = DesignSpace({
        "power_per_module": (10.0, 20.0),
        "tim_name": ("standard_grease", "nanopack_silver_flake_epoxy"),
        "cooling": ("direct_air_flow", "conduction_cooled"),
    })
    candidates = list(space.grid())
    cache = SolverCache()

    def sweep_once():
        before = cache.stats()
        for index, candidate in enumerate(candidates):
            evaluate_candidate((index, candidate, True), cache)
        after = cache.stats()
        return (after.hits - before.hits, after.misses - before.misses)

    first_hits, first_misses = sweep_once()
    second_hits, second_misses = sweep_once()
    table_printer(
        "Cache effect across repeated sweeps in one process",
        ["pass", "hits", "misses"],
        [["first", first_hits, first_misses],
         ["second", second_hits, second_misses]])
    assert first_hits > 0
    assert second_misses == 0, "second pass should be fully memoised"
    assert second_hits == first_hits + first_misses


def test_perf_sweep_serial_cached(benchmark):
    """Timed kernel for the benchmark artifact: a 24-point cached
    serial sweep (the inner loop of an interactive trade study)."""
    space = DesignSpace({
        "power_per_module": (10.0, 15.0, 20.0),
        "cooling": ("direct_air_flow", "conduction_cooled"),
        "tim_name": ("standard_grease", "silicone_pad",
                     "nanopack_silver_flake_epoxy", "nanopack_cnt_array"),
    })
    runner = SweepRunner(parallel=False, use_cache=True)
    report = benchmark(runner.run, space)
    assert report.n_candidates == 24
    assert not report.failures


def test_perf_candidate_evaluation(benchmark):
    """Timed kernel: one full Fig. 1 evaluation of a single candidate
    (build + pyramid + mechanical branch), uncached."""
    from avipack.sweep import Candidate, evaluate_candidate

    result = benchmark(evaluate_candidate, (0, Candidate(), False))
    assert result.compliant
