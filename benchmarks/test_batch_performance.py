"""Batched-solver throughput benchmarks and baseline-gate checks.

Companion to ``test_sweep_performance.py``: that file guards the
process fan-out / caching layer, this one guards the *vectorized batch
core* underneath it (:mod:`avipack.thermal.batch`).  The headline gate:
on a 200-candidate topology-sharing grid, one batched solve must beat
200 per-candidate solves by at least :data:`SPEEDUP_FLOOR`, while
amortizing at least :data:`CPF_FLOOR` candidates over every LU
factorization — and ``BENCH_solver.json`` must pin those counters so CI
catches any regression of the batching discipline.
"""

import json
import pathlib
import time

from bench_baseline import BASELINE, build_candidate_grid, compare_baseline

from avipack import perf
from avipack.thermal.batch import solve_batched

#: Minimum batched-vs-scalar solve-throughput ratio on the 200-candidate
#: topology-sharing grid (build cost excluded on both sides, so the
#: ratio measures the solver paths, not Python object construction).
SPEEDUP_FLOOR = 5.0

#: Minimum candidates amortized per LU factorization on the grid.
CPF_FLOOR = 50.0

#: Timing rounds (best-of, to shrug off shared-runner noise).
ROUNDS = 3


def _time_scalar_grid():
    """Solve-only wall time of the per-candidate path, networks fresh."""
    best = float("inf")
    for _ in range(ROUNDS):
        networks = build_candidate_grid()
        t0 = time.perf_counter()
        for net in networks:
            net.solve()
        best = min(best, time.perf_counter() - t0)
    return best


def _time_batched_grid():
    """Solve-only wall time of the batched path, networks fresh."""
    best = float("inf")
    for _ in range(ROUNDS):
        networks = build_candidate_grid()
        t0 = time.perf_counter()
        outcomes = solve_batched(networks)
        elapsed = time.perf_counter() - t0
        assert all(o.ok and o.batched for o in outcomes)
        best = min(best, elapsed)
    return best


def test_batched_grid_throughput(table_printer):
    """200 topology-sharing candidates: batched >= 5x scalar throughput."""
    t_scalar = _time_scalar_grid()
    t_batched = _time_batched_grid()
    speedup = t_scalar / t_batched

    perf.reset("network.batched")
    networks = build_candidate_grid()
    outcomes = solve_batched(networks)
    stats = perf.stats("network.batched")

    table_printer(
        "Batched sweep throughput (200-candidate grid)",
        ["path", "wall [ms]", "solves", "LU", "cand/LU"],
        [["scalar", f"{t_scalar * 1e3:.1f}", 200, 200, 1],
         ["batched", f"{t_batched * 1e3:.1f}", stats.solves,
          stats.factorizations,
          f"{stats.candidates_per_factorization:.0f}"],
         ["speedup", f"{speedup:.1f}x", "", "", ""]])

    assert len(outcomes) == 200
    assert all(o.ok and o.batched for o in outcomes)
    assert stats.batched_solves >= 1
    assert stats.batch_width == 200
    assert stats.candidates_per_factorization >= CPF_FLOOR
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched path only {speedup:.1f}x faster than per-candidate "
        f"(scalar {t_scalar * 1e3:.1f} ms, batched "
        f"{t_batched * 1e3:.1f} ms)")


def test_batched_parity_on_grid():
    """Batched temperatures match scalar solves to 1e-10 relative."""
    networks = build_candidate_grid()
    outcomes = solve_batched(networks)
    for net, outcome in zip(build_candidate_grid(), outcomes):
        reference = net.solve()
        for name, expected in reference.temperatures.items():
            got = outcome.solution.temperatures[name]
            assert abs(got - expected) <= 1e-10 * max(1.0, abs(expected))


def test_baseline_pins_batched_counters():
    """BENCH_solver.json records the batched grid with cpf >= 50."""
    document = json.loads(BASELINE.read_text())
    bench = document["benches"]["sweep_batched_grid"]
    counters = bench["counters"]
    assert counters["batched_solves"] >= 1
    assert counters["batch_width"] >= 200
    assert counters["factorizations"] >= 1
    cpf = counters["batch_width"] / counters["factorizations"]
    assert cpf >= CPF_FLOOR
    # The scalar twin is pinned too, so the committed file documents
    # the amortization (200 factorizations vs 2 for the same grid).
    scalar = document["benches"]["sweep_scalar_grid"]["counters"]
    assert scalar["factorizations"] == scalar["solves"]


def test_compare_reports_which_counter_drifted(tmp_path, capsys):
    """A drifted counter fails compare with its name and old/new values.

    Exercises the actionable-failure contract end to end on a doctored
    baseline: the message must carry the counter name and both values,
    and the ``--report`` artifact must record the regression verdict.
    """
    baseline = json.loads(BASELINE.read_text())
    doctored = json.loads(json.dumps(baseline))
    bench = doctored["benches"]["sweep_batched_grid"]
    bench["counters"]["factorizations"] = 1  # pretend it was better
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(doctored))
    report_path = tmp_path / "compare.json"

    rc = compare_baseline(pathlib.Path(baseline_path), rounds=1,
                          tolerance=100.0, report_path=report_path)
    out = capsys.readouterr().out
    assert rc == 1
    assert "counter factorizations drifted" in out
    assert "baseline 1 -> measured 2" in out
    report = json.loads(report_path.read_text())
    assert report["ok"] is False
    verdicts = report["benches"]["sweep_batched_grid"]
    assert verdicts["verdict"] == "REGRESSION"
    assert any("factorizations" in line for line in report["failures"])
