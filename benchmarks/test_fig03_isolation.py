"""E2 — Fig. 3: inertial reference system mechanical filtering.

Fig. 3 contrasts the measured rack response with the expected (filtered)
PCB response inside the IMU: the isolator/damper set acts as a mechanical
low-pass.  The bench designs the isolation for a 6 kg sensor cluster
against DO-160 curve C1, prints the rack-vs-isolated PSD rows, and checks
the filter shape: amplification confined near the mount frequency,
strong attenuation at the sensor-critical high frequencies, and a large
overall g-RMS reduction.
"""

import pytest

from avipack.environments.do160 import vibration_curve
from avipack.mechanical.isolation import damper_tuning, design_isolator

from conftest import fmt, print_table

SENSOR_MASS = 6.0          # kg, IMU sensor cluster
CRITICAL_FREQUENCY = 300.0  # Hz, gyro dither band to protect
REQUIRED_ATTENUATION = 0.05


def test_fig03_imu_isolation(benchmark):
    rack_psd = vibration_curve("C1")

    def design():
        # Pick the damping first (Q cap ~4 needs zeta ~0.125), THEN size
        # the mount frequency for the high-frequency attenuation: damping
        # chosen after the fact would degrade the roll-off.
        isolator, stiffness = design_isolator(
            equipment_mass=SENSOR_MASS,
            disturbance_frequency=CRITICAL_FREQUENCY,
            required_attenuation=REQUIRED_ATTENUATION,
            damping_ratio=0.125,
            max_sag=4.0e-3)
        tuned = damper_tuning(isolator, rack_psd, max_resonant_q=4.2)
        return isolator, tuned, stiffness

    isolator, tuned, stiffness = benchmark.pedantic(design, rounds=1,
                                                    iterations=1)

    sample_freqs = (10.0, 25.0, 50.0, 100.0, 300.0, 1000.0, 2000.0)
    rows = []
    for freq in sample_freqs:
        rack_level = rack_psd.level(freq)
        isolated_level = rack_level * tuned.transmissibility(freq) ** 2
        rows.append((fmt(freq, 0), f"{rack_level:.5f}",
                     f"{isolated_level:.5f}",
                     fmt(tuned.transmissibility(freq), 3)))
    print_table(
        "Fig. 3 - rack response (measured) vs PCB response (expected)",
        ("f [Hz]", "rack PSD [g2/Hz]", "isolated PSD [g2/Hz]", "|H|"),
        rows)
    rack_rms = rack_psd.rms_g()
    isolated_rms = tuned.response_rms_g(rack_psd)
    print(f"  mount: {tuned.mount_frequency:.1f} Hz, zeta = "
          f"{tuned.damping_ratio:.3f}, k = {stiffness / 1e3:.1f} kN/m")
    print(f"  overall: rack {rack_rms:.2f} gRMS -> PCB "
          f"{isolated_rms:.2f} gRMS")

    # Shape 1: mechanical filter - attenuation at the critical frequency.
    assert tuned.transmissibility(CRITICAL_FREQUENCY) \
        <= REQUIRED_ATTENUATION + 1e-6
    # Shape 2: resonant amplification capped by the dampers.
    assert tuned.resonant_transmissibility <= 4.2 + 0.1
    # Shape 3: the PCB overall response is substantially reduced (the
    # resonant band sits inside the C1 plateau, so the overall gRMS
    # roughly halves while the high-frequency band all but vanishes).
    assert isolated_rms < 0.7 * rack_rms
    high_band_in = rack_psd.level(1000.0)
    high_band_out = high_band_in * tuned.transmissibility(1000.0) ** 2
    assert high_band_out < 0.01 * high_band_in
    # Shape 4: low-frequency rigid-body follow-through (|H| ~ 1 below
    # the mount) - the filter is low-pass, not a notch.
    assert tuned.transmissibility(0.2 * tuned.mount_frequency) \
        == pytest.approx(1.0, abs=0.15)
