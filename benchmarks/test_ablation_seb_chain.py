"""Ablation A1 — which elements of the COSEE cooling chain matter?

The SEB chain has four design levers: how many heat pipes drain the PCB,
which TIM fills the saddles, how much seat-structure area the LHPs can
reach, and where the box is installed (seat vs ceiling).  Each ablation
sweeps one lever with the rest at the COSEE baseline and reports the
ΔT≤60 K capability — the knob-by-knob decomposition of the paper's
+150 % result.
"""

import pytest

from avipack.experiments.cosee import ceiling_installation_study
from avipack.packaging.seb import (
    SeatElectronicsBox,
    SeatStructure,
    SebConfiguration,
)

from conftest import fmt, print_table

LHP_CONFIG = SebConfiguration(cooling="hp_lhp")


def capability(seb: SeatElectronicsBox,
               config: SebConfiguration = LHP_CONFIG) -> float:
    return seb.max_power_for_delta_t(60.0, config)


def test_ablation_heat_pipe_count(benchmark):
    counts = (1, 2, 4, 8)

    results = benchmark.pedantic(
        lambda: {n: capability(SeatElectronicsBox(n_heatpipes=n))
                 for n in counts},
        rounds=1, iterations=1)

    print_table("A1a - capability vs number of internal heat pipes",
                ("HPs", "capability [W]"),
                [(str(n), fmt(c)) for n, c in results.items()])

    values = [results[n] for n in counts]
    # More pipes always help, with diminishing returns past the baseline.
    assert values == sorted(values)
    gain_1_to_4 = results[4] - results[1]
    gain_4_to_8 = results[8] - results[4]
    assert gain_1_to_4 > gain_4_to_8
    # Even a single pipe beats natural convection's ~40 W.
    assert results[1] > 45.0


def test_ablation_tim_choice(benchmark):
    tims = ("silicone_pad", "standard_grease",
            "nanopack_metal_polymer_composite")

    results = benchmark.pedantic(
        lambda: {name: capability(SeatElectronicsBox(tim_name=name))
                 for name in tims},
        rounds=1, iterations=1)

    print_table("A1b - capability vs saddle TIM",
                ("TIM", "capability [W]"),
                [(name, fmt(c)) for name, c in results.items()])

    # The paper's point: "this technology requires the use of many
    # thermal interfaces; thus the optimization of the whole thermal
    # path implies to improve the TIM" (the NANOPACK motivation).
    assert results["silicone_pad"] < results["standard_grease"] \
        < results["nanopack_metal_polymer_composite"]
    # The NANOPACK composite buys real watts over the grease baseline.
    assert results["nanopack_metal_polymer_composite"] \
        - results["standard_grease"] > 1.0


def test_ablation_structure_area(benchmark):
    areas = (0.09, 0.18, 0.36)

    def run():
        outcome = {}
        for area in areas:
            structure = SeatStructure(total_area=area)
            config = SebConfiguration(cooling="hp_lhp",
                                      structure=structure)
            outcome[area] = capability(SeatElectronicsBox(), config)
        return outcome

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table("A1c - capability vs seat-structure wetted area",
                ("area [m2]", "capability [W]"),
                [(fmt(a, 2), fmt(c)) for a, c in results.items()])

    values = [results[a] for a in areas]
    assert values == sorted(values)
    # The sink is a first-order lever: halving the area costs >10 W.
    assert results[0.18] - results[0.09] > 10.0


def test_ablation_installation(benchmark):
    study = benchmark.pedantic(ceiling_installation_study, rounds=1,
                               iterations=1)

    print_table("A1d - seat-frame vs ceiling-structure installation",
                ("installation", "dT at 60 W [K]", "capability [W]"),
                [("seat frame", fmt(study["seat_delta_t"]),
                  fmt(study["seat_capability"])),
                 ("ceiling structure", fmt(study["ceiling_delta_t"]),
                  fmt(study["ceiling_capability"]))])

    # The ceiling's larger structure buys capability (the paper's
    # alternative sink for ceiling-installed IFE equipment).
    assert study["ceiling_capability"] > study["seat_capability"]
    assert study["ceiling_delta_t"] < study["seat_delta_t"]
