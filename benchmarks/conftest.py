"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark prints the series/rows of the corresponding paper figure
or claim (so the output can be compared side by side with the paper) and
asserts the qualitative *shape* — orderings, crossovers, approximate
factors — rather than absolute values.
"""

import pytest


def print_table(title, headers, rows):
    """Print a fixed-width table matching the paper's reporting style."""
    print()
    print(f"=== {title} ===")
    widths = [max(len(str(h)), max((len(f"{r[i]}") for r in rows),
                                   default=0))
              for i, h in enumerate(headers)]
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers,
                                                            widths))
    print(header_line)
    print("-" * len(header_line))
    for row in rows:
        print("  ".join(f"{cell}".ljust(w) for cell, w in zip(row,
                                                              widths)))


def fmt(value, digits=1):
    """Format a float for table cells."""
    if value == float("inf"):
        return "inf"
    return f"{value:.{digits}f}"


@pytest.fixture
def table_printer():
    return print_table
