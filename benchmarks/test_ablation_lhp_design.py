"""Ablation A2 — loop-heat-pipe and heat-pipe design levers.

The two-phase devices have their own design space: the primary-wick pore
size trades pumping pressure against flow resistance, the transport-line
diameter sets the vapour pressure drop, and the working fluid must match
the temperature envelope.  These ablations quantify each lever with the
others at the COSEE baseline.
"""

from dataclasses import replace

import pytest

from avipack.materials.fluids import rank_working_fluids
from avipack.twophase.heatpipe import standard_copper_water_heatpipe
from avipack.twophase.loopheatpipe import TransportLine, cosee_ammonia_lhp
from avipack.twophase.wick import sintered_powder_wick
from avipack.twophase.workingfluid import select_fluid

from conftest import fmt, print_table

T_OP = 320.0


def test_ablation_wick_particle_size(benchmark):
    radii_um = (0.5, 1.5, 5.0, 15.0)

    def run():
        outcome = {}
        for radius in radii_um:
            wick = sintered_powder_wick(radius * 1e-6, 0.6, 90.0, 0.5)
            lhp = replace(cosee_ammonia_lhp(), wick=wick)
            outcome[radius] = (lhp.capillary_limit(T_OP),
                               lhp.capillary_limit(T_OP, tilt_deg=80.0))
        return outcome

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "A2a - LHP capillary limit vs wick particle radius",
        ("r_particle [um]", "Q_cap level [W]", "Q_cap 80deg tilt [W]"),
        [(fmt(r), fmt(q0, 0), fmt(q80, 0))
         for r, (q0, q80) in results.items()])

    # Finer wick = more pumping head = better tilt tolerance: the
    # fraction of capacity retained at 80 deg tilt decreases
    # monotonically with particle size.
    tilt_ratios = [results[r][1] / max(results[r][0], 1e-9)
                   for r in radii_um]
    assert tilt_ratios == sorted(tilt_ratios, reverse=True)
    # The level limit has an INTERIOR optimum: ultra-fine pores choke
    # the liquid return (Darcy), coarse pores lose pumping pressure.
    # This trade-off is the LHP wick design problem.
    level_limits = [results[r][0] for r in radii_um]
    best = max(level_limits)
    assert level_limits[0] < best      # too fine: return-choked
    assert level_limits[-1] < best     # too coarse: pump-starved


def test_ablation_transport_line(benchmark):
    diameters_mm = (1.0, 2.0, 3.0, 5.0)

    def run():
        outcome = {}
        for diameter in diameters_mm:
            lhp = replace(
                cosee_ammonia_lhp(),
                vapor_line=TransportLine(diameter * 1e-3, 0.6))
            outcome[diameter] = (lhp.capillary_limit(T_OP),
                                 lhp.thermal_resistance(30.0, T_OP))
        return outcome

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "A2b - LHP performance vs vapour-line diameter",
        ("d_vap [mm]", "Q_cap [W]", "R at 30 W [K/W]"),
        [(fmt(d), fmt(q, 0), fmt(r, 3))
         for d, (q, r) in results.items()])

    q_values = [results[d][0] for d in diameters_mm]
    r_values = [results[d][1] for d in diameters_mm]
    # Wider vapour line: more transport, less resistance.
    assert q_values == sorted(q_values)
    assert r_values == sorted(r_values, reverse=True)
    # A 1 mm line chokes the loop badly relative to the 3 mm baseline.
    assert results[1.0][0] < 0.5 * results[3.0][0]


def test_ablation_working_fluid(benchmark):
    def run():
        return {
            "cabin_320K": rank_working_fluids(320.0),
            "cold_start_230K": rank_working_fluids(230.0),
            "selected_for_avionics": select_fluid(
                t_operating=320.0, t_min_survival=218.15),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [("cabin 320 K", ", ".join(
        f"{name} ({merit:.1e})" for name, merit in
        results["cabin_320K"][:3]))]
    rows.append(("cold start 230 K", ", ".join(
        f"{name} ({merit:.1e})" for name, merit in
        results["cold_start_230K"][:3])))
    rows.append(("selected (-55 degC survival)",
                 results["selected_for_avionics"][0]))
    print_table("A2c - working-fluid ranking by figure of merit",
                ("scenario", "ranking"), rows)

    # Water tops the merit table warm, but cannot survive -55 degC
    # storage: the avionics selection lands on ammonia, exactly the
    # COSEE/ITP choice.
    assert results["cabin_320K"][0][0] == "water"
    assert all(name != "water"
               for name, _merit in results["cold_start_230K"])
    assert results["selected_for_avionics"][0] == "ammonia"


def test_ablation_heatpipe_fluid_swap(benchmark):
    def run():
        pipe = standard_copper_water_heatpipe()
        from avipack.twophase.workingfluid import WorkingFluid

        outcome = {}
        for fluid in ("water", "methanol", "acetone"):
            variant = replace(pipe, fluid=WorkingFluid(fluid))
            outcome[fluid] = variant.max_heat_transport(330.0)[0]
        return outcome

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table("A2d - heat-pipe transport vs fill fluid (330 K)",
                ("fluid", "Q_max [W]"),
                [(name, fmt(q)) for name, q in results.items()])

    # Water's merit number dominates at electronics temperatures.
    assert results["water"] > results["methanol"]
    assert results["water"] > results["acetone"]
