"""E8 — §IV.A headline claims (aluminium seat structure).

* "increase of 150% of the heat dissipation capability: from 40 W up to
  100 W with a constant PCB temperature (about 60 degC difference
  between the PCB and the ambient)";
* "for a same dissipated power, for example 40 W, the use of HP and LHP
  allow 32 degC decrease on the PCB temperature without the use of
  fans".
"""

import pytest

from avipack.experiments.cosee import measure_claims

from conftest import fmt, print_table


def test_cosee_aluminum_claims(benchmark):
    claims = benchmark.pedantic(measure_claims, rounds=1, iterations=1)

    rows = [
        ("capability without LHP [W]", "40", fmt(
            claims.capability_without_lhp)),
        ("capability with HP+LHP [W]", "100", fmt(
            claims.capability_with_lhp)),
        ("capability increase [%]", "150", fmt(
            claims.capability_increase_pct)),
        ("dT(PCB-air) at 40 W, no LHP [K]", "~60", fmt(
            claims.delta_t_without_at_40w)),
        ("dT(PCB-air) at 40 W, with LHP [K]", "~28", fmt(
            claims.delta_t_with_at_40w)),
        ("PCB temperature decrease at 40 W [K]", "32", fmt(
            claims.temperature_drop_at_40w)),
        ("power through LHPs at capability [W]", "58", fmt(
            claims.lhp_heat_at_capability)),
    ]
    print_table("SIV.A - COSEE claims, aluminium seat (paper vs model)",
                ("quantity", "paper", "model"), rows)

    # Who wins: the two-phase chain, by roughly the paper's factor.
    assert claims.capability_without_lhp == pytest.approx(40.0, rel=0.15)
    assert claims.capability_with_lhp == pytest.approx(100.0, rel=0.15)
    assert claims.capability_increase_pct == pytest.approx(150.0,
                                                           abs=40.0)
    assert claims.temperature_drop_at_40w == pytest.approx(32.0, abs=8.0)
    assert claims.lhp_heat_at_capability == pytest.approx(58.0, rel=0.15)
    # The capability criterion itself: ~60 K at the no-LHP capability.
    assert claims.delta_t_without_at_40w == pytest.approx(60.0, abs=8.0)
