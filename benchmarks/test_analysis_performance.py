"""Analysis engine: cold vs warm run over the repo's own sources.

Not a paper figure: this is the ISSUE-9 acceptance benchmark.  A cold
run of the project-wide analyzer parses, summarizes and checks every
file under ``src/avipack``; a warm run against the populated cache may
only revalidate fingerprints.  The cache must convert every file into
a hit, the warm run must be decisively faster, and the engine must
report itself through :mod:`avipack.perf` (the ``analysis.engine``
kernel plus ``analysis.*`` counters) so sweeps that embed the gate can
account for it.  A third scenario edits one widely-imported file in a
copied tree and checks the re-analyzed slice is the file plus its
import dependents, not the whole tree.
"""

import pathlib
import shutil
import time

from avipack import perf
from avipack.analysis import AnalysisCache, AnalysisEngine, rules_signature

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "avipack"
MIN_WARM_FACTOR = 2.0


def _timed(call):
    t0 = time.perf_counter()
    value = call()
    return value, time.perf_counter() - t0


def test_warm_engine_run_is_cache_served(monkeypatch, table_printer):
    monkeypatch.chdir(REPO_ROOT)
    cache = AnalysisCache(rules_signature())
    engine = AnalysisEngine(cache=cache)
    perf.reset()

    cold, cold_s = _timed(lambda: engine.analyze_paths([str(SRC)]))
    warm, warm_s = _timed(lambda: engine.analyze_paths([str(SRC)]))

    table_printer(
        "Analysis engine: cold vs warm (src/avipack)",
        ["run", "files", "cache hits", "import edges", "call edges",
         "wall s"],
        [["cold", cold.files_analyzed, cold.cache_hits,
          cold.import_edges, cold.call_edges, f"{cold_s:.3f}"],
         ["warm", warm.files_analyzed, warm.cache_hits,
          warm.import_edges, warm.call_edges, f"{warm_s:.3f}"]])

    assert cold.errors == []
    assert cold.cache_hits == 0
    assert warm.files_analyzed == cold.files_analyzed
    assert warm.cache_hits == warm.files_analyzed  # every file a hit
    assert warm_s * MIN_WARM_FACTOR < cold_s

    # The engine accounts for itself in the perf registry.
    assert perf.stats("analysis.engine").wall_s > 0.0
    counters = perf.counters("analysis.")
    assert counters["analysis.files"] \
        == cold.files_analyzed + warm.files_analyzed
    assert counters["analysis.cache_hits"] == warm.cache_hits
    assert counters["analysis.import_edges"] == 2 * cold.import_edges
    assert counters["analysis.call_edges"] == 2 * cold.call_edges


def test_single_edit_reanalyzes_only_the_dependent_slice(
        tmp_path, monkeypatch, table_printer):
    """Warm incremental run: touching one widely-imported file must
    re-check that file plus its import dependents, not the whole tree."""
    shutil.copytree(SRC, tmp_path / "src" / "avipack")
    monkeypatch.chdir(tmp_path)
    cache = AnalysisCache(rules_signature())
    engine = AnalysisEngine(cache=cache)
    engine.analyze_paths([str(tmp_path / "src")])

    target = tmp_path / "src" / "avipack" / "errors.py"
    target.write_text(target.read_text() + "\n# touched by the bench\n")

    warm, warm_s = _timed(
        lambda: engine.analyze_paths([str(tmp_path / "src")]))
    rechecked = warm.files_analyzed - warm.cache_hits

    table_printer(
        "Incremental re-analysis after editing errors.py",
        ["files", "cache hits", "re-checked", "wall s"],
        [[warm.files_analyzed, warm.cache_hits, rechecked,
          f"{warm_s:.3f}"]])

    # errors.py plus everything importing it re-checks; files outside
    # its dependent cone stay cached.  Both bounds are structural:
    # several modules import errors, and several do not.
    assert warm.findings == [] and warm.errors == []
    assert 2 <= rechecked < warm.files_analyzed
