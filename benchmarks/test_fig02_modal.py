"""E1 — Fig. 2: Ariane navigation unit power supply mode placement.

"The power supply has been designed so that its main resonant mode be
located around 500 Hz as specified in the initial frequency allocation
plan."  The bench designs the power-supply board (stiffening sweep) to
place its fundamental at 500 Hz, prints the mode table before/after, and
verifies the placement and the margin to neighbouring modes.
"""

from dataclasses import replace

import pytest

from avipack.core.design_flow import FrequencyAllocation
from avipack.mechanical.plate import (
    PlateSpec,
    fundamental_frequency,
    plate_modes,
    stiffener_rigidity_for_frequency,
)

from conftest import fmt, print_table

#: The launcher's frequency-allocation window for the power supply.
ALLOCATION = FrequencyAllocation(450.0, 550.0)


def power_supply_board():
    """The Ariane power-supply board: a dense 170 x 130 mm PCB with heavy
    magnetics (0.35 kg of components)."""
    return PlateSpec(length=0.17, width=0.13, thickness=2.0e-3,
                     youngs_modulus=22e9, poisson_ratio=0.28,
                     density=1850.0, support=("SS", "SS"),
                     component_mass=0.35)


def test_fig02_mode_placement(benchmark):
    board = power_supply_board()

    def design():
        rigidity = stiffener_rigidity_for_frequency(board,
                                                    ALLOCATION.center)
        placed = replace(board, stiffener_rigidity=rigidity)
        return rigidity, placed, plate_modes(placed, 4)

    rigidity, placed, modes = benchmark.pedantic(design, rounds=1,
                                                 iterations=1)

    bare_modes = plate_modes(board, 4)
    rows = [(f"({m.indices[0]},{m.indices[1]})",
             fmt(bare.frequency_hz, 0), fmt(m.frequency_hz, 0))
            for bare, m in zip(bare_modes, modes)]
    print_table(
        "Fig. 2 - power supply modes before/after stiffening (Hz)",
        ("mode", "bare board", "stiffened"), rows)
    print(f"  required smeared stiffener rigidity: {rigidity:.1f} N.m")
    print(f"  frequency allocation plan: "
          f"[{ALLOCATION.minimum_hz:.0f}, {ALLOCATION.maximum_hz:.0f}] Hz")

    # Shape 1: the bare board violates the plan (too soft)...
    assert not ALLOCATION.contains(fundamental_frequency(board))
    # Shape 2: ...the stiffened design lands "around 500 Hz".
    f_1 = modes[0].frequency_hz
    assert ALLOCATION.contains(f_1)
    assert f_1 == pytest.approx(500.0, abs=5.0)
    # Shape 3: stiffening required is physically positive and the second
    # mode clears the allocation window (no double resonance inside).
    assert rigidity > 0.0
    assert modes[1].frequency_hz > ALLOCATION.maximum_hz
