"""E5 — Fig. 6 + §III trend: forced-air computer racks across module
generations.

"The thermal dissipation still increases: from 10 W/module, it will
reach 20/30 W/module in the near future and 60 W/module in the next
developments.  In the same time, the module sizes are reduced or at the
best remain unchanged."

The bench runs a 6-slot forced-air rack at each generation's module
power under its ARINC 600 allocation, prints the per-generation rows,
and checks the squeeze: rising board temperatures and heat fluxes in a
constant envelope, with the 60 W generation breaching the 85 °C rule.
"""

import pytest

from avipack.environments.arinc600 import module_performance
from avipack.packaging.module import module_generation
from avipack.packaging.rack import computer_rack
from avipack.units import celsius_to_kelvin, kelvin_to_celsius

from conftest import fmt, print_table

GENERATIONS = ("current", "near_future", "next")


def test_fig06_module_generations(benchmark):
    def run():
        outcome = {}
        for generation in GENERATIONS:
            module = module_generation(generation)
            rack = computer_rack(6, module.power,
                                 name=f"rack_{generation}")
            outcome[generation] = (module, rack.worst_slot(),
                                   rack.feasible())
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for generation in GENERATIONS:
        module, worst, feasible = outcome[generation]
        performance = module_performance(module.power)
        rows.append((
            generation,
            fmt(module.power, 0),
            fmt(module.mean_flux_w_cm2, 2),
            fmt(performance.mass_flow * 3600.0, 1),
            fmt(kelvin_to_celsius(worst.board_temperature)),
            "yes" if feasible else "NO",
        ))
    print_table(
        "Fig. 6 / SIII - forced-air rack across module generations",
        ("generation", "P/module [W]", "flux [W/cm2]",
         "air [kg/h]", "worst board [degC]", "rack feasible"),
        rows)

    temps = [outcome[g][1].board_temperature for g in GENERATIONS]
    fluxes = [outcome[g][0].mean_flux_w_cm2 for g in GENERATIONS]
    # Shape 1: each generation runs hotter in the same envelope.
    assert temps == sorted(temps)
    assert fluxes == sorted(fluxes)
    # Shape 2: 10 W (current, e.g. A340/A380 computers) is comfortable.
    assert outcome["current"][2]
    # Shape 3: the 60 W generation breaks standard forced-air cooling -
    # the paper's motivation for new technologies.
    assert not outcome["next"][2]
    assert outcome["next"][1].board_temperature \
        > celsius_to_kelvin(85.0)
    # Shape 4: generational power ratio matches the quoted 10->30->60 W.
    powers = [outcome[g][0].power for g in GENERATIONS]
    assert powers == [10.0, 30.0, 60.0]
