"""E3 — Fig. 4: the three-level simulation pyramid.

Runs the same equipment at level 1 (volumetric sources / technique
selection), level 2 (boards as dissipative surfaces in the rack airflow)
and level 3 (component junction temperatures), printing one row per
level, and checks the pyramid's consistency: temperatures refine
monotonically (junction > board > air > inlet) and each level's output is
the next level's input.
"""

import pytest

from avipack.core.levels import run_pyramid
from avipack.packaging.component import make_component
from avipack.packaging.module import Module
from avipack.packaging.pcb import Pcb
from avipack.packaging.rack import Rack
from avipack.units import celsius_to_kelvin, kelvin_to_celsius

from conftest import fmt, print_table


def build_rack():
    rack = Rack("fig4_equipment")
    for index in range(3):
        board = Pcb(0.16, 0.1, n_copper_layers=8, copper_coverage=0.7)
        board.place(make_component(f"asic{index}", "bga_35mm", 6.0,
                                   (0.08, 0.05)))
        board.place(make_component(f"reg{index}", "to_220", 4.0,
                                   (0.04, 0.03)))
        rack.add_module(Module(f"card{index + 1}", pcb=board))
    return rack


def test_fig04_pyramid(benchmark):
    rack = build_rack()
    result = benchmark.pedantic(
        lambda: run_pyramid(rack, ambient=celsius_to_kelvin(40.0)),
        rounds=1, iterations=1)

    rows = [("level 1 (equipment)",
             f"{result.level1.total_power:.0f} W total",
             f"recommended: {result.level1.recommended.value}")]
    for slot in result.level2.slots:
        rows.append((
            "level 2 (PCB)", slot.module_name,
            f"board {kelvin_to_celsius(slot.board_temperature):.1f} degC"))
    for module_name, level3 in sorted(result.level3.items()):
        worst = max(level3.junction_temperatures.items(),
                    key=lambda item: item[1])
        rows.append((
            "level 3 (component)", f"{module_name}/{worst[0]}",
            f"junction {kelvin_to_celsius(worst[1]):.1f} degC"))
    print_table("Fig. 4 - equipment -> PCB -> component refinement",
                ("level", "object", "result"), rows)

    # Shape 1: level 1 finds the equipment feasible with standard cooling.
    assert result.level1.is_feasible
    # Shape 2: boards run hotter than the air that cools them.
    for slot in result.level2.slots:
        assert slot.board_temperature > slot.inlet_temperature
    # Shape 3: junctions run hotter than their boards (the pyramid
    # refines towards the component).
    for module, slot in zip(rack.modules, result.level2.slots):
        level3 = result.level3[module.name]
        assert level3.max_junction > slot.inlet_temperature
        assert level3.max_junction > result.level1.total_power * 0.0 \
            + slot.board_temperature - 5.0
    # Shape 4: downstream cards are hotter at both level 2 and level 3.
    boards = [s.board_temperature for s in result.level2.slots]
    junctions = [result.level3[m.name].max_junction
                 for m in rack.modules]
    assert boards == sorted(boards)
    assert junctions == sorted(junctions)
    # Shape 5: the whole pyramid is compliant for this 30 W equipment.
    assert result.compliant
