"""Committed retention benchmark baseline: write and regression-compare.

``BENCH_retention.json`` at the repository root pins median timings and
exact counters for the space-reclamation path — folding a
1000-candidate journal into its checkpoint, replaying the compacted
journal, rewriting a half-superseded result store, and the governor's
``directory_bytes`` usage probe.  CI re-measures and compares with a
generous timing tolerance (default 3x, shared-runner noise must never
fail a build) while the counters — records folded, rows dropped,
shards rewritten, bytes-reclaimed fractions — are compared exactly: a
compaction that folds fewer records or drops the wrong rows is a
correctness regression no matter how fast the box.

Usage::

    python benchmarks/bench_retention.py write     # refresh the baseline
    python benchmarks/bench_retention.py compare   # exit 1 on regression

Run from the repository root (or pass ``--baseline`` explicitly).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import statistics
import sys
import tempfile
import time

from avipack.durability import SweepJournal, replay_journal
from avipack.results import ResultStoreWriter
from avipack.retention import compact_journal, compact_store, \
    directory_bytes
from bench_results import synthetic_outcomes

BASELINE = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_retention.json"

#: Candidates in the benchmark journal: 1 plan + 2N records, plus
#: ``churn`` extra outcome generations (the resumed-campaign shape
#: retention actually targets — only the latest per fingerprint lives).
N_JOURNAL = 1000
JOURNAL_CHURN = 3
#: Rows in the benchmark store, half of them later superseded.
N_STORE = 20_000
STORE_SHARD_ROWS = 4096


def build_journal(path, n=N_JOURNAL, seed=23, churn=0):
    """An n-candidate campaign journal, optionally churned.

    ``churn`` appends that many extra full outcome generations (as a
    campaign resumed and re-recorded repeatedly does); the checkpoint
    folds them all into the one live outcome per fingerprint, which is
    where compaction earns its bytes back.
    """
    outcomes = synthetic_outcomes(n, seed=seed)
    candidates = tuple(o.candidate for o in outcomes)
    with SweepJournal.create(path, candidates) as journal:
        for index, outcome in enumerate(outcomes):
            journal.record_dispatched(index, outcome.candidate)
            journal.record_outcome(outcome)
    next_seq = 1 + 2 * n
    for _ in range(churn):
        with SweepJournal.append_to(path, next_seq=next_seq) as journal:
            for outcome in outcomes:
                journal.record_outcome(outcome)
        next_seq += n
    return outcomes


def build_half_superseded_store(directory, n=N_STORE, seed=29):
    """``n`` originals plus corrections for every second fingerprint."""
    outcomes = synthetic_outcomes(n, seed=seed)
    corrections = outcomes[::2]
    with ResultStoreWriter(directory,
                           shard_rows=STORE_SHARD_ROWS) as writer:
        writer.add_many(outcomes)
        writer.add_many(corrections)
    return len(corrections)


def _median_ms(samples):
    return round(statistics.median(samples) * 1e3, 4)


def run_benches(rounds=5):
    """Measure every pinned scenario; returns the baseline document."""
    benches = {}
    with tempfile.TemporaryDirectory(prefix="bench-retention-") as tmp:
        # -- journal fold: fresh journal per round (compaction is
        #    destructive); the fold fraction is pinned exactly.
        samples = []
        for r in range(rounds):
            path = os.path.join(tmp, f"journal-{r}.jsonl")
            build_journal(path, churn=JOURNAL_CHURN)
            t0 = time.perf_counter()
            compaction = compact_journal(path)
            samples.append(time.perf_counter() - t0)
        reclaimed_pct = round(
            100.0 * compaction.bytes_reclaimed / compaction.bytes_before)
        benches["journal_compact_1k_churned"] = {
            "median_ms": _median_ms(samples),
            "counters": {
                "n_folded": compaction.n_folded,
                "n_quarantined": compaction.n_quarantined,
                "reclaimed_pct_floor": min(reclaimed_pct, 60),
            },
        }

        # -- replay of the compacted journal (the restart path a
        #    retention-governed service actually takes).
        compacted = os.path.join(tmp, "journal-0.jsonl")
        samples = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            replay = replay_journal(compacted, write_quarantine=False)
            samples.append(time.perf_counter() - t0)
        benches["replay_compacted_journal"] = {
            "median_ms": _median_ms(samples),
            "counters": {
                "n_records": replay.n_records,
                "n_outcomes": len(replay.outcomes),
            },
        }

        # -- store rewrite: copy the pristine half-superseded store per
        #    round, compact the copy.
        pristine = os.path.join(tmp, "store-pristine")
        n_dead = build_half_superseded_store(pristine)
        samples = []
        for r in range(rounds):
            directory = os.path.join(tmp, f"store-{r}")
            shutil.copytree(pristine, directory)
            t0 = time.perf_counter()
            compaction = compact_store(directory)
            samples.append(time.perf_counter() - t0)
        benches["store_compact_20k_half_dead"] = {
            "median_ms": _median_ms(samples),
            "counters": {
                "rows_dropped": compaction.rows_dropped,
                "shards_rewritten": compaction.shards_rewritten,
                "orphan_blobs_removed": compaction.orphan_blobs_removed,
                "n_superseded": n_dead,
            },
        }

        # -- the governor's usage probe over a job-tree-sized directory.
        probe_root = os.path.join(tmp, "store-0")
        samples = []
        for _ in range(max(rounds, 9)):
            t0 = time.perf_counter()
            directory_bytes(probe_root)
            samples.append(time.perf_counter() - t0)
        benches["directory_bytes_probe"] = {
            "median_ms": _median_ms(samples),
            "counters": {"nonzero": int(directory_bytes(probe_root) > 0)},
        }

    return {
        "schema": 1,
        "unit": "median wall milliseconds over warm rounds",
        "rounds": rounds,
        "n_journal_candidates": N_JOURNAL,
        "n_store_rows": N_STORE,
        "benches": benches,
    }


def write_baseline(path, rounds):
    document = run_benches(rounds)
    tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    print(f"wrote {path} ({len(document['benches'])} benches)")
    return 0


def compare_baseline(path, rounds, tolerance, report_path=None):
    if not path.exists():
        print(f"ERROR: baseline {path} not found; run "
              "`python benchmarks/bench_retention.py write` and commit it")
        return 2
    baseline = json.loads(path.read_text())
    current = run_benches(rounds)
    failures = []
    comparison = {"schema": 1, "tolerance": tolerance, "rounds": rounds,
                  "benches": {}}
    for name, pinned in sorted(baseline["benches"].items()):
        measured = current["benches"].get(name)
        if measured is None:
            failures.append(f"{name}: bench disappeared")
            comparison["benches"][name] = {"verdict": "MISSING",
                                           "baseline": pinned}
            continue
        limit = pinned["median_ms"] * tolerance
        verdict = "ok"
        if measured["median_ms"] > limit:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {measured['median_ms']:.3f} ms exceeds "
                f"{tolerance:g}x baseline {pinned['median_ms']:.3f} ms")
        counter_names = sorted(set(pinned["counters"])
                               | set(measured["counters"]))
        for counter in counter_names:
            expected = pinned["counters"].get(counter)
            got = measured["counters"].get(counter)
            if got != expected:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: counter {counter} drifted: baseline "
                    f"{expected} -> measured {got} "
                    "(compaction discipline broken)")
        comparison["benches"][name] = {
            "verdict": verdict,
            "baseline_ms": pinned["median_ms"],
            "measured_ms": measured["median_ms"],
            "limit_ms": round(limit, 4),
            "baseline_counters": pinned["counters"],
            "measured_counters": measured["counters"],
        }
        print(f"{name:<32} {measured['median_ms']:>9.3f} ms "
              f"(baseline {pinned['median_ms']:.3f}, "
              f"limit {limit:.3f})  {verdict}")
    comparison["failures"] = failures
    comparison["ok"] = not failures
    if report_path is not None:
        tmp = report_path.parent / f"{report_path.name}.tmp.{os.getpid()}"
        tmp.write_text(json.dumps(comparison, indent=2, sort_keys=True)
                       + "\n")
        os.replace(tmp, report_path)
        print(f"comparison written to {report_path}")
    if failures:
        print("\n" + "\n".join(f"FAIL: {line}" for line in failures))
        return 1
    print("\nall benches within tolerance, counters exact")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", choices=("write", "compare"))
    parser.add_argument("--baseline", type=pathlib.Path, default=BASELINE)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed slow-down factor (default 3x)")
    parser.add_argument("--report", type=pathlib.Path, default=None,
                        help="write the comparison document (JSON) here "
                             "(compare mode only)")
    args = parser.parse_args(argv)
    if args.mode == "write":
        return write_baseline(args.baseline, args.rounds)
    return compare_baseline(args.baseline, args.rounds, args.tolerance,
                            args.report)


if __name__ == "__main__":
    sys.exit(main())
