"""Committed solver-benchmark baseline: write and regression-compare.

``BENCH_solver.json`` at the repository root pins median timings and
factorization-reuse counters for the solver kernels.  CI re-measures
and compares with a generous tolerance (timings are allowed to grow by
the ``--tolerance`` factor, default 3x, so shared-runner noise never
fails a build), while the *counters* are compared exactly — a lost
factorization cache is a real regression no matter how fast the box.

Usage::

    python benchmarks/bench_baseline.py write     # refresh the baseline
    python benchmarks/bench_baseline.py compare   # exit 1 on regression

Run from the repository root (or pass ``--baseline`` explicitly).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
import time

from avipack import perf
from avipack.thermal.batch import solve_batched
from avipack.thermal.network import ThermalNetwork
from avipack.thermal.transient import TransientNetworkSolver

BASELINE = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_solver.json"

#: Counters whose baseline values must be reproduced exactly.
EXACT_COUNTERS = ("compilations", "assemblies", "factorizations",
                  "factorization_reuses", "solves", "iterations",
                  "batched_solves", "batch_width")


def build_linear_network(n_chains=30, chain_length=6):
    """The 180-node linear network from test_perf_network_solve."""
    net = ThermalNetwork()
    net.add_node("sink", fixed_temperature=300.0)
    for c in range(n_chains):
        previous = "sink"
        for i in range(chain_length):
            name = f"n{c}_{i}"
            net.add_node(name, heat_load=1.0)
            net.add_resistance(name, previous, 0.5)
            previous = name
    return net


def build_nonlinear_network(n_nodes=20):
    """The radiation-like star from test_perf_nonlinear_network."""
    net = ThermalNetwork()
    net.add_node("sink", fixed_temperature=300.0)
    for i in range(n_nodes):
        net.add_node(f"n{i}", heat_load=5.0)
        net.add_conductance(
            f"n{i}", "sink",
            lambda a, b: 1e-9 * (a * a + b * b) * (a + b))
    return net


def build_radiation_chain(n_stages=15):
    """The ~200-iteration chain from test_perf_nonlinear_fixed_point_200."""
    net = ThermalNetwork()
    net.add_node("amb", fixed_temperature=260.0)
    previous = "amb"
    for i in range(n_stages):
        name = f"stage{i}"
        net.add_node(name, heat_load=3.0)
        net.add_conductance(name, previous,
                            lambda a, b: 5.67e-10 * (a * a + b * b)
                            * (a + b))
        previous = name
    return net


def build_transient_chain(n_nodes=30):
    """The ladder from test_perf_transient_constant_500_steps."""
    net = ThermalNetwork()
    net.add_node("amb", fixed_temperature=300.0)
    previous = "amb"
    for i in range(n_nodes):
        name = f"m{i}"
        net.add_node(name, heat_load=0.5, capacitance=20.0)
        net.add_conductance(name, previous, 2.0)
        previous = name
    return net


def build_candidate_grid(n_powers=100, g_scales=(1.0, 1.6),
                         chain_length=10):
    """A 200-candidate topology-sharing sweep grid, built fresh.

    Every candidate is the same board-stack chain; candidates differ in
    the per-board power level (the multi-RHS axis — same operator,
    different right-hand side) and in a global conductance scale (the
    stacked-assembly axis — one sparse template, different data).  Each
    call rebuilds the networks, as a sweep does, so compile/assembly
    counters are deterministic per call.
    """
    networks = []
    for scale in g_scales:
        for k in range(n_powers):
            power = 2.0 + 0.08 * k
            net = ThermalNetwork()
            net.add_node("sink", fixed_temperature=300.0)
            previous = "sink"
            for i in range(chain_length):
                name = f"seg{i}"
                net.add_node(name, heat_load=power / chain_length)
                net.add_conductance(name, previous, 4.0 * scale)
                previous = name
            networks.append(net)
    return networks


def _measure(kernel, call, rounds):
    """Median wall time [ms] of ``call`` plus one instrumented pass.

    The instrumented pass runs first on a reset registry so the counter
    record reflects exactly one call against a cold compile; the timing
    rounds then run warm (compiled structure and LU cache populated),
    which is the steady-state the benchmarks guard.
    """
    call()  # warm: compile + factorize
    perf.reset(kernel)
    call()
    counters = perf.stats(kernel)
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        call()
        samples.append(time.perf_counter() - t0)
    return {
        "median_ms": round(statistics.median(samples) * 1e3, 4),
        "counters": {name: getattr(counters, name)
                     for name in EXACT_COUNTERS},
    }


def run_benches(rounds=25):
    """Measure every pinned scenario; returns the baseline document."""
    benches = {}

    linear = build_linear_network()
    benches["network_solve_linear"] = _measure(
        "network.steady", linear.solve, rounds)

    nonlinear = build_nonlinear_network()
    benches["network_solve_nonlinear"] = _measure(
        "network.steady", nonlinear.solve, rounds)

    chain = build_radiation_chain()
    benches["nonlinear_fixed_point_200"] = _measure(
        "network.steady",
        lambda: chain.solve(max_iterations=500, tolerance=1e-10,
                            relaxation=0.12),
        rounds)

    solver = TransientNetworkSolver(build_transient_chain())
    benches["transient_constant_500_steps"] = _measure(
        "network.transient",
        lambda: solver.integrate(duration=500.0, time_step=1.0),
        rounds)

    def batched_grid():
        outcomes = solve_batched(build_candidate_grid())
        assert all(o.ok for o in outcomes)

    def scalar_grid():
        for net in build_candidate_grid():
            net.solve()

    benches["sweep_batched_grid"] = _measure(
        "network.batched", batched_grid, rounds)
    benches["sweep_scalar_grid"] = _measure(
        "network.steady", scalar_grid, rounds)

    return {
        "schema": 1,
        "unit": "median wall milliseconds over warm rounds",
        "rounds": rounds,
        "benches": benches,
    }


def write_baseline(path, rounds):
    document = run_benches(rounds)
    tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    print(f"wrote {path} ({len(document['benches'])} benches)")
    return 0


def _candidates_per_factorization(counters):
    """Derived batch-amortization figure from a counter dict (0 = n/a)."""
    width = counters.get("batch_width", 0)
    factorizations = counters.get("factorizations", 0)
    if not width or not factorizations:
        return 0.0
    return width / factorizations


def compare_baseline(path, rounds, tolerance, report_path=None):
    if not path.exists():
        print(f"ERROR: baseline {path} not found; run "
              "`python benchmarks/bench_baseline.py write` and commit it")
        return 2
    baseline = json.loads(path.read_text())
    current = run_benches(rounds)
    failures = []
    comparison = {"schema": 1, "tolerance": tolerance, "rounds": rounds,
                  "benches": {}}
    for name, pinned in sorted(baseline["benches"].items()):
        measured = current["benches"].get(name)
        if measured is None:
            failures.append(f"{name}: bench disappeared")
            comparison["benches"][name] = {"verdict": "MISSING",
                                           "baseline": pinned}
            continue
        limit = pinned["median_ms"] * tolerance
        verdict = "ok"
        if measured["median_ms"] > limit:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {measured['median_ms']:.3f} ms exceeds "
                f"{tolerance:g}x baseline {pinned['median_ms']:.3f} ms")
        # Compare the union of baseline and measured counters, so a
        # counter that drifted is always reported by name with its
        # old/new values — including counters the baseline has never
        # seen (or that vanished from the measurement).
        counter_names = sorted(set(pinned["counters"])
                               | set(measured["counters"]))
        for counter in counter_names:
            expected = pinned["counters"].get(counter)
            got = measured["counters"].get(counter)
            if got != expected:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: counter {counter} drifted: baseline "
                    f"{expected} -> measured {got} "
                    "(caching discipline broken)")
        base_cpf = _candidates_per_factorization(pinned["counters"])
        got_cpf = _candidates_per_factorization(measured["counters"])
        if base_cpf and got_cpf < base_cpf:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: candidates-per-factorization regressed: "
                f"baseline {base_cpf:.1f} -> measured {got_cpf:.1f}")
        comparison["benches"][name] = {
            "verdict": verdict,
            "baseline_ms": pinned["median_ms"],
            "measured_ms": measured["median_ms"],
            "limit_ms": round(limit, 4),
            "baseline_counters": pinned["counters"],
            "measured_counters": measured["counters"],
            "baseline_candidates_per_factorization": round(base_cpf, 2),
            "measured_candidates_per_factorization": round(got_cpf, 2),
        }
        print(f"{name:<32} {measured['median_ms']:>9.3f} ms "
              f"(baseline {pinned['median_ms']:.3f}, "
              f"limit {limit:.3f})  {verdict}")
    comparison["failures"] = failures
    comparison["ok"] = not failures
    if report_path is not None:
        tmp = report_path.parent / f"{report_path.name}.tmp.{os.getpid()}"
        tmp.write_text(json.dumps(comparison, indent=2, sort_keys=True)
                       + "\n")
        os.replace(tmp, report_path)
        print(f"comparison written to {report_path}")
    if failures:
        print("\n" + "\n".join(f"FAIL: {line}" for line in failures))
        return 1
    print("\nall benches within tolerance, counters exact")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", choices=("write", "compare"))
    parser.add_argument("--baseline", type=pathlib.Path, default=BASELINE)
    parser.add_argument("--rounds", type=int, default=25)
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed slow-down factor (default 3x)")
    parser.add_argument("--report", type=pathlib.Path, default=None,
                        help="write the comparison document (JSON) here "
                             "(compare mode only)")
    args = parser.parse_args(argv)
    if args.mode == "write":
        return write_baseline(args.baseline, args.rounds)
    return compare_baseline(args.baseline, args.rounds, args.tolerance,
                            args.report)


if __name__ == "__main__":
    sys.exit(main())
