"""Ablation A4 — thermo-mechanical screening (§II failure causes).

§II lists "thermo-mechanical induced stress" among the main causes of
failure in airborne equipment.  This bench runs the standard screening
set against the paper's −45/+55 °C thermal-shock swing:

* DNP solder strain and Coffin–Manson life per package class;
* the bimaterial bow of a heat-sink-bonded board across the swing;
* the underfill mitigation factor for the failing class.
"""

import pytest

from avipack.mechanical.thermomechanical import (
    Layer,
    bimaterial_bow,
    solder_joint_assessment,
    underfill_benefit_factor,
)

from conftest import fmt, print_table

CHAMBER_SWING = 100.0  # -45 / +55 degC

#: Package screening set: (name, half diagonal m, joint height m,
#: component CTE 1/K).
PACKAGES = (
    ("soic_8 (plastic)", 3.2e-3, 0.15e-3, 17e-6),
    ("qfp_20mm (plastic)", 14.1e-3, 0.12e-3, 14e-6),
    ("bga_23mm (plastic)", 16.3e-3, 0.35e-3, 14e-6),
    ("cqfp_ceramic_20mm", 14.1e-3, 0.10e-3, 7e-6),
    ("cbga_ceramic_25mm", 17.7e-3, 0.30e-3, 7e-6),
)

CTE_BOARD = 16e-6


def test_thermomech_solder_screening(benchmark):
    def run():
        return {name: solder_joint_assessment(
            dnp, height, cte, CTE_BOARD, CHAMBER_SWING)
            for name, dnp, height, cte in PACKAGES}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, _dnp, _h, _cte in PACKAGES:
        assessment = results[name]
        rows.append((name,
                     f"{assessment.shear_strain * 100.0:.2f} %",
                     fmt(assessment.cycles_to_failure, 0),
                     fmt(assessment.life_years_at_daily_cycles, 1)))
    print_table(
        "A4a - solder screening at the -45/+55 degC shock swing",
        ("package", "strain/cycle", "cycles to fail",
         "years at 2/day"), rows)

    # CTE-matched plastic packages survive; large ceramic-on-FR4 is the
    # known killer (why CTE-matched boards/columns exist).
    assert results["soic_8 (plastic)"].cycles_to_failure > 10_000.0
    assert results["cbga_ceramic_25mm"].cycles_to_failure \
        < results["bga_23mm (plastic)"].cycles_to_failure
    # Taller joints (BGA balls vs QFP fillets) buy life at equal DNP.
    assert results["bga_23mm (plastic)"].cycles_to_failure \
        > results["qfp_20mm (plastic)"].cycles_to_failure

    # Underfill rescues the worst case by an order of magnitude.
    factor = underfill_benefit_factor()
    rescued = results["cbga_ceramic_25mm"].cycles_to_failure * factor
    print(f"  underfill factor x{factor:.1f} -> ceramic BGA life "
          f"{rescued:.0f} cycles")
    assert factor > 5.0


def test_thermomech_board_bow(benchmark):
    fr4 = Layer(thickness=1.6e-3, youngs_modulus=22e9, cte=16e-6)
    aluminum = Layer(thickness=2.0e-3, youngs_modulus=68.9e9,
                     cte=23.6e-6)
    invar_like = Layer(thickness=2.0e-3, youngs_modulus=140e9,
                       cte=5.0e-6)

    def run():
        return {
            "fr4_on_aluminum": bimaterial_bow(aluminum, fr4,
                                              CHAMBER_SWING, 0.16),
            "fr4_on_low_cte_core": bimaterial_bow(invar_like, fr4,
                                                  CHAMBER_SWING, 0.16),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "A4b - 160 mm board bow across the 100 K shock swing",
        ("stack", "centre bow [um]"),
        [(name, fmt(abs(bow) * 1e6))
         for name, bow in results.items()])

    # Both stacks bow measurably; the constraint-core stack bows in the
    # opposite direction (CTE below FR-4 instead of above).
    assert abs(results["fr4_on_aluminum"]) > 10e-6
    assert results["fr4_on_aluminum"] * results["fr4_on_low_cte_core"] \
        < 0.0
