"""E13 (motivation) — the IFE fleet arithmetic behind COSEE.

"New generations of In-flight Entertainment Systems are required to
provide more and more services at an affordable cost ... to face the
increasing power dissipation, the use of fans will be required with the
following drawbacks: extra cost, energy consumption when multiplied by
the seat number, reliability and maintenance concern (filters,
failures)."

The bench multiplies by the seat number: a 300-seat cabin with one SEB
per seat, fan-cooled vs the passive HP/LHP chain.
"""

import pytest

from avipack.packaging.ife import compare_cooling_strategies

from conftest import fmt, print_table


def test_ife_fleet_comparison(benchmark):
    comparison = benchmark.pedantic(
        lambda: compare_cooling_strategies(n_seats=300, seb_power=40.0),
        rounds=1, iterations=1)

    fan, passive = comparison["fan"], comparison["passive"]
    rows = [
        ("cabin IFE power [W]", fmt(fan["system_power_w"], 0),
         fmt(passive["system_power_w"], 0)),
        ("cooling overhead [W]", fmt(fan["cooling_overhead_w"], 0),
         fmt(passive["cooling_overhead_w"], 0)),
        ("per-SEB MTBF [h]", fmt(fan["seb_mtbf_h"], 0),
         fmt(passive["seb_mtbf_h"], 0)),
        ("box failures / aircraft-year", fmt(fan["failures_per_year"]),
         fmt(passive["failures_per_year"])),
        ("maintenance events / year",
         fmt(fan["maintenance_per_year"], 0),
         fmt(passive["maintenance_per_year"])),
        ("cooling hardware cost [cu]", fmt(fan["hardware_cost"], 0),
         fmt(passive["hardware_cost"], 0)),
    ]
    print_table("SIV.A motivation - 300-seat IFE: fans vs passive chain",
                ("figure", "fan-cooled", "passive HP/LHP"), rows)

    # Who wins where: the passive chain costs more hardware but wins
    # power, reliability and - massively - maintenance.
    assert passive["hardware_cost"] > fan["hardware_cost"]
    assert passive["cooling_overhead_w"] == 0.0
    assert passive["seb_mtbf_h"] > 2.0 * fan["seb_mtbf_h"]
    assert passive["maintenance_per_year"] \
        < 0.1 * fan["maintenance_per_year"]
    # Fan filter services dominate the fan fleet's maintenance load.
    assert fan["maintenance_per_year"] > 10.0 * fan["failures_per_year"]


def test_ife_fleet_scaling(benchmark):
    seat_counts = (150, 300, 550)

    results = benchmark.pedantic(
        lambda: {n: compare_cooling_strategies(n_seats=n)
                 for n in seat_counts},
        rounds=1, iterations=1)

    rows = [(str(n),
             fmt(results[n]["fan"]["maintenance_per_year"], 0),
             fmt(results[n]["passive"]["maintenance_per_year"], 1))
            for n in seat_counts]
    print_table("fleet maintenance events/year vs cabin size",
                ("seats", "fan-cooled", "passive"), rows)

    # Linear in seat count - "multiplied by the seat number" exactly.
    fan_events = [results[n]["fan"]["maintenance_per_year"]
                  for n in seat_counts]
    assert fan_events[2] / fan_events[0] \
        == pytest.approx(550.0 / 150.0, rel=1e-6)
