"""Result-store analytics: zero-unpickle vs the dataclass baseline.

Not a paper figure: this is the ISSUE-8 acceptance benchmark.  A
100 000-candidate synthetic campaign is written once into a columnar
store; top-k ranking plus report generation through the typed columns
must be at least an order of magnitude faster *and* an order of
magnitude leaner in peak memory than unpickling every outcome back
into its dataclass and sorting in Python — with byte-identical
rankings, proven by comparing the two signatures entry for entry.
"""

import math
import time
import tracemalloc

import pytest

from avipack import perf
from bench_results import (
    SHARD_ROWS,
    TOP_K,
    baseline_rank_and_report,
    store_rank_and_report,
    synthetic_outcomes,
)
from avipack.results import ResultStore, ResultStoreWriter

N_CAMPAIGN = 100_000
MIN_FACTOR = 10.0


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """The 1e5-row store plus the counters its ingest produced."""
    directory = str(tmp_path_factory.mktemp("campaign") / "store")
    outcomes = synthetic_outcomes(N_CAMPAIGN, seed=11)
    perf.reset()
    writer = ResultStoreWriter(directory, shard_rows=SHARD_ROWS)
    try:
        writer.add_many(outcomes)
    finally:
        writer.close()
    return {"directory": directory,
            "ingest_counters": perf.counters("results.")}


def _timed(call):
    t0 = time.perf_counter()
    value = call()
    return value, time.perf_counter() - t0


def _peak_bytes(call):
    tracemalloc.start()
    try:
        call()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_store_analytics_10x_faster_and_10x_leaner(campaign,
                                                   table_printer):
    store = ResultStore.open(campaign["directory"])
    assert store.n_rows == N_CAMPAIGN

    # Timing passes first (tracemalloc distorts wall time), memory after.
    (store_signature, _), store_s = _timed(
        lambda: store_rank_and_report(store, top=TOP_K))
    (base_signature, _), base_s = _timed(
        lambda: baseline_rank_and_report(store, top=TOP_K))
    assert store_signature == base_signature

    cold = ResultStore.open(campaign["directory"])
    store_peak = _peak_bytes(
        lambda: store_rank_and_report(cold, top=TOP_K))
    base_peak = _peak_bytes(
        lambda: baseline_rank_and_report(store, top=TOP_K))

    table_printer(
        "RESULT-STORE ANALYTICS vs DATACLASS BASELINE (1e5 candidates)",
        ["path", "wall [s]", "peak [MB]"],
        [["columnar store", f"{store_s:.3f}",
          f"{store_peak / 1e6:.1f}"],
         ["unpickle + sorted", f"{base_s:.3f}",
          f"{base_peak / 1e6:.1f}"],
         ["factor", f"{base_s / store_s:.1f}x",
          f"{base_peak / store_peak:.1f}x"]])

    assert base_s >= MIN_FACTOR * store_s, (
        f"store path only {base_s / store_s:.1f}x faster")
    assert base_peak >= MIN_FACTOR * store_peak, (
        f"store path only {base_peak / store_peak:.1f}x leaner")


def test_ingest_counters_are_exact(campaign):
    counters = campaign["ingest_counters"]
    assert counters["results.rows_ingested"] == N_CAMPAIGN
    assert counters["results.shards_written"] == math.ceil(
        N_CAMPAIGN / SHARD_ROWS)
    assert counters.get("results.shards_quarantined", 0) == 0


def test_ranking_never_touches_the_blob_pool(campaign):
    store = ResultStore.open(campaign["directory"])
    perf.reset("results.blob_fetches")
    store_rank_and_report(store, top=TOP_K)
    assert perf.counter("results.blob_fetches") == 0
    store.fetch_outcome(0)
    assert perf.counter("results.blob_fetches") == 1
