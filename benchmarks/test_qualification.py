"""E10 — §IV.A qualification campaign of the LHP-cooled seat.

"Additional tests were performed in order to check the conformity of the
cooling systems with the mains avionics specifications: linear
acceleration (up to 9 g, 3 minutes in each axis), vibrations (according
to DO160 Curve C1), climatic tests (between -25 and +55 degC ambient),
thermal shock (-45/+55 degC, 5 degC/min).  The seats have been submitted
to all the different tests without damage."
"""

import pytest

from avipack.core.qualification import run_campaign
from avipack.environments.profiles import cosee_campaign
from avipack.experiments.cosee import seb_under_test

from conftest import fmt, print_table


def test_cosee_qualification_campaign(benchmark):
    equipment = seb_under_test(power=40.0)
    campaign = cosee_campaign()

    report = benchmark.pedantic(
        lambda: run_campaign(equipment, campaign), rounds=1, iterations=1)

    rows = []
    for verdict in report.verdicts:
        margin = ("inf" if verdict.margin == float("inf")
                  else fmt(verdict.margin, 2))
        rows.append((verdict.test_name,
                     "PASS" if verdict.passed else "FAIL",
                     margin, verdict.detail))
    print_table("SIV.A - virtual qualification of the LHP-cooled SEB",
                ("test", "verdict", "margin", "detail"), rows)

    # The paper's verdict: all tests passed, "without damage".
    assert report.passed
    assert len(report.verdicts) == 4
    # Every margin positive - the design has real headroom, not luck.
    for verdict in report.verdicts:
        assert verdict.margin > 0.0, verdict.test_name


def test_qualification_sensitivity_overpowered_seb(benchmark):
    """Control experiment: the campaign is discriminating - a 200 W SEB
    (double the demonstrated capability) fails the climatic test."""
    equipment = seb_under_test(power=200.0)
    campaign = cosee_campaign()

    report = benchmark.pedantic(
        lambda: run_campaign(equipment, campaign), rounds=1, iterations=1)

    rows = [(v.test_name, "PASS" if v.passed else "FAIL")
            for v in report.verdicts]
    print_table("control - 200 W SEB against the same campaign",
                ("test", "verdict"), rows)

    assert not report.passed
    assert not report.verdict("climatic").passed
    # The mechanical tests still pass (overheating, not overstress).
    assert report.verdict("linear_acceleration").passed
    assert report.verdict("vibration").passed
