"""E9 — §IV.A carbon-composite seat variant.

"We have also tested seat made of carbon composite structure.  Compared
to the aluminum, this material has a rather poor thermal conductivity,
thus the results are slightly under those obtained with aluminum:
increase of 80% of the heat dissipation capability (from 38 W up to
70 W with a constant PCB temperature); for a same dissipated power
(40 W) the use of HP and LHP allow 20 degC decrease."
"""

import pytest

from avipack.experiments.cosee import (
    measure_claims,
    measure_composite_claims,
)

from conftest import fmt, print_table


def test_cosee_composite_claims(benchmark):
    composite = benchmark.pedantic(measure_composite_claims, rounds=1,
                                   iterations=1)
    aluminum = measure_claims()

    rows = [
        ("capability with HP+LHP [W]", "100", fmt(
            aluminum.capability_with_lhp), "70", fmt(
            composite.capability_with_lhp)),
        ("capability increase [%]", "150", fmt(
            aluminum.capability_increase_pct), "80", fmt(
            composite.capability_increase_pct)),
        ("PCB decrease at 40 W [K]", "32", fmt(
            aluminum.temperature_drop_at_40w), "20", fmt(
            composite.temperature_drop_at_40w)),
    ]
    print_table(
        "SIV.A - aluminium vs carbon-composite seat (paper vs model)",
        ("quantity", "paper Al", "model Al", "paper CFRP", "model CFRP"),
        rows)

    # Who wins: aluminium beats composite, composite still beats nothing.
    assert composite.capability_with_lhp < aluminum.capability_with_lhp
    assert composite.capability_with_lhp \
        > composite.capability_without_lhp
    # Rough factors: ~70 W capability, ~+80 % increase, ~20 K drop.
    assert composite.capability_with_lhp == pytest.approx(70.0, rel=0.15)
    assert composite.capability_increase_pct == pytest.approx(80.0,
                                                              abs=30.0)
    assert composite.temperature_drop_at_40w == pytest.approx(20.0,
                                                              abs=8.0)
    # The degradation ratio: composite keeps ~60-80 % of the aluminium
    # gain (the paper: 70/100 capability, 20/32 drop).
    ratio = composite.capability_with_lhp / aluminum.capability_with_lhp
    assert 0.55 < ratio < 0.85
