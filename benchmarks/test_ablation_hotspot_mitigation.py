"""Ablation A3 — hot-spot mitigation: spreaders, vapor chambers,
altitude.

Closes the loop on the paper's hot-spot crisis (E6): given a 100 W/cm²
source that air cannot cool, what does a copper spreader or a vapor
chamber buy?  And how does the whole COSEE chain derate when the cabin
climbs (natural convection weakening with air density)?
"""

import pytest

from avipack.experiments.cosee import altitude_derating_study
from avipack.twophase.vaporchamber import electronics_vapor_chamber

from conftest import fmt, print_table

T_OP = 353.15
SOURCE_AREA = 1.0e-4  # 1 cm2 die


def test_ablation_vapor_chamber_vs_copper(benchmark):
    chamber = electronics_vapor_chamber()

    def run():
        power = 100.0  # the 100 W/cm2 crisis point
        r_chamber = chamber.hotspot_resistance(SOURCE_AREA, T_OP)
        improvement = chamber.improvement_over_copper(SOURCE_AREA, T_OP)
        r_copper = r_chamber * improvement
        return {
            "copper_dt": power * r_copper,
            "chamber_dt": power * r_chamber,
            "improvement": improvement,
            "boiling_limit": chamber.boiling_limit(SOURCE_AREA),
            "k_eff": chamber.effective_conductivity(T_OP),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "A3a - 100 W/cm2 source on a 3 mm spreader (to a cold plate)",
        ("spreader", "dT source->sink side [K]"),
        [("copper plate", fmt(results["copper_dt"])),
         ("vapor chamber", fmt(results["chamber_dt"]))])
    print(f"  chamber k_eff = {results['k_eff']:.0f} W/m.K, boiling "
          f"limit = {results['boiling_limit']:.0f} W on the cm2 source")

    # The chamber makes the 100 W/cm2 source manageable where bare air
    # failed by orders of magnitude (E6: >1000 K rise).
    assert results["chamber_dt"] < 30.0
    assert results["improvement"] > 1.2
    assert results["boiling_limit"] >= 100.0


def test_ablation_chamber_thickness(benchmark):
    thicknesses_mm = (2.5, 3.0, 5.0)

    def run():
        from dataclasses import replace

        base = electronics_vapor_chamber()
        return {t: replace(base, thickness=t * 1e-3).hotspot_resistance(
            SOURCE_AREA, T_OP) for t in thicknesses_mm}

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table("A3b - chamber thickness vs hot-spot resistance",
                ("thickness [mm]", "R [K/W]"),
                [(fmt(t), fmt(r, 4)) for t, r in results.items()])

    values = [results[t] for t in thicknesses_mm]
    # Thicker chamber = more vapour space = better spreading; the gain
    # saturates once the evaporator stack dominates.
    assert values == sorted(values, reverse=True)


def test_ablation_cabin_altitude(benchmark):
    results = benchmark.pedantic(lambda: altitude_derating_study(40.0),
                                 rounds=1, iterations=1)

    print_table(
        "A3c - SEB dT at 40 W vs cabin pressure (natural-convection "
        "derating)",
        ("pressure [kPa]", "dT(PCB-air) [K]"),
        [(fmt(p / 1000.0, 0), fmt(d)) for p, d in results.items()])

    pressures = sorted(results, reverse=True)
    deltas = [results[p] for p in pressures]
    # Lower pressure = weaker natural convection = hotter PCB.
    assert deltas == sorted(deltas)
    # The two-phase chain keeps the derating modest: < 20 % from sea
    # level to the 37.6 kPa depressurised case (the LHP conductance is
    # pressure-independent; only the air-side films derate).
    assert deltas[-1] < 1.2 * deltas[0]
