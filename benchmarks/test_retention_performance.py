"""Retention acceptance: compaction must reclaim, never slow resume.

Not a paper figure: this is the retention-PR acceptance benchmark.  A
1000-candidate journal churned by three resume generations must fold
to a single checkpoint that reclaims the majority of its bytes and
replays decisively faster than the line-per-record original; a
half-superseded 20k-row store must shed exactly its dead rows while
answering ``ranking_signature`` byte-identically.  Timing assertions use conservative factors so
shared-runner noise never fails a build — the *fractions* and row
counts are exact.
"""

import os
import shutil
import statistics
import time

import pytest

from avipack.durability import replay_journal
from avipack.results import ResultStore, ranking_signature
from avipack.retention import compact_journal, compact_store
from bench_retention import (
    JOURNAL_CHURN,
    N_JOURNAL,
    build_half_superseded_store,
    build_journal,
)

#: Compacted replay must beat full replay by at least this factor.
MIN_REPLAY_SPEEDUP = 2.0
#: The fold must reclaim at least this fraction of the journal bytes.
MIN_RECLAIMED_FRACTION = 0.60


def _median_s(call, rounds=5):
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        call()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


@pytest.fixture(scope="module")
def journals(tmp_path_factory):
    """The same campaign journal, full and compacted."""
    root = tmp_path_factory.mktemp("journals")
    full = str(root / "full.jsonl")
    build_journal(full, churn=JOURNAL_CHURN)
    compacted = str(root / "compacted.jsonl")
    shutil.copy(full, compacted)
    compaction = compact_journal(compacted)
    return {"full": full, "compacted": compacted,
            "compaction": compaction}


def test_fold_reclaims_the_overwhelming_share(journals):
    compaction = journals["compaction"]
    assert compaction.n_folded == 1 + (2 + JOURNAL_CHURN) * N_JOURNAL
    assert compaction.n_quarantined == 0
    fraction = compaction.bytes_reclaimed / compaction.bytes_before
    assert fraction >= MIN_RECLAIMED_FRACTION, (
        f"checkpoint fold reclaimed only {fraction:.1%} of "
        f"{compaction.bytes_before} journal bytes")


def test_compacted_replay_is_decisively_faster(journals):
    full_s = _median_s(lambda: replay_journal(
        journals["full"], write_quarantine=False))
    compact_s = _median_s(lambda: replay_journal(
        journals["compacted"], write_quarantine=False))
    speedup = full_s / max(compact_s, 1e-9)
    assert speedup >= MIN_REPLAY_SPEEDUP, (
        f"compacted replay only {speedup:.2f}x faster "
        f"({full_s * 1e3:.1f} ms -> {compact_s * 1e3:.1f} ms)")


def test_compacted_replay_restores_identical_state(journals):
    full = replay_journal(journals["full"], write_quarantine=False)
    folded = replay_journal(journals["compacted"],
                            write_quarantine=False)
    assert folded.candidates == full.candidates
    assert folded.outcomes == full.outcomes
    assert folded.dispatched == full.dispatched
    assert folded.next_seq == full.next_seq
    assert folded.n_records == full.n_records


def test_store_compaction_sheds_exactly_the_dead_rows(tmp_path):
    directory = str(tmp_path / "store")
    n_dead = build_half_superseded_store(directory)
    before = ResultStore.open(directory)
    signature = ranking_signature(before)
    n_live = int(before.live_mask().sum())
    size_before = sum(
        os.path.getsize(os.path.join(directory, name))
        for name in os.listdir(directory))

    compaction = compact_store(directory)
    assert compaction.rows_dropped == n_dead
    assert compaction.bytes_reclaimed > 0

    after = ResultStore.open(directory)
    assert after.n_rows == n_live
    assert ranking_signature(after) == signature
    size_after = sum(
        os.path.getsize(os.path.join(directory, name))
        for name in os.listdir(directory))
    assert size_after < size_before
