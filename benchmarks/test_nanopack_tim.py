"""E11 — §IV.B NANOPACK results.

Regenerates every quantitative NANOPACK statement:

* adhesive conductivities 6 and 9.5 W/m·K (silver flakes in mono-epoxy,
  micro silver spheres in multi-epoxy); metal–polymer composite at
  20 W/m·K — reproduced by effective-medium filler design;
* electrical conductivity of the adhesives (1e-6 — 1e-4 Ω·cm class);
* the objective "thermal resistance lower than 5 K·mm²/W with bond line
  thickness lower than 20 µm";
* HNC surfaces reducing the final BLT by > 20 % for the majority of
  TIMs on cm² interfaces;
* the ASTM D5470 tester (±1 K·mm²/W) recovering the material data.
"""

import pytest

from avipack.experiments.nanopack import (
    TARGETS,
    characterize_material,
    design_nanopack_adhesives,
    electrical_campaign,
    hnc_interface_study,
)
from avipack.tim.catalog import get_tim

from conftest import fmt, print_table


def test_nanopack_adhesive_design(benchmark):
    designs = benchmark.pedantic(design_nanopack_adhesives, rounds=1,
                                 iterations=1)

    rows = [(d.name, fmt(d.target_conductivity), fmt(
        d.achieved_conductivity), fmt(d.filler_loading * 100.0),
        f"{d.volume_resistivity * 100.0:.2e}" if
        d.electrically_conductive else "insulating")
        for d in designs]
    print_table(
        "SIV.B - NANOPACK adhesives by filler design "
        "(resistivity in Ohm.cm)",
        ("material", "target k", "achieved k", "loading [vol%]",
         "resistivity"), rows)

    by_name = {d.name: d for d in designs}
    # The three paper numbers, by design.
    assert by_name["silver_flake_mono_epoxy"].achieved_conductivity \
        == pytest.approx(6.0, rel=1e-3)
    assert by_name["silver_sphere_multi_epoxy"].achieved_conductivity \
        == pytest.approx(9.5, rel=1e-3)
    assert by_name["metal_polymer_composite"].achieved_conductivity \
        == pytest.approx(20.0, rel=1e-3)
    # All percolated (the adhesives are electrically conductive, as the
    # paper states: "(1e-6 - 1e-4) Ohm.cm").
    for design in designs:
        assert design.electrically_conductive
        assert 1e-8 < design.volume_resistivity < 1e-4  # Ohm.m


def test_nanopack_interface_objective(benchmark):
    studies = benchmark.pedantic(hnc_interface_study, rounds=1,
                                 iterations=1)

    rows = [(s.material_name, fmt(s.blt_flat_um), fmt(s.blt_hnc_um),
             fmt(s.blt_reduction_pct), fmt(s.resistance_hnc_kmm2, 2),
             "yes" if s.meets_target_hnc else "no")
            for s in studies]
    print_table(
        "SIV.B - interfaces flat vs HNC surface (target: <5 K.mm2/W at "
        "<20 um)",
        ("TIM", "BLT flat [um]", "BLT HNC [um]", "reduction [%]",
         "R HNC [K.mm2/W]", "meets target"), rows)

    # ">20% BLT reduction for the majority of TIMs".
    reductions = [s.blt_reduction_pct for s in studies]
    assert sum(1 for r in reductions if r > 20.0) \
        > len(reductions) / 2
    # The NANOPACK composite meets the <5 K.mm2/W @ <20 um objective.
    by_name = {s.material_name: s for s in studies}
    composite = by_name["nanopack_metal_polymer_composite"]
    assert composite.meets_target_hnc
    assert composite.resistance_hnc_kmm2 < 5.0
    assert composite.blt_hnc_um < 20.0
    # Baseline grease does not - the reason the project exists.
    assert not by_name["standard_grease"].meets_target_flat


def test_nanopack_d5470_campaign(benchmark):
    materials = ("nanopack_silver_flake_epoxy",
                 "nanopack_silver_sphere_epoxy",
                 "nanopack_metal_polymer_composite")

    results = benchmark.pedantic(
        lambda: {name: characterize_material(name, seed=17)
                 for name in materials},
        rounds=1, iterations=1)

    rows = [(name, fmt(get_tim(name).conductivity),
             fmt(results[name].conductivity),
             fmt(results[name].contact_resistance_kmm2, 2))
            for name in materials]
    print_table(
        "SIV.B - virtual ASTM D5470 characterisation (+/-1 K.mm2/W "
        "tester)",
        ("material", "true k [W/m.K]", "measured k", "Rc [K.mm2/W]"),
        rows)

    # The tester recovers each material within its noise-driven error
    # and preserves the 6 < 9.5 < 20 ordering.
    measured = [results[name].conductivity for name in materials]
    assert measured == sorted(measured)
    for name in materials:
        true_k = get_tim(name).conductivity
        assert results[name].conductivity == pytest.approx(true_k,
                                                           rel=0.35)


def test_nanopack_electrical_campaign(benchmark):
    results = benchmark.pedantic(electrical_campaign, rounds=1,
                                 iterations=1)

    rows = [(name, f"{resistance * 1e6:.1f}")
            for name, resistance in sorted(results.items())]
    print_table(
        "SIV.B - four-wire resistance of conductive adhesives "
        "(10 mm x 1 mm2 bars)",
        ("material", "resistance [uOhm... x1e-6 Ohm]"), rows)

    # All conductive adhesives measurable above the 50 uOhm floor.
    assert len(results) >= 4
    for resistance in results.values():
        assert resistance >= 50e-6
