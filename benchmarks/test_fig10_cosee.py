"""E7 — Fig. 10: COSEE SEB thermal results.

Regenerates the paper's headline figure: ΔT(PCB1 − air) versus SEB power
for the three configurations (without LHP / with LHP horizontal / with
LHP at 22° tilt), and checks its shape:

* the no-LHP curve is far steeper and stops around 40–55 W;
* both LHP curves reach 100 W at roughly the ΔT the no-LHP curve hits at
  40 W (≈ 60 K);
* the tilted curve sits slightly above the horizontal one;
* the LHPs carry ≈ 58 W at full power.
"""

import pytest

from avipack.experiments.cosee import DEFAULT_POWER_SWEEP, fig10_curves
from avipack.packaging.seb import SeatElectronicsBox, SebConfiguration

from conftest import fmt, print_table


def test_fig10_curves(benchmark):
    curves = benchmark.pedantic(
        lambda: fig10_curves(DEFAULT_POWER_SWEEP), rounds=1, iterations=1)

    by_power = {}
    for name, curve in curves.items():
        for power, delta in curve:
            by_power.setdefault(power, {})[name] = delta
    rows = []
    for power in sorted(by_power):
        entry = by_power[power]
        rows.append((
            fmt(power, 0),
            fmt(entry.get("without_lhp", float("nan")))
            if "without_lhp" in entry else "-",
            fmt(entry["with_lhp_horizontal"]),
            fmt(entry["with_lhp_tilt22"]),
        ))
    print_table(
        "Fig. 10 - Tpcb1 - Tair (K) vs SEB power (W)",
        ("P [W]", "without LHP", "LHP horizontal", "LHP 22deg tilt"),
        rows)

    without = dict(curves["without_lhp"])
    horizontal = dict(curves["with_lhp_horizontal"])
    tilted = dict(curves["with_lhp_tilt22"])

    # Shape 1: no-LHP curve much steeper - at 40 W it already reads ~60 K.
    assert without[40.0] == pytest.approx(60.0, abs=10.0)
    # Shape 2: the LHP curves reach 100 W near the same ~60 K level.
    assert horizontal[100.0] == pytest.approx(60.0, abs=10.0)
    # Shape 3: at every shared power the LHP curve is far below.
    for power in without:
        assert horizontal[power] < 0.65 * without[power]
    # Shape 4: tilt penalty exists but is small (Fig. 10 shows the curves
    # nearly superposed).
    for power in horizontal:
        assert 0.0 <= tilted[power] - horizontal[power] < 5.0
    # Shape 5: the no-LHP curve was stopped early (the paper's curve ends
    # near 55 W; ours truncates at the 120 K safety line).
    assert max(without) < max(horizontal)


def test_fig10_lhp_heat_share(benchmark):
    seb = SeatElectronicsBox()
    config = SebConfiguration(cooling="hp_lhp")
    solution = benchmark.pedantic(lambda: seb.solve(100.0, config),
                                  rounds=1, iterations=1)
    print_table(
        "Fig. 10 annotation - power dissipated by the loop heat pipes",
        ("total P [W]", "Q through LHPs [W]", "Q through box [W]"),
        [(fmt(solution.power, 0), fmt(solution.lhp_heat),
          fmt(solution.box_heat))])
    # "Power dissipated by Loop heat pipes : 58 W".
    assert solution.lhp_heat == pytest.approx(58.0, rel=0.15)
    assert solution.lhp_heat + solution.box_heat \
        == pytest.approx(100.0, rel=1e-3)
