"""E6 — §I/§IV: the hot-spot crisis and the limit of ARINC 600 air.

"Components heat densities are surpassing 10 W/cm2 and will reach
100 W/cm2.  The standard approach using typical ARINC600 standard
cooling conditions (220 kg/h/kW) are no longer applicable.  This global
airflow rate cannot cope with the hot spot problems (up to ten times the
standard air flow rate would be required)."

The bench sweeps the local heat flux from today's ~1 W/cm2 to the
projected 100 W/cm2, computes the flow multiplier over the ARINC
allocation needed to hold the hot spot within 60 K of the air, and a
finite-volume board model showing the spreading-limited local peak.
"""

import pytest

from avipack.environments.arinc600 import required_flow_multiplier
from avipack.thermal.conduction import (
    BoundaryCondition,
    CartesianGrid,
    ConductionSolver,
)

from conftest import fmt, print_table

FLUX_SWEEP = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


def test_hotspot_flow_multiplier(benchmark):
    multipliers = benchmark.pedantic(
        lambda: {flux: required_flow_multiplier(flux, 60.0)
                 for flux in FLUX_SWEEP},
        rounds=1, iterations=1)

    rows = [(fmt(flux, 0), fmt(m, 1) if m != float("inf") else
             "infeasible") for flux, m in multipliers.items()]
    print_table(
        "SIV - flow multiplier over ARINC 600 to hold a hot spot at "
        "+60 K", ("flux [W/cm2]", "x standard flow"), rows)

    # Shape 1: today's fluxes are fine at the standard allocation.
    assert multipliers[1.0] == pytest.approx(1.0)
    # Shape 2: ~10 W/cm2 needs roughly an order of magnitude more air
    # ("up to ten times the standard air flow rate would be required").
    assert multipliers[10.0] == pytest.approx(10.0, rel=0.5)
    # Shape 3: 100 W/cm2 is flatly infeasible with air.
    assert multipliers[100.0] == float("inf")
    # Shape 4: monotone escalation.
    finite = [m for m in multipliers.values() if m != float("inf")]
    assert finite == sorted(finite)


def test_hotspot_board_field(benchmark):
    """FV model: a 10 x 10 mm hot spot on a 100 x 80 mm board."""

    def solve(flux_w_cm2):
        grid = CartesianGrid((25, 20, 2), (0.1, 0.08, 0.0016),
                             conductivity=18.0)
        grid.kz[:, :, :] = 0.35
        spot = grid.region_slices((0.045, 0.055), (0.035, 0.045),
                                  (0.0, 0.0016))
        grid.add_power(spot, flux_w_cm2 * 1.0)  # 1 cm2 spot
        solver = ConductionSolver(grid)
        for face in ("z_min", "z_max"):
            solver.set_boundary(face, BoundaryCondition(
                "convection", 40.0, ambient=313.15))
        return solver.solve_steady()

    fluxes = (1.0, 10.0, 100.0)
    solutions = benchmark.pedantic(
        lambda: {f: solve(f) for f in fluxes}, rounds=1, iterations=1)

    rows = [(fmt(f, 0), fmt(solutions[f].max_temperature - 313.15, 1))
            for f in fluxes]
    print_table(
        "SI - board hot-spot peak rise over air (FV model, h=40 W/m2K)",
        ("flux [W/cm2]", "peak rise [K]"), rows)

    # Shape: the peak rise scales with flux and the 100 W/cm2 case is
    # catastrophically beyond the 85 degC world (rise >> 100 K).
    rises = [solutions[f].max_temperature - 313.15 for f in fluxes]
    assert rises == sorted(rises)
    assert rises[0] < 60.0
    assert rises[-1] > 150.0
