"""Ablation A5 — margin identification: tornado + Monte-Carlo.

"To identify the weaknesses of the design and margins regarding fatigue
effects" (§II).  This bench runs the two margin tools on the COSEE
chain:

* a tornado (OAT sensitivity) of the ΔT≤60 K capability over the five
  chain parameters — which knob owns the margin;
* a Monte-Carlo of the 40 W PCB ΔT under realistic parameter scatter —
  the P95/P99 numbers a margin policy signs off on.
"""

import pytest

from avipack.core.sensitivity import one_at_a_time, tornado_rows
from avipack.core.uncertainty import Distribution, propagate
from avipack.packaging.seb import (
    SeatElectronicsBox,
    SeatStructure,
    SebConfiguration,
)

from conftest import fmt, print_table


def capability_metric(params):
    seb = SeatElectronicsBox(
        internal_conductance=params["internal_g"],
        n_heatpipes=int(round(params["n_hp"])),
        hp_saddle_area=params["saddle_area"])
    structure = SeatStructure(total_area=params["struct_area"],
                              fin_half_length=params["fin_half"])
    config = SebConfiguration(cooling="hp_lhp", structure=structure)
    return seb.max_power_for_delta_t(60.0, config)


BASELINE = {"internal_g": 1.2, "n_hp": 4.0, "saddle_area": 4e-4,
            "struct_area": 0.18, "fin_half": 0.11}


def test_capability_tornado(benchmark):
    study = benchmark.pedantic(
        lambda: one_at_a_time(capability_metric, BASELINE,
                              relative_step=0.2),
        rounds=1, iterations=1)

    rows = [(name, fmt(low), fmt(high), f"{elasticity:+.3f}")
            for name, low, high, elasticity in tornado_rows(study)]
    print_table(
        "A5a - capability tornado (+/-20 % on each chain parameter)",
        ("parameter", "low [W]", "high [W]", "elasticity"), rows)
    print(f"  baseline capability: {study.metric_baseline:.1f} W")

    # The sink (structure area) owns the margin; the saddle TIM area is
    # nearly irrelevant - exactly the ablation-A1 ordering, recovered
    # automatically by the generic tool.
    assert study.dominant().parameter == "struct_area"
    assert abs(study.entry("saddle_area").elasticity) \
        < 0.3 * abs(study.entry("struct_area").elasticity)
    # All chain improvements help (positive elasticity) except the fin
    # half-length, where MORE distance means LESS efficiency.
    assert study.entry("fin_half").elasticity < 0.0
    for name in ("internal_g", "n_hp", "struct_area"):
        assert study.entry(name).elasticity > 0.0


def test_delta_t_monte_carlo(benchmark):
    def delta_t(params):
        seb = SeatElectronicsBox(
            internal_conductance=params["internal_g"],
            hp_saddle_area=params["saddle_area"])
        structure = SeatStructure(total_area=params["struct_area"])
        config = SebConfiguration(cooling="hp_lhp", structure=structure)
        return seb.solve(40.0, config).delta_t_pcb_air

    distributions = {
        # Assembly scatter on the internal coupling and saddle areas,
        # installation scatter on the reachable structure area.
        "internal_g": Distribution("normal", 1.2, 0.12),
        "saddle_area": Distribution("lognormal", 4e-4, 1.2),
        "struct_area": Distribution("uniform", 0.14, 0.22),
    }

    result = benchmark.pedantic(
        lambda: propagate(delta_t, distributions, n_samples=120,
                          seed=11),
        rounds=1, iterations=1)

    summary = result.margin_summary()
    print_table(
        "A5b - Monte-Carlo of dT(PCB-air) at 40 W under parameter "
        "scatter",
        ("statistic", "dT [K]"),
        [(key, fmt(value, 2)) for key, value in summary.items()])
    print(f"  P(dT > 32 K paper band) = "
          f"{result.probability_above(32.0):.2f}")

    # Nominal 25.6 K: the scatter stays in a credible band and the P99
    # remains far from the 60 K capability criterion - real margin.
    assert 23.0 < summary["p50"] < 29.0
    assert summary["p99"] < 40.0
    assert summary["p50"] <= summary["p95"] <= summary["p99"]
    assert result.failures == 0
