"""Solver-kernel performance benchmarks.

Not a paper figure: these time the numerical kernels that everything
else stands on, with real multi-round statistics (unlike the
reproduction benches, which run once and check shapes).  They guard the
library against performance regressions — level-3 sweeps call these
kernels thousands of times during a design study.
"""

import pytest

from avipack import perf
from avipack.materials.fluids import saturation_properties
from avipack.mechanical.beam import BeamModel, BeamSection
from avipack.mechanical.plate import PlateSpec, plate_modes
from avipack.thermal.conduction import (
    BoundaryCondition,
    CartesianGrid,
    ConductionSolver,
)
from avipack.thermal.network import ThermalNetwork
from avipack.thermal.transient import TransientNetworkSolver
from avipack.twophase.heatpipe import standard_copper_water_heatpipe


def build_board_solver():
    grid = CartesianGrid((40, 30, 3), (0.2, 0.15, 0.0024),
                         conductivity=18.0)
    grid.kz[:, :, :] = 0.35
    region = grid.region_slices((0.09, 0.11), (0.07, 0.08),
                                (0.0, 0.0024))
    grid.add_power(region, 10.0)
    solver = ConductionSolver(grid)
    solver.set_boundary("z_min",
                        BoundaryCondition("convection", 25.0, 313.15))
    solver.set_boundary("z_max",
                        BoundaryCondition("convection", 25.0, 313.15))
    return solver


def build_network(n_chains=30, chain_length=6):
    net = ThermalNetwork()
    net.add_node("sink", fixed_temperature=300.0)
    for c in range(n_chains):
        previous = "sink"
        for i in range(chain_length):
            name = f"n{c}_{i}"
            net.add_node(name, heat_load=1.0)
            net.add_resistance(name, previous, 0.5)
            previous = name
    return net


def test_perf_fv_board_solve(benchmark):
    """3 600-cell orthotropic board: assemble + direct solve."""
    solver = build_board_solver()
    solution = benchmark(solver.solve_steady)
    assert solution.max_temperature > 313.15


def test_perf_network_solve(benchmark):
    """180-node linear network solve."""
    net = build_network()
    solution = benchmark(net.solve)
    assert solution.residual < 1e-6


def test_perf_nonlinear_network(benchmark):
    """Nonlinear (radiation-like) network fixed point."""
    net = ThermalNetwork()
    net.add_node("sink", fixed_temperature=300.0)
    for i in range(20):
        net.add_node(f"n{i}", heat_load=5.0)
        net.add_conductance(
            f"n{i}", "sink",
            lambda a, b: 1e-9 * (a * a + b * b) * (a + b))
    solution = benchmark(net.solve)
    assert solution.residual < 1e-4


def build_radiation_chain(n_stages=15):
    """Serial radiation-like chain whose fixed point needs ~200 passes."""
    net = ThermalNetwork()
    net.add_node("amb", fixed_temperature=260.0)
    previous = "amb"
    for i in range(n_stages):
        name = f"stage{i}"
        net.add_node(name, heat_load=3.0)
        net.add_conductance(name, previous,
                            lambda a, b: 5.67e-10 * (a * a + b * b)
                            * (a + b))
        previous = name
    return net


def build_transient_chain(n_nodes=30):
    """Constant-conductance ladder for LU-reuse transient stepping."""
    net = ThermalNetwork()
    net.add_node("amb", fixed_temperature=300.0)
    previous = "amb"
    for i in range(n_nodes):
        name = f"m{i}"
        net.add_node(name, heat_load=0.5, capacitance=20.0)
        net.add_conductance(name, previous, 2.0)
        previous = name
    return net


def test_perf_nonlinear_fixed_point_200(benchmark):
    """~200-iteration nonlinear fixed point: the per-iteration path.

    Every iteration must re-assemble (callable conductances) but never
    rebuild sparse structure; counters prove the discipline.
    """
    net = build_radiation_chain()
    solve = lambda: net.solve(max_iterations=500, tolerance=1e-10,  # noqa: E731
                              relaxation=0.12)
    perf.reset("network.steady")
    solution = solve()
    stats = perf.stats("network.steady")
    assert solution.iterations >= 150
    assert stats.assemblies == solution.iterations >= 1
    assert stats.factorizations == solution.iterations
    solution = benchmark(solve)
    assert solution.residual < 1e-8


def test_perf_transient_constant_500_steps(benchmark):
    """500-step constant-conductance transient: one LU for the run.

    The backward-Euler operator never changes, so the whole history —
    including every benchmark round after the first — must be served by
    a single factorization.
    """
    net = build_transient_chain()
    solver = TransientNetworkSolver(net)
    perf.reset("network.transient")
    result = solver.integrate(duration=500.0, time_step=1.0)
    stats = perf.stats("network.transient")
    assert len(result.times) == 501
    assert stats.assemblies >= 1
    assert stats.factorizations == 1
    assert stats.factorization_reuses == 499
    result = benchmark(solver.integrate, 500.0, 1.0)
    assert result.final("m29") > 300.0
    assert perf.stats("network.transient").factorizations == 1


def test_perf_plate_modes(benchmark):
    """Plate modal extraction (the mechanical branch inner loop)."""
    plate = PlateSpec(0.2, 0.15, 1.6e-3, 22e9, 0.28, 1850.0,
                      component_mass=0.2)
    modes = benchmark(plate_modes, plate, 6)
    assert len(modes) == 6


def test_perf_beam_fem(benchmark):
    """60-element beam eigensolve."""
    section = BeamSection.rectangular(0.02, 0.004, 70e9, 2700.0)
    beam = BeamModel(0.5, section, 60)
    beam.set_support("left", "pinned")
    beam.set_support("right", "pinned")
    frequencies = benchmark(beam.natural_frequencies, 5)
    assert frequencies[0] > 0.0


def test_perf_saturation_properties(benchmark):
    """Working-fluid property evaluation (called inside every two-phase
    iteration)."""
    state = benchmark(saturation_properties, "ammonia", 320.0)
    assert state.pressure > 0.0


def test_perf_heatpipe_limits(benchmark):
    """Full five-limit heat-pipe evaluation."""
    pipe = standard_copper_water_heatpipe()
    limits = benchmark(pipe.operating_limits, 333.15)
    assert len(limits) == 5
