"""Job-service overhead benchmarks: latency, throughput, admission.

The service exists for robustness, not speed — but its bookkeeping
(socket round trips, event fan-out, journalling tee, manifests) must
stay a small tax on top of the sweep it wraps.  Three loose gates:

* request round-trip latency (``ping``) stays in the milliseconds;
* a served 12-candidate campaign costs at most a bounded wall-clock
  premium over the same candidates run directly through
  :class:`~avipack.sweep.SweepRunner`;
* the admission-rejection path (the hot path under overload) answers
  well under the heartbeat period, so a saturated server stays
  responsive.
"""

import os
import shutil
import statistics
import tempfile
import time

import pytest

from avipack.errors import ServiceError
from avipack.service import (
    AdmissionPolicy,
    ServiceClient,
    ServiceConfig,
    ThreadedService,
)
from avipack.sweep import DesignSpace, SweepRunner

AXES = {
    "power_per_module": [8.0, 12.0, 16.0, 20.0, 24.0, 28.0],
    "cooling": ["direct_air_flow", "air_flow_through"],
}

#: Median ping round trip must stay under this [s].
PING_CEILING_S = 0.050

#: Served campaign may cost at most this much extra wall clock [s]
#: over the direct runner (absolute premium: the sweep itself is fast,
#: so a ratio would just measure noise).
SERVICE_PREMIUM_CEILING_S = 3.0

#: Median admission rejection must answer under this [s].
REJECTION_CEILING_S = 0.050


def _serve(throttle_s=0.0):
    sock_dir = tempfile.mkdtemp(prefix="avibench", dir="/tmp")
    config = ServiceConfig(
        socket_path=os.path.join(sock_dir, "bench.sock"),
        journal_dir=os.path.join(sock_dir, "jobs"),
        parallel=False,
        heartbeat_s=0.5,
        throttle_s=throttle_s,
        admission=AdmissionPolicy(max_queued=1, max_jobs_per_client=1))
    return sock_dir, ThreadedService(config), config.socket_path


@pytest.fixture()
def served():
    sock_dir, service, socket_path = _serve()
    service.start()
    try:
        yield ServiceClient(socket_path, timeout_s=30.0)
    finally:
        service.stop(timeout_s=60.0)
        shutil.rmtree(sock_dir, ignore_errors=True)


@pytest.fixture()
def served_slow():
    # Throttled sweeps keep the hog job alive for the whole rejection
    # measurement, so every probe really exercises the refusal path.
    sock_dir, service, socket_path = _serve(throttle_s=0.3)
    service.start()
    try:
        yield ServiceClient(socket_path, timeout_s=30.0)
    finally:
        service.stop(timeout_s=60.0)
        shutil.rmtree(sock_dir, ignore_errors=True)


def test_ping_round_trip_latency(served, table_printer):
    served.ping()  # connection warm-up
    samples = []
    for _ in range(50):
        t0 = time.perf_counter()
        served.ping()
        samples.append(time.perf_counter() - t0)
    median_s = statistics.median(samples)
    table_printer(
        "Service request latency (50 pings)",
        ["metric", "value [ms]"],
        [["median", f"{median_s * 1e3:.2f}"],
         ["p90", f"{sorted(samples)[44] * 1e3:.2f}"],
         ["max", f"{max(samples) * 1e3:.2f}"]])
    assert median_s < PING_CEILING_S


def test_served_campaign_overhead(served, table_printer):
    space = DesignSpace(axes={name: tuple(values)
                              for name, values in AXES.items()})
    t0 = time.perf_counter()
    direct = SweepRunner(parallel=False).run(space)
    direct_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    job_id = served.submit(axes=AXES)["job_id"]
    final = served.wait(job_id, timeout_s=120.0)
    served_s = time.perf_counter() - t0

    table_printer(
        "Served campaign vs direct runner (12 candidates)",
        ["path", "wall [s]", "candidates"],
        [["direct", f"{direct_s:.3f}", direct.n_candidates],
         ["served", f"{served_s:.3f}", final["done"]],
         ["premium", f"{served_s - direct_s:.3f}", ""]])

    assert final["state"] == "completed"
    assert final["done"] == direct.n_candidates
    assert served_s - direct_s < SERVICE_PREMIUM_CEILING_S


def test_admission_rejection_stays_fast(served_slow, table_printer):
    served = served_slow
    # Saturate the 1-job queue + 1-job quota, then time the refusals.
    running = served.submit(axes=AXES, client="hog")["job_id"]
    samples = []
    rejected = 0
    for attempt in range(30):
        t0 = time.perf_counter()
        try:
            served.submit(axes=AXES, sample=6, seed=attempt,
                          client="hog")
        except ServiceError as exc:
            assert exc.code in ("quota_exceeded", "queue_full")
            rejected += 1
        samples.append(time.perf_counter() - t0)
    served.cancel(running)
    median_s = statistics.median(samples)
    table_printer(
        "Admission rejection latency (30 refused submissions)",
        ["metric", "value"],
        [["rejected", rejected],
         ["median [ms]", f"{median_s * 1e3:.2f}"],
         ["max [ms]", f"{max(samples) * 1e3:.2f}"]])
    assert rejected == 30
    assert median_s < REJECTION_CEILING_S
