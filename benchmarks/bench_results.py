"""Committed result-store benchmark baseline: write and regression-compare.

``BENCH_results.json`` at the repository root pins median timings and
result-store counters for the columnar analytics path — ingest
throughput, memory-mapped open, top-k ranking, histogram/marginal
report rendering and lazy blob fetches.  CI re-measures and compares
with a generous tolerance (timings may grow by the ``--tolerance``
factor, default 3x, so shared-runner noise never fails a build), while
the *counters* are compared exactly — a store that re-reads blobs
during ranking, or seals the wrong number of shards, is a real
regression no matter how fast the box.

Usage::

    python benchmarks/bench_results.py write     # refresh the baseline
    python benchmarks/bench_results.py compare   # exit 1 on regression

Run from the repository root (or pass ``--baseline`` explicitly).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import statistics
import sys
import tempfile
import time

import numpy as np

from avipack import perf
from avipack.results import (
    ResultStore,
    ResultStoreWriter,
    ranked_row_ids,
    ranking_signature,
    render_store_report,
)
from avipack.sweep.runner import CandidateResult
from avipack.sweep.space import Candidate

BASELINE = pathlib.Path(__file__).resolve().parent.parent \
    / "BENCH_results.json"

#: Rows per benchmark campaign and per shard.  Pinned: the shard count
#: (and therefore ``results.shards_written``) derives from them.
N_ROWS = 20_000
SHARD_ROWS = 4096
TOP_K = 20
N_FETCHES = 64

_COOLING = ("free_convection", "direct_air_flow", "air_flow_through")
_FORM_FACTORS = ("1/2_atr", "3/4_atr", "1_atr")
_TIMS = ("standard_grease", "dry_joint")


def synthetic_outcomes(n, seed=0, tie_classes=6, compliance=0.65):
    """``n`` seeded :class:`CandidateResult` rows with tie-heavy costs.

    The cost ranks are drawn from a handful of integer classes so the
    top-k partition always faces the tie-resolution path it exercises
    in production campaigns, and every candidate axis the marginal
    queries group by is populated with several distinct values.
    """
    rng = np.random.default_rng(seed)
    outcomes = []
    for i in range(n):
        candidate = Candidate(
            power_per_module=float(rng.uniform(5.0, 45.0)),
            n_modules=int(rng.integers(2, 9)),
            cooling=_COOLING[int(rng.integers(0, len(_COOLING)))],
            tim_name=_TIMS[int(rng.integers(0, len(_TIMS)))],
            form_factor=_FORM_FACTORS[
                int(rng.integers(0, len(_FORM_FACTORS)))],
            n_components=int(rng.integers(4, 12)))
        outcomes.append(CandidateResult(
            index=i, candidate=candidate,
            fingerprint=candidate.fingerprint,
            compliant=bool(rng.random() < compliance), violations=(),
            margins={"fundamental_hz": float(rng.uniform(60, 400)),
                     "fatigue_margin": float(rng.uniform(0.1, 4.0)),
                     "deflection_margin": float(rng.uniform(0.1, 4.0)),
                     "mtbf_hours": float(rng.uniform(1e4, 1e6))},
            worst_board_c=float(rng.uniform(45.0, 90.0)),
            recommended_cooling=candidate.cooling,
            declared_cooling_feasible=True,
            cost_rank=float(rng.integers(0, tie_classes)),
            elapsed_s=0.001, worker_pid=1,
            cache_hits=0, cache_misses=1))
    return outcomes


def baseline_rank_and_report(store, top=TOP_K):
    """The pre-columnar analytics path, against the same store files.

    Unpickle every blob back into its dataclass, filter and sort in
    Python, format a top table — what campaign reporting cost before
    the typed columns existed.  Returns the ranking signature and the
    rendered table so callers can check byte-identical ordering.
    """
    outcomes = [store.fetch_outcome(row) for row in range(store.n_rows)]
    compliant = [o for o in outcomes if o.compliant]
    ranked = sorted(compliant, key=lambda o: (o.cost_rank,
                                              -o.thermal_headroom_c,
                                              o.index))[:top]
    lines = [f"{position:>4}  {o.fingerprint}  {o.cost_rank:6.1f}  "
             f"{o.worst_board_c:7.2f}"
             for position, o in enumerate(ranked, start=1)]
    signature = [(o.fingerprint, o.cost_rank, o.worst_board_c)
                 for o in ranked]
    return signature, "\n".join(lines)


def store_rank_and_report(store, top=TOP_K):
    """The columnar path: partition-select the top, render from columns."""
    signature = ranking_signature(store, top)
    return signature, render_store_report(store, top=top)


def build_store(directory, n_rows=N_ROWS, seed=17):
    outcomes = synthetic_outcomes(n_rows, seed=seed)
    writer = ResultStoreWriter(directory, shard_rows=SHARD_ROWS)
    try:
        writer.add_many(outcomes)
    finally:
        writer.close()
    return outcomes


def _median_ms(call, rounds):
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        call()
        samples.append(time.perf_counter() - t0)
    return round(statistics.median(samples) * 1e3, 4)


def run_benches(rounds=9):
    """Measure every pinned scenario; returns the baseline document."""
    benches = {}
    with tempfile.TemporaryDirectory(prefix="bench-results-") as tmp:
        outcomes = synthetic_outcomes(N_ROWS, seed=17)

        # Ingest: fresh directory per round, counters from a clean pass.
        ingest_rounds = min(rounds, 3)
        samples = []
        for r in range(ingest_rounds):
            directory = os.path.join(tmp, f"ingest-{r}")
            perf.reset("results.rows_ingested")
            perf.reset("results.shards_written")
            t0 = time.perf_counter()
            writer = ResultStoreWriter(directory, shard_rows=SHARD_ROWS)
            try:
                writer.add_many(outcomes)
            finally:
                writer.close()
            samples.append(time.perf_counter() - t0)
        benches["store_ingest_20k"] = {
            "median_ms": round(statistics.median(samples) * 1e3, 4),
            "counters": {
                "results.rows_ingested":
                    perf.counter("results.rows_ingested"),
                "results.shards_written":
                    perf.counter("results.shards_written"),
            },
        }

        directory = os.path.join(tmp, "ingest-0")
        benches["store_open_verify"] = {
            "median_ms": _median_ms(
                lambda: ResultStore.open(directory), rounds),
            "counters": {
                "results.shards_quarantined": 0,
                "shards": math.ceil(N_ROWS / SHARD_ROWS),
            },
        }

        store = ResultStore.open(directory)
        store.column("cost_rank")  # warm the column cache once
        benches["topk_20_of_20k"] = {
            "median_ms": _median_ms(
                lambda: ranked_row_ids(store, TOP_K), rounds),
            "counters": {"results.blob_fetches": 0,
                         "rows": int(store.n_rows)},
        }
        benches["columnar_report_20k"] = {
            "median_ms": _median_ms(
                lambda: render_store_report(store, top=TOP_K), rounds),
            "counters": {"results.blob_fetches": 0},
        }

        perf.reset("results.blob_fetches")
        top_rows = ranked_row_ids(store, N_FETCHES)
        benches["lazy_fetch_64_blobs"] = {
            "median_ms": _median_ms(
                lambda: [store.fetch_outcome(int(row))
                         for row in top_rows[:N_FETCHES]], 1),
            "counters": {"results.blob_fetches":
                         perf.counter("results.blob_fetches")},
        }

    return {
        "schema": 1,
        "unit": "median wall milliseconds over warm rounds",
        "rounds": rounds,
        "n_rows": N_ROWS,
        "shard_rows": SHARD_ROWS,
        "benches": benches,
    }


def write_baseline(path, rounds):
    document = run_benches(rounds)
    tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    print(f"wrote {path} ({len(document['benches'])} benches)")
    return 0


def compare_baseline(path, rounds, tolerance, report_path=None):
    if not path.exists():
        print(f"ERROR: baseline {path} not found; run "
              "`python benchmarks/bench_results.py write` and commit it")
        return 2
    baseline = json.loads(path.read_text())
    current = run_benches(rounds)
    failures = []
    comparison = {"schema": 1, "tolerance": tolerance, "rounds": rounds,
                  "benches": {}}
    for name, pinned in sorted(baseline["benches"].items()):
        measured = current["benches"].get(name)
        if measured is None:
            failures.append(f"{name}: bench disappeared")
            comparison["benches"][name] = {"verdict": "MISSING",
                                           "baseline": pinned}
            continue
        limit = pinned["median_ms"] * tolerance
        verdict = "ok"
        if measured["median_ms"] > limit:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: {measured['median_ms']:.3f} ms exceeds "
                f"{tolerance:g}x baseline {pinned['median_ms']:.3f} ms")
        counter_names = sorted(set(pinned["counters"])
                               | set(measured["counters"]))
        for counter in counter_names:
            expected = pinned["counters"].get(counter)
            got = measured["counters"].get(counter)
            if got != expected:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: counter {counter} drifted: baseline "
                    f"{expected} -> measured {got} "
                    "(store discipline broken)")
        comparison["benches"][name] = {
            "verdict": verdict,
            "baseline_ms": pinned["median_ms"],
            "measured_ms": measured["median_ms"],
            "limit_ms": round(limit, 4),
            "baseline_counters": pinned["counters"],
            "measured_counters": measured["counters"],
        }
        print(f"{name:<28} {measured['median_ms']:>9.3f} ms "
              f"(baseline {pinned['median_ms']:.3f}, "
              f"limit {limit:.3f})  {verdict}")
    comparison["failures"] = failures
    comparison["ok"] = not failures
    if report_path is not None:
        tmp = report_path.parent / f"{report_path.name}.tmp.{os.getpid()}"
        tmp.write_text(json.dumps(comparison, indent=2, sort_keys=True)
                       + "\n")
        os.replace(tmp, report_path)
        print(f"comparison written to {report_path}")
    if failures:
        print("\n" + "\n".join(f"FAIL: {line}" for line in failures))
        return 1
    print("\nall benches within tolerance, counters exact")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("mode", choices=("write", "compare"))
    parser.add_argument("--baseline", type=pathlib.Path, default=BASELINE)
    parser.add_argument("--rounds", type=int, default=9)
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed slow-down factor (default 3x)")
    parser.add_argument("--report", type=pathlib.Path, default=None,
                        help="write the comparison document (JSON) here "
                             "(compare mode only)")
    args = parser.parse_args(argv)
    if args.mode == "write":
        return write_baseline(args.baseline, args.rounds)
    return compare_baseline(args.baseline, args.rounds, args.tolerance,
                            args.report)


if __name__ == "__main__":
    sys.exit(main())
