"""E12 — §II.B reliability: junction temperatures → MTBF.

"This level allows us to reach the junction temperature for each
component.  The temperature will be used as an input data for the safety
and reliability calculations.  Typical MTBF for aerospace applications
is about 40,000 h."

The bench runs the level-3 board solve, feeds the junctions to the
MIL-HDBK-217-style roll-up, prints the MTBF at several cooling levels,
and checks that (a) a properly cooled design lands in the 40 000 h
class, (b) hotter junctions destroy the prediction through Arrhenius,
and (c) removing fans (the COSEE motivation) pays off in MTBF.
"""

import pytest

from avipack.core.levels import run_level3
from avipack.packaging.component import make_component
from avipack.packaging.pcb import Pcb
from avipack.reliability.mtbf import (
    PartReliability,
    fan_reliability_penalty,
    predict_mtbf,
)
from avipack.units import celsius_to_kelvin, kelvin_to_celsius

from conftest import fmt, print_table


def instrumented_board():
    board = Pcb(0.16, 0.1, n_copper_layers=8, copper_coverage=0.7)
    board.place(make_component("cpu", "bga_35mm", 4.0, (0.08, 0.05)))
    board.place(make_component("fpga", "bga_23mm", 2.0, (0.12, 0.07)))
    board.place(make_component("reg", "to_220", 3.0, (0.04, 0.03)))
    return board


PARTS = [
    PartReliability("cpu", 150.0, activation_energy_ev=0.5,
                    quality="full_mil"),
    PartReliability("fpga", 120.0, activation_energy_ev=0.45,
                    quality="full_mil"),
    PartReliability("reg", 90.0, activation_energy_ev=0.4,
                    quality="full_mil"),
]


def test_mtbf_from_level3_junctions(benchmark):
    board = instrumented_board()
    cooling_cases = {
        "well_cooled_h60": 60.0,
        "standard_h30": 30.0,
        "starved_h6": 6.0,
    }

    def run():
        outcome = {}
        for name, h_film in cooling_cases.items():
            level3 = run_level3(board, celsius_to_kelvin(55.0),
                                h_film=h_film)
            prediction = predict_mtbf(PARTS,
                                      level3.junction_temperatures)
            outcome[name] = (level3, prediction)
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, (level3, prediction) in outcome.items():
        rows.append((
            name,
            fmt(kelvin_to_celsius(level3.max_junction)),
            fmt(prediction.total_failure_rate_fit, 0),
            fmt(prediction.mtbf_hours, 0),
            "yes" if prediction.mtbf_hours >= 40_000.0 else "NO",
        ))
    print_table(
        "SII.B - junction temperatures -> MTBF (target 40,000 h)",
        ("cooling", "max Tj [degC]", "failure rate [FIT]",
         "MTBF [h]", ">= 40 kh"), rows)

    well = outcome["well_cooled_h60"][1]
    standard = outcome["standard_h30"][1]
    starved = outcome["starved_h6"][1]
    # Shape 1: the well-cooled design reaches the aerospace class.
    assert well.mtbf_hours >= 40_000.0
    # Shape 2: MTBF degrades monotonically as cooling is removed.
    assert well.mtbf_hours > standard.mtbf_hours > starved.mtbf_hours
    # Shape 3: the starved design also violates the derating rules.
    assert starved.derating_violations


def test_fanless_reliability_payoff(benchmark):
    """The COSEE motivation: "the use of fans will be required with the
    following drawbacks: ... reliability and maintenance concern"."""
    equipment_fit = 8_000.0

    ratios = benchmark.pedantic(
        lambda: {n: fan_reliability_penalty(equipment_fit, n)
                 for n in (0, 1, 2, 4)},
        rounds=1, iterations=1)

    rows = [(str(n), fmt(1e9 / (equipment_fit / ratio), 0),
             fmt(ratio, 3)) for n, ratio in ratios.items()]
    print_table(
        "SIV.A - MTBF penalty of fan cooling vs the passive two-phase "
        "solution", ("fans", "MTBF [h]", "relative MTBF"), rows)

    # Passive (0 fans) wins; each fan cuts the MTBF further.
    values = [ratios[n] for n in (0, 1, 2, 4)]
    assert values == sorted(values, reverse=True)
    assert ratios[0] == pytest.approx(1.0)
    assert ratios[2] < 0.5
