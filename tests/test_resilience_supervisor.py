"""Supervision: retry/escalation policies, degradation, recovery trails."""

import math

import pytest

from avipack.core.levels import degraded_level3, run_pyramid
from avipack.errors import (
    ConvergenceError,
    InputError,
    ModelRangeError,
)
from avipack.resilience import (
    DEFAULT_NETWORK_ESCALATION,
    NO_SUPERVISION,
    EscalationStep,
    Supervisor,
    SupervisionPolicy,
    solve_network,
)
from avipack.sweep import Candidate
from avipack.thermal.network import ThermalNetwork


def ill_conditioned_network(k=0.12, heat_load=50.0):
    """Two-node network whose fixed-point map is unstable at the default
    relaxation: chip-to-ambient conductance grows exponentially with the
    chip temperature, so the undamped update overshoots harder the
    closer it gets.  Steeper ``k`` needs deeper relaxation to converge
    (k=0.08 recovers on the ladder's first escalation, k=0.12 only on
    the deepest rung)."""
    net = ThermalNetwork()
    net.add_node("chip", heat_load=heat_load)
    net.add_node("ambient", fixed_temperature=300.0)
    net.add_conductance(
        "chip", "ambient",
        lambda t_hot, t_cold, k=k: math.exp(k * (t_hot - 350.0)))
    return net


class TestNonConvergencePath:
    def test_bare_solve_raises_with_diagnostics(self):
        net = ill_conditioned_network()
        with pytest.raises(ConvergenceError) as excinfo:
            net.solve()
        exc = excinfo.value
        assert exc.iterations == 200
        assert exc.residual > 0.0
        assert set(exc.last_iterate) == {"chip", "ambient"}
        assert exc.last_iterate["ambient"] == pytest.approx(300.0)

    def test_oscillating_network_with_no_relaxation_margin(self):
        # relaxation=1.0 applies the full unstable update every pass:
        # the iterate ping-pongs around the root forever.
        net = ill_conditioned_network(k=0.08)
        with pytest.raises(ConvergenceError):
            net.solve(relaxation=1.0)

    def test_starved_iteration_budget(self):
        net = ill_conditioned_network(k=0.08)
        with pytest.raises(ConvergenceError) as excinfo:
            net.solve(relaxation=0.175, max_iterations=3)
        assert excinfo.value.iterations == 3

    def test_invalid_relaxation_is_input_error_not_convergence(self):
        net = ill_conditioned_network()
        with pytest.raises(InputError):
            net.solve(relaxation=0.0)

    def test_warm_start_seeds_named_nodes(self):
        # Warm-started near the root, even one iteration's update is
        # already inside tolerance at deep relaxation.
        net = ill_conditioned_network(k=0.08)
        solution = net.solve(relaxation=0.175,
                             initial_temperatures={"chip": 350.0,
                                                   "ignored_node": 999.0})
        assert solution.temperature("chip") == pytest.approx(350.0, abs=0.1)


class TestNetworkEscalation:
    def test_default_ladder_recovers_mildly_unstable_network(self):
        supervisor = Supervisor()
        solution = solve_network(ill_conditioned_network(k=0.08),
                                 supervisor=supervisor)
        assert solution.temperature("chip") == pytest.approx(350.0, abs=0.5)
        assert supervisor.any_recovered
        trail = supervisor.trails[0]
        assert trail.site == "thermal.network.solve"
        assert trail.attempts[0].error_type == "ConvergenceError"
        assert trail.attempts[-1].ok
        assert "warm-start" in trail.attempts[-1].action

    def test_deep_rung_needed_for_steeper_network(self):
        supervisor = Supervisor()
        solution = solve_network(ill_conditioned_network(k=0.12),
                                 supervisor=supervisor)
        assert solution.temperature("chip") == pytest.approx(350.0, abs=0.5)
        trail = supervisor.trails[0]
        assert trail.n_attempts == 3
        assert trail.attempts[-1].action.startswith("deep_relaxation")
        assert trail.recovered and not trail.degraded

    def test_clean_solve_leaves_no_trail(self):
        net = ThermalNetwork()
        net.add_node("chip", heat_load=10.0)
        net.add_node("ambient", fixed_temperature=300.0)
        net.add_resistance("chip", "ambient", 2.0)
        supervisor = Supervisor()
        solution = solve_network(net, supervisor=supervisor)
        assert solution.temperature("chip") == pytest.approx(320.0)
        assert supervisor.trails == ()

    def test_exhausted_ladder_reraises_and_records_failure(self):
        supervisor = Supervisor()
        ladder = (EscalationStep("baseline"),)
        with pytest.raises(ConvergenceError):
            solve_network(ill_conditioned_network(), escalation=ladder,
                          supervisor=supervisor)
        trail = supervisor.trails[0]
        assert not trail.resolved
        assert trail.n_attempts == 1

    def test_supervisor_method_uses_policy_ladder(self):
        supervisor = Supervisor(SupervisionPolicy(
            network_escalation=DEFAULT_NETWORK_ESCALATION))
        solution = supervisor.solve_network(ill_conditioned_network(k=0.08))
        assert solution.temperature("chip") == pytest.approx(350.0, abs=0.5)

    def test_no_supervision_policy_fails_like_bare_solve(self):
        supervisor = Supervisor(NO_SUPERVISION)
        with pytest.raises(ConvergenceError):
            supervisor.solve_network(ill_conditioned_network(k=0.08))


class TestSupervisorCall:
    def test_transient_failure_retried_and_recorded(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise ConvergenceError("transient", iterations=5)
            return "ok"

        supervisor = Supervisor()
        assert supervisor.call("site", flaky) == "ok"
        assert len(calls) == 2
        trail = supervisor.trails[0]
        assert trail.recovered
        assert [a.outcome for a in trail.attempts] == ["failed", "ok"]

    def test_retry_budget_exhaustion_raises_last_error(self):
        supervisor = Supervisor(SupervisionPolicy(max_retries=1))

        def always_bad():
            raise ConvergenceError("still bad")

        with pytest.raises(ConvergenceError):
            supervisor.call("site", always_bad)
        trail = supervisor.trails[0]
        assert trail.n_attempts == 2  # call + one retry
        assert not trail.resolved

    def test_non_retryable_error_goes_to_fallback_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ModelRangeError("out of range")

        supervisor = Supervisor()
        value = supervisor.call("site", broken,
                                fallback=lambda exc: "degraded-value",
                                fallback_label="degrade")
        assert value == "degraded-value"
        assert len(calls) == 1  # no retries burned on a non-retryable
        trail = supervisor.trails[0]
        assert trail.degraded and not trail.recovered
        assert trail.attempts[-1].action == "degrade"

    def test_foreign_exception_propagates_untouched(self):
        supervisor = Supervisor()
        with pytest.raises(ZeroDivisionError):
            supervisor.call("site", lambda: 1 / 0,
                            fallback=lambda exc: "never")
        assert supervisor.trails == ()  # bugs are not recovery events

    def test_failed_fallback_reraises_fallback_error(self):
        supervisor = Supervisor(SupervisionPolicy(max_retries=0))

        def bad_fallback(exc):
            raise ModelRangeError("fallback broken too")

        with pytest.raises(ModelRangeError):
            supervisor.call("site", lambda: (_ for _ in ()).throw(
                ConvergenceError("x")), fallback=bad_fallback)
        assert not supervisor.trails[0].resolved

    def test_clean_call_records_nothing(self):
        supervisor = Supervisor()
        assert supervisor.call("site", lambda: 7) == 7
        assert supervisor.trails == ()


class TestDegradedLevel3:
    def test_junctions_follow_board_plus_package_rise(self):
        pcb = Candidate().board()
        boundary = 340.0
        result = degraded_level3(pcb, boundary)
        assert result.degraded
        for component in pcb.components:
            expected = component.junction_temperature_from_board(boundary)
            assert result.junction_temperatures[component.name] \
                == pytest.approx(expected)
        assert result.max_junction \
            == pytest.approx(max(result.junction_temperatures.values()))

    def test_violations_against_junction_limit(self):
        pcb = Candidate(power_per_module=40.0).board()
        hot = degraded_level3(pcb, 500.0)
        assert hot.violations  # every junction blows the 125 degC rule
        assert not hot.compliant
        cool = degraded_level3(pcb, 310.0)
        assert cool.compliant

    def test_rejects_bad_boundary(self):
        with pytest.raises(InputError):
            degraded_level3(Candidate().board(), -5.0)


class TestSupervisedPyramid:
    def test_unsupervised_pyramid_unchanged(self):
        rack, _ = Candidate().build()
        result = run_pyramid(rack)
        assert not result.degraded
        assert all(not lv3.degraded for lv3 in result.level3.values())

    def test_supervised_pyramid_matches_unsupervised_when_healthy(self):
        rack, _ = Candidate().build()
        plain = run_pyramid(rack)
        supervisor = Supervisor()
        supervised = run_pyramid(rack, supervisor=supervisor)
        assert supervised.level2.worst_board_temperature \
            == pytest.approx(plain.level2.worst_board_temperature)
        assert supervisor.trails == ()
        assert not supervised.degraded
