"""Query primitives: top-k ranking, histograms, axis marginals."""

import dataclasses
import math

import numpy as np
import pytest

from avipack.errors import InputError
from avipack.results import (
    ResultStore,
    ResultStoreWriter,
    axis_marginals,
    headroom_histogram,
    ranked_row_ids,
    ranking_signature,
)
from avipack.sweep.runner import CandidateResult
from avipack.sweep.space import Candidate


def synthetic_results(n, seed=0, tie_classes=4):
    """n CandidateResult objects with deliberately tie-heavy cost ranks."""
    rng = np.random.default_rng(seed)
    outcomes = []
    for i in range(n):
        candidate = Candidate(
            power_per_module=float(rng.uniform(5.0, 45.0)),
            n_modules=int(rng.integers(2, 9)),
            n_components=int(rng.integers(4, 12)))
        outcomes.append(CandidateResult(
            index=i, candidate=candidate,
            fingerprint=candidate.fingerprint,
            compliant=bool(rng.random() < 0.65), violations=(),
            margins={"fundamental_hz": float(rng.uniform(60, 400)),
                     "fatigue_margin": float(rng.uniform(0.1, 4.0)),
                     "deflection_margin": float(rng.uniform(0.1, 4.0)),
                     "mtbf_hours": float(rng.uniform(1e4, 1e6))},
            worst_board_c=float(rng.uniform(45.0, 90.0)),
            recommended_cooling=candidate.cooling,
            declared_cooling_feasible=True,
            cost_rank=float(rng.integers(0, tie_classes)),
            elapsed_s=0.001, worker_pid=1,
            cache_hits=0, cache_misses=1))
    return outcomes


def reference_ranking(outcomes):
    compliant = [o for o in outcomes if o.compliant]
    ranked = sorted(compliant, key=lambda o: (o.cost_rank,
                                              -o.thermal_headroom_c,
                                              o.index))
    return [(o.fingerprint, o.cost_rank, o.worst_board_c) for o in ranked]


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("query") / "store")
    outcomes = synthetic_results(400, seed=7)
    with ResultStoreWriter(directory, shard_rows=128) as writer:
        writer.add_many(outcomes)
    return ResultStore.open(directory), outcomes


def test_full_ranking_matches_sorted_baseline(populated):
    store, outcomes = populated
    assert ranking_signature(store) == reference_ranking(outcomes)


@pytest.mark.parametrize("k", [1, 2, 5, 17, 100, 399, 400, 10_000])
def test_top_k_equals_full_ranking_prefix(populated, k):
    store, outcomes = populated
    expected = reference_ranking(outcomes)
    assert ranking_signature(store, k) == expected[:k]


def test_top_k_survives_single_cost_class(tmp_path):
    # Every candidate in one cost class: the coarse partition keeps the
    # whole population, the headroom refinement must bound the pool.
    directory = str(tmp_path / "store")
    outcomes = synthetic_results(300, seed=3, tie_classes=1)
    with ResultStoreWriter(directory) as writer:
        writer.add_many(outcomes)
    store = ResultStore.open(directory)
    expected = reference_ranking(outcomes)
    for k in (1, 10, 299):
        assert ranking_signature(store, k) == expected[:k]


def test_ranked_row_ids_empty_without_compliant(tmp_path):
    directory = str(tmp_path / "store")
    outcomes = [dataclasses.replace(o, compliant=False)
                for o in synthetic_results(10, seed=1)]
    with ResultStoreWriter(directory) as writer:
        writer.add_many(outcomes)
    store = ResultStore.open(directory)
    assert len(ranked_row_ids(store)) == 0
    assert ranking_signature(store, 5) == []


def test_ranked_row_ids_rejects_bad_k(populated):
    store, _ = populated
    with pytest.raises(InputError):
        ranked_row_ids(store, 0)


def test_headroom_histogram_counts_live_compliant_rows(populated):
    store, outcomes = populated
    counts, edges = headroom_histogram(store, bins=10)
    compliant = [o for o in outcomes if o.compliant]
    assert counts.sum() == len(compliant)
    assert len(edges) == 11
    heads = np.array([o.thermal_headroom_c for o in compliant])
    expected, _ = np.histogram(heads, bins=10)
    assert counts.tolist() == expected.tolist()
    bounded, bounded_edges = headroom_histogram(store, bins=4,
                                                bounds=(-10.0, 40.0))
    assert bounded_edges[0] == -10.0 and bounded_edges[-1] == 40.0


def test_axis_marginals_match_python_groupby(populated):
    store, outcomes = populated
    marginals = axis_marginals(store, "n_modules")
    by_value = {}
    for outcome in outcomes:
        entry = by_value.setdefault(outcome.candidate.n_modules,
                                    {"n": 0, "comp": 0, "heads": []})
        entry["n"] += 1
        if outcome.compliant:
            entry["comp"] += 1
            entry["heads"].append(outcome.thermal_headroom_c)
    assert {m.value for m in marginals} == set(by_value)
    for marginal in marginals:
        entry = by_value[marginal.value]
        assert marginal.n == entry["n"]
        assert marginal.n_compliant == entry["comp"]
        if entry["comp"]:
            assert marginal.best_headroom_c == max(entry["heads"])
            assert marginal.mean_headroom_c == pytest.approx(
                sum(entry["heads"]) / len(entry["heads"]))
        else:
            assert math.isnan(marginal.best_headroom_c)
    # Sorted best-headroom-first.
    bests = [m.best_headroom_c for m in marginals if m.n_compliant]
    assert bests == sorted(bests, reverse=True)


def test_axis_marginals_rejects_non_axis_columns(populated):
    store, _ = populated
    with pytest.raises(InputError):
        axis_marginals(store, "cost_rank")
    with pytest.raises(InputError):
        store.column("not_a_column")
