"""Tests for plate modal analysis against closed-form results."""

import math
from dataclasses import replace

import pytest

from avipack.errors import InputError
from avipack.mechanical.plate import (
    PlateSpec,
    fundamental_frequency,
    mode_shape,
    plate_modes,
    stiffener_rigidity_for_frequency,
    thickness_for_frequency,
)


@pytest.fixture
def fr4_board():
    return PlateSpec(length=0.17, width=0.13, thickness=1.6e-3,
                     youngs_modulus=22e9, poisson_ratio=0.28,
                     density=1850.0)


@pytest.fixture
def steel_plate():
    return PlateSpec(length=0.4, width=0.3, thickness=2e-3,
                     youngs_modulus=200e9, poisson_ratio=0.3,
                     density=7850.0)


class TestExactSsss:
    def test_matches_navier_solution(self, steel_plate):
        # SSSS plate: f_mn = (pi/2) sqrt(D/rho h) (m2/a2 + n2/b2).
        d = steel_plate.flexural_rigidity
        rho_h = steel_plate.surface_density
        f_exact = (math.pi / 2.0) * math.sqrt(d / rho_h) * (
            1.0 / 0.4 ** 2 + 1.0 / 0.3 ** 2)
        assert fundamental_frequency(steel_plate) \
            == pytest.approx(f_exact, rel=1e-6)

    def test_mode_ordering(self, steel_plate):
        modes = plate_modes(steel_plate, 6)
        freqs = [m.frequency_hz for m in modes]
        assert freqs == sorted(freqs)
        assert modes[0].indices == (1, 1)

    def test_second_mode_along_long_edge(self, steel_plate):
        modes = plate_modes(steel_plate, 2)
        assert modes[1].indices == (2, 1)


class TestParameterEffects:
    def test_thicker_is_stiffer(self, fr4_board):
        thick = replace(fr4_board, thickness=3.2e-3)
        assert fundamental_frequency(thick) \
            == pytest.approx(2.0 * fundamental_frequency(fr4_board),
                             rel=0.01)

    def test_component_mass_lowers_frequency(self, fr4_board):
        loaded = replace(fr4_board, component_mass=0.2)
        assert fundamental_frequency(loaded) \
            < fundamental_frequency(fr4_board)

    def test_clamping_raises_frequency(self, fr4_board):
        clamped = replace(fr4_board, support=("CC", "CC"))
        assert fundamental_frequency(clamped) \
            > 1.5 * fundamental_frequency(fr4_board)

    def test_stiffener_raises_frequency(self, fr4_board):
        stiffened = replace(fr4_board, stiffener_rigidity=50.0)
        assert fundamental_frequency(stiffened) \
            > fundamental_frequency(fr4_board)

    def test_cantilever_is_softest(self, fr4_board):
        cantilever = replace(fr4_board, support=("CF", "FF"))
        assert fundamental_frequency(cantilever) \
            < fundamental_frequency(fr4_board)


class TestModeShape:
    def test_center_antinode_mode11(self, fr4_board):
        mode = plate_modes(fr4_board, 1)[0]
        assert mode_shape(fr4_board, mode, 0.085, 0.065) \
            == pytest.approx(1.0)

    def test_edges_are_nodes(self, fr4_board):
        mode = plate_modes(fr4_board, 1)[0]
        assert mode_shape(fr4_board, mode, 0.0, 0.065) \
            == pytest.approx(0.0, abs=1e-12)

    def test_off_plate_rejected(self, fr4_board):
        mode = plate_modes(fr4_board, 1)[0]
        with pytest.raises(InputError):
            mode_shape(fr4_board, mode, 1.0, 0.065)


class TestDesignHelpers:
    def test_thickness_for_500hz(self, fr4_board):
        # The Ariane power-supply design move: place the mode at 500 Hz.
        thickness = thickness_for_frequency(fr4_board, 500.0)
        placed = replace(fr4_board, thickness=thickness)
        assert fundamental_frequency(placed) == pytest.approx(500.0,
                                                              abs=1.0)

    def test_unreachable_target_rejected(self, fr4_board):
        with pytest.raises(InputError):
            thickness_for_frequency(fr4_board, 1.0e6)

    def test_stiffener_for_frequency(self, fr4_board):
        rigidity = stiffener_rigidity_for_frequency(fr4_board, 500.0)
        placed = replace(fr4_board, stiffener_rigidity=rigidity)
        assert fundamental_frequency(placed) == pytest.approx(500.0,
                                                              rel=0.01)

    def test_stiffener_zero_when_already_stiff(self, steel_plate):
        assert stiffener_rigidity_for_frequency(steel_plate, 10.0) == 0.0


class TestValidation:
    def test_invalid_support(self):
        with pytest.raises(InputError):
            PlateSpec(0.1, 0.1, 1e-3, 22e9, 0.28, 1850.0,
                      support=("XX", "SS"))

    def test_invalid_dimensions(self):
        with pytest.raises(InputError):
            PlateSpec(-0.1, 0.1, 1e-3, 22e9, 0.28, 1850.0)

    def test_negative_component_mass(self):
        with pytest.raises(InputError):
            PlateSpec(0.1, 0.1, 1e-3, 22e9, 0.28, 1850.0,
                      component_mass=-0.1)

    def test_zero_modes_requested(self, fr4_board):
        with pytest.raises(InputError):
            plate_modes(fr4_board, 0)

    def test_total_mass(self, fr4_board):
        bare = fr4_board.length * fr4_board.width * fr4_board.thickness \
            * fr4_board.density
        assert fr4_board.total_mass == pytest.approx(bare)
