"""Tests for the isolator model (the IMU mechanical filter of Fig. 3)."""

import math

import pytest

from avipack.errors import InputError
from avipack.mechanical.isolation import (
    Isolator,
    damper_tuning,
    design_isolator,
    static_sag,
    stiffness_for_frequency,
)
from avipack.mechanical.random_vibration import PowerSpectralDensity


@pytest.fixture
def isolator():
    return Isolator(mount_frequency=25.0, damping_ratio=0.1)


class TestTransmissibility:
    def test_unity_at_low_frequency(self, isolator):
        assert isolator.transmissibility(1.0) == pytest.approx(1.0,
                                                               abs=0.01)

    def test_amplification_at_resonance(self, isolator):
        # Q ~ 1/(2 zeta) = 5 for zeta = 0.1.
        assert isolator.transmissibility(25.0) == pytest.approx(5.0,
                                                                rel=0.05)

    def test_unity_at_crossover(self, isolator):
        t = isolator.transmissibility(isolator.crossover_frequency)
        assert t == pytest.approx(1.0, rel=0.02)

    def test_attenuation_above_crossover(self, isolator):
        assert isolator.transmissibility(200.0) < 0.1

    def test_resonant_peak_property(self, isolator):
        assert isolator.resonant_transmissibility == pytest.approx(
            isolator.transmissibility(25.0), rel=0.02)

    def test_more_damping_lower_peak(self):
        lightly = Isolator(25.0, 0.05)
        heavily = Isolator(25.0, 0.3)
        assert heavily.resonant_transmissibility \
            < lightly.resonant_transmissibility

    def test_more_damping_worse_high_frequency(self):
        # The classic damping trade-off.
        lightly = Isolator(25.0, 0.05)
        heavily = Isolator(25.0, 0.3)
        assert heavily.transmissibility(500.0) \
            > lightly.transmissibility(500.0)

    def test_isolation_efficiency_sign(self, isolator):
        assert isolator.isolation_efficiency(200.0) > 0.0
        assert isolator.isolation_efficiency(25.0) < 0.0


class TestPsdResponse:
    def test_isolated_rms_below_input(self, isolator, flat_psd):
        # A 25 Hz mount under a 10-2000 Hz PSD strips most energy.
        assert isolator.response_rms_g(flat_psd) < flat_psd.rms_g()

    def test_response_psd_shape(self, isolator, flat_psd):
        out = isolator.response_psd(flat_psd)
        assert out.level(25.0) > flat_psd.level(25.0)       # resonance
        assert out.level(500.0) < flat_psd.level(500.0)     # isolation


class TestDesignHelpers:
    def test_stiffness_formula(self):
        k = stiffness_for_frequency(2.0, 20.0)
        assert k == pytest.approx(2.0 * (2 * math.pi * 20.0) ** 2)

    def test_static_sag_formula(self):
        assert static_sag(10.0) == pytest.approx(
            9.80665 / (2 * math.pi * 10.0) ** 2)

    def test_design_isolator_meets_attenuation(self):
        iso, stiffness = design_isolator(
            equipment_mass=3.0, disturbance_frequency=200.0,
            required_attenuation=0.1)
        assert iso.transmissibility(200.0) <= 0.1 + 1e-6
        assert stiffness > 0.0

    def test_design_isolator_respects_sag(self):
        iso, _k = design_isolator(3.0, 200.0, 0.1, max_sag=5e-3)
        assert static_sag(iso.mount_frequency) <= 5e-3 + 1e-9

    def test_impossible_design_rejected(self):
        # 30 Hz disturbance with tiny sag allowance cannot be isolated.
        with pytest.raises(InputError):
            design_isolator(3.0, 30.0, 0.05, max_sag=0.5e-3)

    def test_damper_tuning_caps_q(self, flat_psd):
        sharp = Isolator(25.0, 0.02)
        tuned = damper_tuning(sharp, flat_psd, max_resonant_q=4.0)
        assert tuned.resonant_transmissibility <= 4.0 + 0.05
        assert tuned.damping_ratio > sharp.damping_ratio

    def test_damper_tuning_noop_when_ok(self, flat_psd):
        soft = Isolator(25.0, 0.3)
        assert damper_tuning(soft, flat_psd, max_resonant_q=5.0) is soft


class TestValidation:
    def test_invalid_frequency(self):
        with pytest.raises(InputError):
            Isolator(-1.0, 0.1)

    def test_invalid_damping(self):
        with pytest.raises(InputError):
            Isolator(25.0, 0.0)

    def test_invalid_query(self, isolator):
        with pytest.raises(InputError):
            isolator.transmissibility(0.0)
