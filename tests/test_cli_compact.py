"""CLI contract of ``python -m avipack compact``.

Operators reclaim disk through this entry point; it must report what
it folded/rewrote, fail distinctly (exit 2) on targets that cannot be
compacted, and leave resume semantics untouched.
"""

import os

import pytest

from avipack.__main__ import main
from avipack.durability import SweepJournal, replay_journal
from avipack.results import ResultStore, ResultStoreWriter, \
    ranking_signature

from tests.test_retention_checkpoint import make_candidates, make_result
from tests.test_retention_store import build_superseded_store


def write_journal(path, n=3):
    candidates = make_candidates(n)
    with SweepJournal.create(str(path), candidates) as journal:
        for index, candidate in enumerate(candidates):
            journal.record_dispatched(index, candidate)
            journal.record_outcome(make_result(index, candidate))
    return candidates


def test_compact_journal_reports_fold(tmp_path, capsys):
    journal = tmp_path / "sweep.jsonl"
    candidates = write_journal(journal)
    rc = main(["compact", "--journal", str(journal)])
    assert rc == 0
    out = capsys.readouterr().out
    assert f"folded {1 + 2 * len(candidates)} record(s)" in out
    assert "reclaimed" in out
    assert len(journal.read_bytes().splitlines()) == 1
    replay = replay_journal(str(journal), write_quarantine=False)
    assert replay.candidates == candidates


def test_compact_store_reports_rewrite(tmp_path, capsys):
    directory = str(tmp_path / "store")
    n_dead = build_superseded_store(directory)
    signature = ranking_signature(ResultStore.open(directory))
    rc = main(["compact", "--store", directory])
    assert rc == 0
    out = capsys.readouterr().out
    assert f"dropped {n_dead} superseded row(s)" in out
    assert ranking_signature(ResultStore.open(directory)) == signature


def test_compact_both_in_one_invocation(tmp_path, capsys):
    journal = tmp_path / "sweep.jsonl"
    write_journal(journal)
    directory = str(tmp_path / "store")
    with ResultStoreWriter(directory) as writer:
        writer.add(make_result(0, make_candidates(1)[0]))
    rc = main(["compact", "--journal", str(journal),
               "--store", directory])
    assert rc == 0
    out = capsys.readouterr().out
    assert "journal" in out and "store" in out


def test_no_target_is_a_usage_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main(["compact"])
    assert excinfo.value.code == 2


def test_missing_journal_exits_2(tmp_path, capsys):
    rc = main(["compact", "--journal", str(tmp_path / "absent.jsonl")])
    assert rc == 2
    assert "error:" in capsys.readouterr().err


def test_locked_journal_exits_2_and_is_untouched(tmp_path, capsys):
    path = tmp_path / "held.jsonl"
    journal = SweepJournal.create(str(path), make_candidates())
    try:
        size = os.path.getsize(path)
        rc = main(["compact", "--journal", str(path)])
        assert rc == 2
        assert "locked" in capsys.readouterr().err
        assert os.path.getsize(path) == size
    finally:
        journal.close()
