"""Tests for the Fig. 1 design procedure and reporting."""

import pytest

from avipack.core.design_flow import (
    FrequencyAllocation,
    PackagingSpecification,
    run_design_procedure,
    run_mechanical_branch,
)
from avipack.core.report import (
    render_design_document,
    summarize_margins,
)
from avipack.errors import InputError, SpecificationError
from avipack.packaging.component import make_component
from avipack.packaging.module import Module
from avipack.packaging.pcb import Pcb
from avipack.packaging.rack import Rack
from avipack.reliability.mtbf import PartReliability


def build_rack(power=8.0, thickness=1.6e-3):
    rack = Rack("unit_rack")
    board = Pcb(0.16, 0.1, thickness=thickness)
    board.place(make_component("U1", "bga_23mm", power * 0.6,
                               (0.08, 0.05)))
    board.place(make_component("U2", "to_220", power * 0.4, (0.04, 0.03)))
    rack.add_module(Module("m1", pcb=board))
    return rack


class TestFrequencyAllocation:
    def test_contains(self):
        plan = FrequencyAllocation(400.0, 600.0)
        assert plan.contains(500.0)
        assert not plan.contains(300.0)

    def test_center(self):
        assert FrequencyAllocation(400.0, 600.0).center \
            == pytest.approx(500.0)

    def test_invalid_order(self):
        with pytest.raises(InputError):
            FrequencyAllocation(600.0, 400.0)


class TestSpecification:
    def test_defaults_match_paper(self):
        spec = PackagingSpecification("unit")
        assert spec.board_limit == pytest.approx(358.15)     # 85 degC
        assert spec.junction_limit == pytest.approx(398.15)  # 125 degC
        assert spec.mtbf_target_hours == pytest.approx(40_000.0)

    def test_invalid_category(self):
        with pytest.raises(InputError):
            PackagingSpecification("unit", temperature_category_name="Z1")

    def test_invalid_curve(self):
        with pytest.raises(InputError):
            PackagingSpecification("unit", vibration_curve_name="Q")


class TestMechanicalBranch:
    def test_runs_on_rack(self):
        review = run_mechanical_branch(build_rack(),
                                       PackagingSpecification("unit"))
        assert review.fundamental_hz > 0.0
        assert review.allowable_deflection > 0.0

    def test_allocation_violation_detected(self):
        spec = PackagingSpecification(
            "unit",
            frequency_allocation=FrequencyAllocation(2000.0, 3000.0))
        review = run_mechanical_branch(build_rack(), spec)
        assert not review.allocation_respected

    def test_thicker_board_higher_frequency(self):
        spec = PackagingSpecification("unit")
        thin = run_mechanical_branch(build_rack(thickness=1.0e-3), spec)
        thick = run_mechanical_branch(build_rack(thickness=3.2e-3), spec)
        assert thick.fundamental_hz > thin.fundamental_hz

    def test_rack_without_pcb_rejected(self):
        rack = Rack("bare")
        rack.add_module(Module("m1", power_override=10.0))
        with pytest.raises(InputError):
            run_mechanical_branch(rack, PackagingSpecification("unit"))


class TestDesignProcedure:
    def test_compliant_design(self):
        review = run_design_procedure(build_rack(power=6.0),
                                      PackagingSpecification("unit"))
        assert review.compliant
        assert review.violations == ()

    def test_reliability_rollup(self):
        parts = [PartReliability("U1", 300.0),
                 PartReliability("U2", 200.0)]
        review = run_design_procedure(build_rack(power=6.0),
                                      PackagingSpecification("unit"),
                                      parts=parts)
        assert review.mtbf_hours is not None
        assert review.mtbf_hours > 0.0

    def test_thermal_violation_reported(self):
        review = run_design_procedure(build_rack(power=150.0),
                                      PackagingSpecification("unit"))
        assert not review.compliant
        assert any("level" in v for v in review.violations)

    def test_strict_mode_raises(self):
        with pytest.raises(SpecificationError) as excinfo:
            run_design_procedure(build_rack(power=150.0),
                                 PackagingSpecification("unit"),
                                 strict=True)
        assert excinfo.value.violations

    def test_frequency_plan_violation_reported(self):
        spec = PackagingSpecification(
            "unit",
            frequency_allocation=FrequencyAllocation(2000.0, 3000.0))
        review = run_design_procedure(build_rack(power=6.0), spec)
        assert any("frequency" in v for v in review.violations)


class TestReport:
    def test_document_renders(self):
        review = run_design_procedure(build_rack(power=6.0),
                                      PackagingSpecification("unit"))
        document = render_design_document(review)
        assert "PACKAGING DESIGN DOCUMENT" in document
        assert "COMPLIANT" in document
        assert "THERMAL DESIGN" in document
        assert "MECHANICAL DESIGN" in document

    def test_violations_listed(self):
        review = run_design_procedure(build_rack(power=150.0),
                                      PackagingSpecification("unit"))
        document = render_design_document(review)
        assert "NON-COMPLIANT" in document

    def test_margin_summary(self):
        review = run_design_procedure(build_rack(power=6.0),
                                      PackagingSpecification("unit"))
        summary = summarize_margins(review)
        assert summary["compliant"]
        assert summary["fundamental_hz"] > 0.0
        assert summary["n_violations"] == 0
