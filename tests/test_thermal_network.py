"""Tests for the thermal resistance network solver."""

import pytest

from avipack.errors import InputError
from avipack.thermal.network import (
    ThermalNetwork,
    parallel_resistance,
    series_resistance,
    slab_resistance,
    spreading_resistance,
)


def two_node_network(load=10.0, resistance=2.0, sink=300.0):
    net = ThermalNetwork()
    net.add_node("hot", heat_load=load)
    net.add_node("sink", fixed_temperature=sink)
    net.add_resistance("hot", "sink", resistance)
    return net


class TestBasicSolve:
    def test_single_resistor(self):
        sol = two_node_network().solve()
        assert sol.temperature("hot") == pytest.approx(320.0)

    def test_heat_flow_reported(self):
        sol = two_node_network().solve()
        assert sol.heat_flows["hot->sink"] == pytest.approx(10.0)

    def test_delta(self):
        sol = two_node_network().solve()
        assert sol.delta("hot", "sink") == pytest.approx(20.0)

    def test_series_chain(self):
        net = ThermalNetwork()
        net.add_node("a", heat_load=5.0)
        net.add_node("b")
        net.add_node("sink", fixed_temperature=300.0)
        net.add_resistance("a", "b", 1.0)
        net.add_resistance("b", "sink", 3.0)
        sol = net.solve()
        assert sol.temperature("a") == pytest.approx(300.0 + 5.0 * 4.0)
        assert sol.temperature("b") == pytest.approx(300.0 + 5.0 * 3.0)

    def test_parallel_paths_split_heat(self):
        net = ThermalNetwork()
        net.add_node("hot", heat_load=9.0)
        net.add_node("sink", fixed_temperature=300.0)
        net.add_resistance("hot", "sink", 1.0, label="r1")
        net.add_resistance("hot", "sink", 2.0, label="r2")
        sol = net.solve()
        assert sol.heat_flows["r1"] == pytest.approx(6.0)
        assert sol.heat_flows["r2"] == pytest.approx(3.0)

    def test_energy_conserved(self):
        net = ThermalNetwork()
        net.add_node("a", heat_load=7.0)
        net.add_node("b", heat_load=3.0)
        net.add_node("sink", fixed_temperature=290.0)
        net.add_resistance("a", "b", 0.5)
        net.add_resistance("a", "sink", 2.0)
        net.add_resistance("b", "sink", 1.0)
        sol = net.solve()
        assert sol.residual < 1e-9

    def test_multiple_sinks(self):
        net = ThermalNetwork()
        net.add_node("mid", heat_load=10.0)
        net.add_node("cold", fixed_temperature=280.0)
        net.add_node("hot_wall", fixed_temperature=320.0)
        net.add_resistance("mid", "cold", 1.0)
        net.add_resistance("mid", "hot_wall", 1.0)
        sol = net.solve()
        # Symmetric: midpoint of walls plus Q*(R parallel).
        assert sol.temperature("mid") == pytest.approx(300.0 + 10.0 * 0.5)

    def test_zero_load_equilibrates_to_sink(self):
        net = ThermalNetwork()
        net.add_node("float")
        net.add_node("sink", fixed_temperature=333.0)
        net.add_resistance("float", "sink", 5.0)
        assert net.solve().temperature("float") == pytest.approx(333.0)


class TestNonlinear:
    def test_temperature_dependent_conductance(self):
        # g = 0.01*(T_hot + T_cold): solve and verify the balance by hand.
        net = ThermalNetwork()
        net.add_node("hot", heat_load=50.0)
        net.add_node("sink", fixed_temperature=300.0)
        net.add_conductance("hot", "sink",
                            lambda ta, tb: 0.01 * (ta + tb))
        sol = net.solve()
        t = sol.temperature("hot")
        g = 0.01 * (t + 300.0)
        assert g * (t - 300.0) == pytest.approx(50.0, rel=1e-4)

    def test_radiation_like_link(self):
        sigma_a = 5.67e-8 * 0.01

        def g(t1, t2):
            return sigma_a * (t1 ** 2 + t2 ** 2) * (t1 + t2)

        net = ThermalNetwork()
        net.add_node("hot", heat_load=20.0)
        net.add_node("sink", fixed_temperature=300.0)
        net.add_conductance("hot", "sink", g)
        t = net.solve().temperature("hot")
        assert sigma_a * (t ** 4 - 300.0 ** 4) == pytest.approx(20.0,
                                                                rel=1e-3)

    def test_negative_conductance_callable_rejected(self):
        net = ThermalNetwork()
        net.add_node("hot", heat_load=1.0)
        net.add_node("sink", fixed_temperature=300.0)
        net.add_conductance("hot", "sink", lambda a, b: -1.0)
        with pytest.raises(InputError):
            net.solve()


class TestValidation:
    def test_no_nodes(self):
        with pytest.raises(InputError):
            ThermalNetwork().solve()

    def test_no_sink(self):
        net = ThermalNetwork()
        net.add_node("a", heat_load=1.0)
        net.add_node("b")
        net.add_resistance("a", "b", 1.0)
        with pytest.raises(InputError):
            net.solve()

    def test_duplicate_node(self):
        net = ThermalNetwork()
        net.add_node("a")
        with pytest.raises(InputError):
            net.add_node("a")

    def test_self_link(self):
        net = ThermalNetwork()
        net.add_node("a")
        with pytest.raises(InputError):
            net.add_conductance("a", "a", 1.0)

    def test_unknown_node_link(self):
        net = ThermalNetwork()
        net.add_node("a")
        with pytest.raises(InputError):
            net.add_resistance("a", "ghost", 1.0)

    def test_negative_resistance(self):
        net = ThermalNetwork()
        net.add_node("a")
        net.add_node("b")
        with pytest.raises(InputError):
            net.add_resistance("a", "b", -1.0)

    def test_load_on_fixed_node_rejected(self):
        net = ThermalNetwork()
        net.add_node("sink", fixed_temperature=300.0)
        with pytest.raises(InputError):
            net.add_heat_load("sink", 5.0)

    def test_accumulating_load(self):
        net = two_node_network(load=5.0)
        net.add_heat_load("hot", 5.0)
        assert net.solve().temperature("hot") == pytest.approx(320.0)

    def test_unknown_solution_node(self):
        sol = two_node_network().solve()
        with pytest.raises(InputError):
            sol.temperature("ghost")

    def test_floating_island_rejected_by_name(self):
        net = two_node_network()
        net.add_node("adrift", heat_load=1.0)
        with pytest.raises(InputError, match="adrift"):
            net.solve()


class TestCompiledCore:
    """The compiled structure must be invisible except for speed."""

    def test_nonlinear_reference_solution(self):
        # Hard-coded values captured from the pre-compiled per-link-loop
        # implementation; the compiled path must reproduce them.
        net = ThermalNetwork()
        net.add_node("sink", fixed_temperature=300.0)
        for i in range(20):
            net.add_node(f"n{i}", heat_load=5.0)
            net.add_conductance(
                f"n{i}", "sink",
                lambda a, b: 1e-9 * (a * a + b * b) * (a + b))
        sol = net.solve()
        assert sol.iterations == 14
        assert sol.temperature("n0") == pytest.approx(338.31232821523025,
                                                      rel=1e-13)
        assert sol.residual < 1e-8

    def test_mutation_after_solve_recompiles(self):
        net = two_node_network(load=10.0, resistance=2.0)
        assert net.solve().temperature("hot") == pytest.approx(320.0)
        net.add_node("extra", heat_load=5.0)
        net.add_resistance("extra", "sink", 4.0)
        sol = net.solve()
        assert sol.temperature("hot") == pytest.approx(320.0)
        assert sol.temperature("extra") == pytest.approx(320.0)
        net.add_heat_load("hot", 10.0)
        assert net.solve().temperature("hot") == pytest.approx(340.0)

    def test_duplicate_flow_labels_disambiguated(self):
        net = ThermalNetwork()
        net.add_node("hot", heat_load=6.0)
        net.add_node("sink", fixed_temperature=300.0)
        net.add_resistance("hot", "sink", 1.0, label="tim")
        net.add_resistance("hot", "sink", 1.0, label="tim")
        net.add_resistance("hot", "sink", 1.0)
        flows = net.solve().heat_flows
        assert set(flows) == {"tim", "tim#1", "hot->sink"}
        assert sum(flows.values()) == pytest.approx(6.0)

    def test_warm_start_and_convergence_error_iterate(self):
        from avipack.errors import ConvergenceError
        net = ThermalNetwork()
        net.add_node("sink", fixed_temperature=300.0)
        net.add_node("hot", heat_load=50.0)
        net.add_conductance("hot", "sink",
                            lambda a, b: 1e-8 * (a * a + b * b) * (a + b))
        with pytest.raises(ConvergenceError) as excinfo:
            net.solve(max_iterations=3)
        iterate = excinfo.value.last_iterate
        assert set(iterate) == {"sink", "hot"}
        # The carried iterate warm-starts a successful retry.
        sol = net.solve(initial_temperatures=iterate)
        assert sol.residual < 1e-4

    def test_solution_identical_before_and_after_pickle_roundtrip(self):
        import pickle
        net = two_node_network()
        before = net.solve().temperatures
        clone = pickle.loads(pickle.dumps(net))
        assert clone.solve().temperatures == before


class TestResistanceHelpers:
    def test_series(self):
        assert series_resistance(1.0, 2.0, 3.0) == pytest.approx(6.0)

    def test_parallel(self):
        assert parallel_resistance(2.0, 2.0) == pytest.approx(1.0)

    def test_parallel_dominated_by_smallest(self):
        assert parallel_resistance(0.1, 100.0) < 0.1

    def test_slab(self):
        # 1 mm of aluminium over 1 cm2: R = 1e-3/(167*1e-4).
        assert slab_resistance(1e-3, 167.0, 1e-4) \
            == pytest.approx(1e-3 / (167.0 * 1e-4))

    def test_slab_invalid(self):
        with pytest.raises(InputError):
            slab_resistance(-1e-3, 167.0, 1e-4)

    def test_empty_series(self):
        with pytest.raises(InputError):
            series_resistance()

    def test_spreading_resistance_positive(self):
        r = spreading_resistance(2e-3, 20e-3, 2e-3, 167.0)
        assert r > 0.0

    def test_spreading_shrinks_with_bigger_source(self):
        small = spreading_resistance(1e-3, 20e-3, 2e-3, 167.0)
        large = spreading_resistance(10e-3, 20e-3, 2e-3, 167.0)
        assert large < small

    def test_spreading_invalid_radii(self):
        with pytest.raises(InputError):
            spreading_resistance(30e-3, 20e-3, 2e-3, 167.0)
