"""SARIF 2.1.0 emitter tests (:mod:`avipack.analysis.sarif`)."""

from __future__ import annotations

import json

from avipack.analysis import (
    AnalysisEngine,
    AnalysisResult,
    Finding,
    Severity,
    all_rules,
)
from avipack.analysis.cli import main
from avipack.analysis.sarif import SARIF_VERSION, to_sarif

VIOLATION = (
    "def f(x):\n"
    "    raise ValueError('bad')\n"
)


def make_finding(**overrides):
    base = dict(rule_id="AVI002", severity=Severity.ERROR,
                path="src/avipack/bad.py", line=2, column=4,
                message="bare builtin raise",
                suggestion="raise an avipack.errors type", symbol="f")
    base.update(overrides)
    return Finding(**base)


def make_result(**overrides):
    result = AnalysisResult(files_analyzed=1)
    for key, value in overrides.items():
        setattr(result, key, value)
    return result


def test_document_skeleton():
    doc = to_sarif(make_result(), all_rules())
    assert doc["version"] == SARIF_VERSION
    assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
    assert len(doc["runs"]) == 1
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "avilint"
    assert run["columnKind"] == "unicodeCodePoints"
    # The document is pure JSON (no enums or custom objects leak in).
    assert json.loads(json.dumps(doc)) == doc


def test_driver_rules_cover_the_registry():
    doc = to_sarif(make_result(), all_rules())
    entries = doc["runs"][0]["tool"]["driver"]["rules"]
    assert [e["id"] for e in entries] \
        == [rule.rule_id for rule in all_rules()]
    for entry in entries:
        assert entry["shortDescription"]["text"]
        assert entry["defaultConfiguration"]["level"] \
            in ("error", "warning", "note")


def test_result_entries_index_into_the_rule_table():
    rules = all_rules()
    findings = [make_finding(),
                make_finding(rule_id="AVI004", severity=Severity.WARNING,
                             line=7, column=0, suggestion="")]
    doc = to_sarif(make_result(findings=findings), rules)
    results = doc["runs"][0]["results"]
    table = doc["runs"][0]["tool"]["driver"]["rules"]
    assert len(results) == 2
    for entry in results:
        assert table[entry["ruleIndex"]]["id"] == entry["ruleId"]


def test_level_mapping_and_message_folding():
    findings = [make_finding(severity=Severity.ERROR),
                make_finding(severity=Severity.WARNING, suggestion=""),
                make_finding(severity=Severity.INFO)]
    doc = to_sarif(make_result(findings=findings), all_rules())
    levels = [r["level"] for r in doc["runs"][0]["results"]]
    assert levels == ["error", "warning", "note"]
    messages = [r["message"]["text"] for r in doc["runs"][0]["results"]]
    assert messages[0] == "bare builtin raise (raise an avipack.errors type)"
    assert messages[1] == "bare builtin raise"  # no suggestion, no parens


def test_locations_are_one_based():
    findings = [make_finding(line=0, column=0)]
    doc = to_sarif(make_result(findings=findings), all_rules())
    region = doc["runs"][0]["results"][0]["locations"][0][
        "physicalLocation"]["region"]
    assert region["startLine"] == 1  # clamped
    assert region["startColumn"] == 1  # 0-based AST column + 1
    location = doc["runs"][0]["results"][0]["locations"][0][
        "physicalLocation"]["artifactLocation"]
    assert location["uri"] == "src/avipack/bad.py"
    assert location["uriBaseId"] == "%SRCROOT%"


def test_clean_run_reports_success():
    doc = to_sarif(make_result(), all_rules())
    invocation = doc["runs"][0]["invocations"][0]
    assert invocation["executionSuccessful"] is True
    assert "toolExecutionNotifications" not in invocation


def test_parse_errors_become_notifications():
    doc = to_sarif(make_result(errors=["src/avipack/broken.py: bad syntax"]),
                   all_rules())
    invocation = doc["runs"][0]["invocations"][0]
    assert invocation["executionSuccessful"] is False
    notes = invocation["toolExecutionNotifications"]
    assert notes[0]["level"] == "error"
    assert "broken.py" in notes[0]["message"]["text"]


def test_baselined_and_suppressed_are_not_emitted():
    doc = to_sarif(make_result(baselined=[make_finding()],
                               suppressed=[make_finding(line=9)]),
                   all_rules())
    assert doc["runs"][0]["results"] == []


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

def test_cli_sarif_output(tmp_path, monkeypatch, capsys):
    pkg = tmp_path / "src" / "avipack"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(VIOLATION)
    monkeypatch.chdir(tmp_path)

    code = main(["--no-cache", "--format", "sarif", str(tmp_path / "src")])
    doc = json.loads(capsys.readouterr().out)
    assert code == 1  # findings still gate, whatever the format
    assert doc["version"] == SARIF_VERSION
    results = doc["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["AVI002"]
    assert results[0]["locations"][0]["physicalLocation"][
        "artifactLocation"]["uri"] == "src/avipack/bad.py"


def test_cli_sarif_matches_direct_encoding(tmp_path, monkeypatch, capsys):
    pkg = tmp_path / "src" / "avipack"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(VIOLATION)
    monkeypatch.chdir(tmp_path)

    main(["--no-cache", "--format", "sarif", str(tmp_path / "src")])
    from_cli = json.loads(capsys.readouterr().out)
    direct = to_sarif(
        AnalysisEngine().analyze_paths([str(tmp_path / "src")]),
        all_rules())
    assert from_cli == direct
