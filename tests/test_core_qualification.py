"""Tests for the virtual qualification campaign on the COSEE SEB."""

import pytest

from avipack.core.qualification import (
    EquipmentUnderTest,
    run_acceleration_test,
    run_campaign,
    run_climatic_test,
    run_thermal_shock_test,
    run_vibration_test,
)
from avipack.core.report import render_qualification_report
from avipack.environments.profiles import (
    AccelerationTest,
    QualificationCampaign,
    cosee_campaign,
)
from avipack.errors import InputError
from avipack.experiments.cosee import seb_under_test
from avipack.mechanical.plate import PlateSpec


@pytest.fixture(scope="module")
def equipment():
    return seb_under_test(power=40.0)


@pytest.fixture(scope="module")
def campaign():
    return cosee_campaign()


class TestIndividualTests:
    def test_acceleration_passes(self, equipment, campaign):
        verdict = run_acceleration_test(equipment, campaign)
        assert verdict.passed
        assert verdict.margin > 0.0

    def test_acceleration_scales_with_level(self, equipment):
        import dataclasses

        harsh = dataclasses.replace(
            cosee_campaign(),
            acceleration=AccelerationTest(level_g=500.0))
        verdict = run_acceleration_test(equipment, harsh)
        mild = run_acceleration_test(equipment, cosee_campaign())
        assert verdict.margin < mild.margin

    def test_vibration_passes(self, equipment, campaign):
        verdict = run_vibration_test(equipment, campaign)
        assert verdict.passed

    def test_vibration_detail_mentions_frequency(self, equipment,
                                                 campaign):
        verdict = run_vibration_test(equipment, campaign)
        assert "f1=" in verdict.detail

    def test_climatic_passes_at_40w(self, equipment, campaign):
        verdict = run_climatic_test(equipment, campaign)
        assert verdict.passed

    def test_climatic_fails_at_overload(self, campaign):
        hot_equipment = seb_under_test(power=200.0)
        verdict = run_climatic_test(hot_equipment, campaign)
        assert not verdict.passed

    def test_thermal_shock_passes(self, equipment, campaign):
        verdict = run_thermal_shock_test(equipment, campaign)
        assert verdict.passed
        assert "realised" in verdict.detail

    def test_climatic_needs_thermal_model(self, campaign):
        bare = EquipmentUnderTest(
            name="bare",
            board=PlateSpec(0.2, 0.15, 1.6e-3, 22e9, 0.28, 1850.0))
        with pytest.raises(InputError):
            run_climatic_test(bare, campaign)


class TestFullCampaign:
    def test_cosee_seb_passes_everything(self, equipment, campaign):
        # The paper: "the seats have been submitted to all the different
        # tests without damage".
        report = run_campaign(equipment, campaign)
        assert report.passed
        assert len(report.verdicts) == 4

    def test_verdict_lookup(self, equipment, campaign):
        report = run_campaign(equipment, campaign)
        assert report.verdict("vibration").test_name == "vibration"
        with pytest.raises(InputError):
            report.verdict("lightning")

    def test_report_renders(self, equipment, campaign):
        report = run_campaign(equipment, campaign)
        text = render_qualification_report(report)
        assert "QUALIFICATION REPORT" in text
        assert "PASS - no damage" in text
        for name in ("linear_acceleration", "vibration", "climatic",
                     "thermal_shock"):
            assert name in text

    def test_mechanical_only_campaign(self, campaign):
        bare = EquipmentUnderTest(
            name="bare",
            board=PlateSpec(0.2, 0.15, 1.6e-3, 22e9, 0.28, 1850.0))
        report = run_campaign(bare, campaign)
        assert len(report.verdicts) == 2
