"""Tests for the box radiation enclosure and the wedge-lock model."""

from dataclasses import replace

import numpy as np
import pytest

from avipack.errors import InputError
from avipack.packaging.wedgelock import WedgeLock, torque_study
from avipack.thermal.enclosure import BOX_FACES, BoxEnclosure
from avipack.thermal.radiation import enclosure_exchange_factor
from avipack.units import STEFAN_BOLTZMANN


@pytest.fixture
def seb_box():
    return BoxEnclosure((0.3, 0.2, 0.08))


@pytest.fixture
def cube():
    return BoxEnclosure((0.1, 0.1, 0.1))


class TestViewFactors:
    def test_rows_close(self, seb_box):
        f = seb_box.view_factor_matrix()
        assert np.allclose(f.sum(axis=1), 1.0, atol=1e-12)

    def test_reciprocity_exact(self, seb_box):
        f = seb_box.view_factor_matrix()
        areas = np.array([seb_box.face_area(face) for face in BOX_FACES])
        af = areas[:, None] * f
        assert np.max(np.abs(af - af.T)) < 1e-12

    def test_cube_analytic_values(self, cube):
        # Exact cube factors: opposite faces 0.19982, perpendicular
        # 0.20004 (they differ only in the 4th decimal).
        f = cube.view_factor_matrix()
        assert f[0, 1] == pytest.approx(0.19982, rel=1e-3)   # opposite
        assert f[0, 2] == pytest.approx(0.20004, rel=1e-3)   # perp.

    def test_self_view_zero(self, seb_box):
        f = seb_box.view_factor_matrix()
        assert np.allclose(np.diag(f), 0.0, atol=1e-12)

    def test_close_plates_dominate(self):
        # A very flat box: opposite large faces see mostly each other.
        flat = BoxEnclosure((0.3, 0.3, 0.01))
        f = flat.view_factor_matrix()
        index = {face: i for i, face in enumerate(BOX_FACES)}
        assert f[index["z_min"], index["z_max"]] > 0.85


class TestExchange:
    def test_energy_conservation(self, seb_box):
        temps = {face: 300.0 for face in BOX_FACES}
        temps["x_min"] = 340.0
        flows = seb_box.net_radiation(temps)
        assert sum(flows.values()) == pytest.approx(0.0, abs=1e-9)
        assert flows["x_min"] > 0.0

    def test_isothermal_no_exchange(self, seb_box):
        temps = {face: 320.0 for face in BOX_FACES}
        flows = seb_box.net_radiation(temps)
        assert all(abs(q) < 1e-9 for q in flows.values())

    def test_black_cube_matches_two_surface_bound(self, cube):
        # One hot face vs five cold faces, all black: the hot face's
        # emission is A sigma (T1^4 - T2^4) exactly (F to others = 1).
        black = replace(cube, default_emissivity=1.0)
        temps = {face: 300.0 for face in BOX_FACES}
        temps["z_min"] = 350.0
        flows = black.net_radiation(temps)
        area = black.face_area("z_min")
        expected = area * STEFAN_BOLTZMANN * (350.0 ** 4 - 300.0 ** 4)
        assert flows["z_min"] == pytest.approx(expected, rel=1e-9)

    def test_missing_face_rejected(self, seb_box):
        with pytest.raises(InputError):
            seb_box.net_radiation({"x_min": 300.0})

    def test_pair_conductance_positive_and_sane(self, seb_box):
        g = seb_box.pair_conductance("z_min", "z_max", 330.0, 300.0)
        # h_r ~ 5-6 W/m2K at 315 K over 0.06 m2 with view factor < 1.
        assert 0.05 < g < 0.5

    def test_pair_conductance_validates(self, seb_box):
        with pytest.raises(InputError):
            seb_box.pair_conductance("z_min", "z_min", 330.0, 300.0)

    def test_invalid_geometry(self):
        with pytest.raises(InputError):
            BoxEnclosure((0.1, -0.1, 0.1))

    def test_invalid_emissivity(self):
        with pytest.raises(InputError):
            BoxEnclosure((0.1, 0.1, 0.1), emissivities={"x_min": 1.5})


class TestWedgeLock:
    def test_force_chain(self):
        lock = WedgeLock(screw_torque=1.0, screw_diameter=4e-3,
                         wedge_angle_deg=45.0)
        assert lock.axial_force == pytest.approx(1.0 / (0.2 * 4e-3))
        assert lock.normal_force == pytest.approx(lock.axial_force)

    def test_shallower_wedge_clamps_harder(self):
        steep = WedgeLock(wedge_angle_deg=60.0)
        shallow = WedgeLock(wedge_angle_deg=30.0)
        assert shallow.normal_force > steep.normal_force

    def test_conductance_magnitude(self):
        # Real wedge locks: ~0.02-0.2 K/W per clamped edge.
        lock = WedgeLock()
        assert 0.01 < lock.resistance() < 0.3

    def test_torque_study_monotone(self):
        results = torque_study(WedgeLock())
        conductances = [g for _t, g in results]
        assert conductances == sorted(conductances)

    def test_under_torqued_lock_degrades(self):
        nominal = WedgeLock(screw_torque=1.1)
        loose = WedgeLock(screw_torque=0.3)
        assert loose.conductance() < 0.5 * nominal.conductance()

    def test_smoother_surface_better(self):
        rough = WedgeLock(surface_roughness=5e-6)
        smooth = WedgeLock(surface_roughness=0.5e-6)
        assert smooth.conductance() > rough.conductance()

    def test_invalid_angle(self):
        with pytest.raises(InputError):
            WedgeLock(wedge_angle_deg=5.0)

    def test_invalid_torque_in_study(self):
        with pytest.raises(InputError):
            torque_study(WedgeLock(), torques=(-1.0,))

    def test_conductance_feeds_module_envelope(self):
        # Round trip: a wedge-locked conduction-cooled module.
        from avipack.packaging.cooling import (
            CoolingTechnique,
            ModuleEnvelope,
            evaluate_cooling,
        )

        lock = WedgeLock()
        envelope = ModuleEnvelope(edge_conductance=lock.conductance())
        evaluation = evaluate_cooling(CoolingTechnique.CONDUCTION_COOLED,
                                      40.0, envelope)
        assert evaluation.feasible_85c
