"""Columnar result store: shards, checksums, quarantine, lazy blobs."""

import os
import pickle
import zlib

import numpy as np
import pytest

from avipack import perf
from avipack.errors import InputError, ResultStoreError
from avipack.results import (
    DTYPE_FINGERPRINT,
    ROW_DTYPE,
    ResultStore,
    ResultStoreWriter,
)
from avipack.sweep.runner import CandidateFailure, CandidateResult
from avipack.sweep.space import Candidate


def make_result(index, *, power=20.0, modules=4, compliant=True,
                cost_rank=1.0, worst_board_c=70.0, degraded=False):
    candidate = Candidate(power_per_module=power, n_modules=modules)
    return CandidateResult(
        index=index, candidate=candidate,
        fingerprint=candidate.fingerprint, compliant=compliant,
        violations=() if compliant else ("thermal",),
        margins={"fundamental_hz": 120.0, "fatigue_margin": 1.4,
                 "deflection_margin": 2.0, "mtbf_hours": 9.0e4},
        worst_board_c=worst_board_c,
        recommended_cooling=candidate.cooling,
        declared_cooling_feasible=True, cost_rank=cost_rank,
        elapsed_s=0.01, worker_pid=os.getpid(),
        cache_hits=2, cache_misses=1, degraded=degraded)


def make_failure(index, *, power=33.0, error_type="ConvergenceError"):
    candidate = Candidate(power_per_module=power, n_modules=3)
    return CandidateFailure(
        index=index, candidate=candidate,
        fingerprint=candidate.fingerprint, stage="level3",
        error_type=error_type, message="injected", elapsed_s=0.02,
        worker_pid=os.getpid())


def outcomes_mixed(n=50):
    outcomes = []
    for i in range(n):
        if i % 7 == 3:
            outcomes.append(make_failure(i, power=30.0 + i))
        else:
            outcomes.append(make_result(
                i, power=10.0 + i, compliant=(i % 3 != 0),
                cost_rank=float(i % 4),
                worst_board_c=50.0 + (i * 7919 % 30)))
    return outcomes


def test_round_trip_preserves_every_column(tmp_path):
    directory = str(tmp_path / "store")
    outcomes = outcomes_mixed(20)
    with ResultStoreWriter(directory, shard_rows=8) as writer:
        writer.add_many(outcomes)
    store = ResultStore.open(directory)
    assert store.n_rows == 20
    assert store.n_shards == 3  # 8 + 8 + 4
    for row_id, outcome in enumerate(outcomes):
        row = store.row(row_id)
        assert row["index"] == outcome.index
        assert row["fingerprint"].decode("ascii") == outcome.fingerprint
        assert bool(row["compliant"]) == outcome.compliant
        if isinstance(outcome, CandidateResult):
            assert row["cost_rank"] == outcome.cost_rank
            assert row["worst_board_c"] == outcome.worst_board_c
            # Bit-identical to the dataclass property, by construction.
            assert row["thermal_headroom_c"] == outcome.thermal_headroom_c
            assert row["fatigue_margin"] == outcome.margins["fatigue_margin"]
        else:
            assert np.isnan(row["cost_rank"])
            assert row["error_type"].decode() == outcome.error_type
        assert row["power_per_module"] == outcome.candidate.power_per_module
        assert row["n_modules"] == outcome.candidate.n_modules


def test_counters_track_rows_shards_and_fetches(tmp_path):
    directory = str(tmp_path / "store")
    perf.reset()
    with ResultStoreWriter(directory, shard_rows=8) as writer:
        writer.add_many(outcomes_mixed(20))
    assert perf.counter("results.rows_ingested") == 20
    assert perf.counter("results.shards_written") == 3
    store = ResultStore.open(directory)
    store.fetch_outcome(0)
    store.fetch_outcome(11)
    assert perf.counter("results.blob_fetches") == 2
    assert perf.counters("results.") == {
        "results.blob_fetches": 2,
        "results.rows_ingested": 20,
        "results.shards_written": 3,
    }
    perf.reset("results.blob_fetches")
    assert perf.counter("results.blob_fetches") == 0
    assert perf.counter("results.rows_ingested") == 20


def test_lazy_fetch_returns_the_exact_outcome(tmp_path):
    directory = str(tmp_path / "store")
    outcomes = outcomes_mixed(10)
    with ResultStoreWriter(directory, shard_rows=64) as writer:
        writer.add_many(outcomes)
    store = ResultStore.open(directory)
    for row_id in (0, 3, 9):
        assert store.fetch_outcome(row_id) == outcomes[row_id]
    with pytest.raises(InputError):
        store.fetch_outcome(10)


def test_corrupt_rows_shard_is_quarantined_not_fatal(tmp_path):
    directory = str(tmp_path / "store")
    perf.reset()
    with ResultStoreWriter(directory, shard_rows=8) as writer:
        writer.add_many(outcomes_mixed(20))
    victim = os.path.join(directory, "shard-000001.rows")
    blob = bytearray(open(victim, "rb").read())
    blob[-30] ^= 0xFF  # flip a payload byte; header checksums now lie
    with open(victim, "wb") as stream:
        stream.write(blob)
    store = ResultStore.open(directory)
    assert store.n_shards == 2
    assert store.n_rows == 12
    assert "shard-000001.rows" in store.quarantined
    assert os.path.exists(victim + ".quarantine")
    assert not os.path.exists(victim)
    # The paired blob pool is quarantined with its rows.
    assert not os.path.exists(
        os.path.join(directory, "shard-000001.blobs"))
    assert perf.counter("results.shards_quarantined") == 1
    # Surviving shards still serve rows and blobs.
    assert store.fetch_outcome(0).index == 0


def read_reason_sidecar(path):
    import json
    return json.loads(open(path + ".quarantine.reason").read())


def test_checksum_damage_is_classified_in_the_sidecar(tmp_path):
    directory = str(tmp_path / "store")
    perf.reset()
    with ResultStoreWriter(directory, shard_rows=8) as writer:
        writer.add_many(outcomes_mixed(20))
    victim = os.path.join(directory, "shard-000001.rows")
    payload = bytearray(open(victim, "rb").read())
    payload[-30] ^= 0xFF  # payload byte flip: header checksums now lie
    with open(victim, "wb") as stream:
        stream.write(payload)
    store = ResultStore.open(directory)
    assert store.quarantine_reasons["shard-000001.rows"] == "checksum"
    sidecar = read_reason_sidecar(victim)
    assert sidecar["reason"] == "checksum"
    assert sidecar["file"] == "shard-000001.rows"
    assert "mismatch" in sidecar["detail"]
    # The companion blob pool carries no sidecar of its own: the rows
    # sidecar tells the story.
    assert not os.path.exists(os.path.join(
        directory, "shard-000001.blobs.quarantine.reason"))
    assert perf.counter("results.quarantined_checksum") == 1
    assert perf.counter("results.quarantined_header") == 0
    assert perf.counter("results.quarantined_truncation") == 0


def test_truncation_damage_is_classified_in_the_sidecar(tmp_path):
    directory = str(tmp_path / "store")
    perf.reset()
    with ResultStoreWriter(directory, shard_rows=8) as writer:
        writer.add_many(outcomes_mixed(20))
    victim = os.path.join(directory, "shard-000000.rows")
    payload = open(victim, "rb").read()
    with open(victim, "wb") as stream:
        stream.write(payload[:-40])  # torn tail: payload shorter than header
    store = ResultStore.open(directory)
    assert store.quarantine_reasons["shard-000000.rows"] == "truncation"
    assert read_reason_sidecar(victim)["reason"] == "truncation"
    assert perf.counter("results.quarantined_truncation") == 1


def test_header_damage_is_classified_in_the_sidecar(tmp_path):
    directory = str(tmp_path / "store")
    perf.reset()
    with ResultStoreWriter(directory, shard_rows=8) as writer:
        writer.add_many(outcomes_mixed(20))
    victim = os.path.join(directory, "shard-000001.rows")
    payload = open(victim, "rb").read()
    _, _, body = payload.partition(b"\n")
    with open(victim, "wb") as stream:
        stream.write(b"not a json header\n" + body)
    store = ResultStore.open(directory)
    assert store.quarantine_reasons["shard-000001.rows"] == "header"
    assert read_reason_sidecar(victim)["reason"] == "header"
    assert perf.counter("results.quarantined_header") == 1


def test_blobs_only_damage_keeps_rows_queryable(tmp_path):
    directory = str(tmp_path / "store")
    with ResultStoreWriter(directory, shard_rows=8) as writer:
        writer.add_many(outcomes_mixed(20))
    victim = os.path.join(directory, "shard-000000.blobs")
    payload = bytearray(open(victim, "rb").read())
    payload[-5] ^= 0xFF
    with open(victim, "wb") as stream:
        stream.write(payload)
    store = ResultStore.open(directory)
    # Columns survive in full; only lazy fetches from shard 0 raise.
    assert store.n_rows == 20
    assert "shard-000000.blobs" in store.quarantined
    assert store.row(0)["index"] == 0
    with pytest.raises(ResultStoreError):
        store.fetch_outcome(0)
    assert store.fetch_outcome(8).index == 8  # other shards unaffected


def test_blob_checksum_mismatch_raises_on_fetch(tmp_path):
    directory = str(tmp_path / "store")
    outcome = make_result(0)
    with ResultStoreWriter(directory) as writer:
        writer.add(outcome)
    store = ResultStore.open(directory)
    record = store.row(0)
    # The stored CRC describes the pickled outcome; tamper with the row
    # CRC path by checking the real one first.
    blob = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
    assert int(record["blob_crc32"]) == (zlib.crc32(blob) & 0xFFFFFFFF)
    assert store.fetch_outcome(0) == outcome


def test_writer_lock_refuses_second_writer(tmp_path):
    directory = str(tmp_path / "store")
    writer = ResultStoreWriter(directory)
    try:
        with pytest.raises(ResultStoreError):
            ResultStoreWriter(directory)
    finally:
        writer.close()
    # Released lock admits the next writer (and shard numbering
    # continues past existing shards).
    writer.add = None  # guard: closed writer must not be reused
    second = ResultStoreWriter(directory)
    second.close()


def test_append_continues_shard_numbering(tmp_path):
    directory = str(tmp_path / "store")
    with ResultStoreWriter(directory, shard_rows=4) as writer:
        writer.add_many(outcomes_mixed(6))
    with ResultStoreWriter(directory, shard_rows=4) as writer:
        writer.add_many(outcomes_mixed(5))
    store = ResultStore.open(directory)
    assert store.n_rows == 11
    assert store.n_shards == 4  # 4+2 then 4+1
    names = sorted(name for name in os.listdir(directory)
                   if name.endswith(".rows"))
    assert names == [f"shard-{i:06d}.rows" for i in range(4)]


def test_live_mask_keeps_latest_row_per_fingerprint(tmp_path):
    directory = str(tmp_path / "store")
    first = make_result(0, power=20.0, worst_board_c=70.0)
    second = make_result(1, power=25.0, worst_board_c=65.0)
    corrected = make_result(0, power=20.0, worst_board_c=60.0)
    assert first.fingerprint == corrected.fingerprint
    with ResultStoreWriter(directory) as writer:
        writer.add_many([first, second, corrected])
    store = ResultStore.open(directory)
    mask = store.live_mask()
    assert mask.tolist() == [False, True, True]
    live_worst = store.column("worst_board_c")[mask]
    assert 60.0 in live_worst and 70.0 not in live_worst


def test_closed_writer_rejects_adds(tmp_path):
    writer = ResultStoreWriter(str(tmp_path / "store"))
    writer.close()
    with pytest.raises(InputError):
        writer.add(make_result(0))
    writer.close()  # idempotent


def test_open_missing_directory_raises(tmp_path):
    with pytest.raises(ResultStoreError):
        ResultStore.open(str(tmp_path / "absent"))
    assert ResultStore.live_fingerprints(str(tmp_path / "absent")) == set()


def test_dtype_fingerprint_guards_schema_drift(tmp_path):
    # The header stamps the dtype; a reader with a different layout
    # must refuse the shard rather than reinterpret bytes.
    assert len(DTYPE_FINGERPRINT) == 40
    assert ROW_DTYPE.itemsize == ROW_DTYPE.itemsize  # packed, stable
    directory = str(tmp_path / "store")
    with ResultStoreWriter(directory) as writer:
        writer.add(make_result(0))
    path = os.path.join(directory, "shard-000000.rows")
    header = open(path, "rb").readline()
    assert DTYPE_FINGERPRINT.encode("ascii") in header


def test_gather_matches_column_fancy_indexing(tmp_path):
    directory = str(tmp_path / "store")
    with ResultStoreWriter(directory, shard_rows=8) as writer:
        writer.add_many(outcomes_mixed(20))
    store = ResultStore.open(directory)
    # Ids crossing shard boundaries, out of order, with repeats.
    ids = np.array([19, 0, 8, 7, 8, 15])
    for name in ("label", "fingerprint", "cost_rank", "compliant"):
        assert store.gather(name, ids).tolist() \
            == store.column(name)[ids].tolist()
    assert store.gather("index", []).tolist() == []
    with pytest.raises(InputError):
        store.gather("not_a_column", ids)
    with pytest.raises(InputError):
        store.gather("index", [20])


def test_byte_string_columns_are_not_cached(tmp_path):
    directory = str(tmp_path / "store")
    with ResultStoreWriter(directory, shard_rows=8) as writer:
        writer.add_many(outcomes_mixed(20))
    store = ResultStore.open(directory)
    # Numeric sort keys are cached; wide string columns are rebuilt per
    # call so large-campaign reports never pin them.
    assert store.column("cost_rank") is store.column("cost_rank")
    assert store.column("label") is not store.column("label")
    assert store.column("label").tolist() == store.column("label").tolist()
