"""SweepRunner(result_store=...) integration and report top-k parity."""

import os

import pytest

from avipack import perf
from avipack.results import ResultStore, ranking_signature
from avipack.sweep import DesignSpace, SweepRunner, render_sweep_document
from avipack.sweep.space import Candidate


def small_space():
    return DesignSpace(axes={
        "power_per_module": [10.0, 25.0, 40.0],
        "n_modules": [2, 4],
        "cooling": ["free_convection", "direct_air_flow"],
    })


def signature(report):
    return [(o.fingerprint, o.cost_rank, o.worst_board_c)
            for o in report.ranked()]


def test_run_streams_outcomes_into_the_store(tmp_path):
    store_dir = str(tmp_path / "store")
    perf.reset()
    runner = SweepRunner(parallel=False, result_store=store_dir)
    report = runner.run(small_space())
    assert report.result_store is not None
    assert report.result_store.rows_added == report.n_candidates
    assert report.result_store.shards_sealed >= 1
    assert perf.counter("results.rows_ingested") == report.n_candidates
    store = ResultStore.open(store_dir)
    assert store.n_rows == report.n_candidates
    assert ranking_signature(store) == signature(report)
    document = render_sweep_document(report)
    assert "result store" in document


def test_run_without_store_keeps_report_unchanged(tmp_path):
    report = SweepRunner(parallel=False).run(small_space())
    assert report.result_store is None
    assert "result store" not in render_sweep_document(report)


def test_resume_backfills_restored_outcomes(tmp_path):
    journal_path = str(tmp_path / "sweep.journal.jsonl")
    first_dir = str(tmp_path / "first")
    # Journalled run WITHOUT a store...
    baseline = SweepRunner(parallel=False).run(
        small_space(), journal_path=journal_path)
    # ...then a full resume WITH a store: nothing pending, everything
    # restored from the journal must be backfilled into the store.
    resumed = SweepRunner(parallel=False,
                          result_store=first_dir).resume(journal_path)
    assert resumed.result_store.rows_added == resumed.n_candidates
    store = ResultStore.open(first_dir)
    assert store.n_rows == resumed.n_candidates
    assert ranking_signature(store) == signature(resumed)
    assert signature(resumed) == signature(baseline)


def test_resume_into_same_store_adds_nothing_new(tmp_path):
    journal_path = str(tmp_path / "sweep.journal.jsonl")
    store_dir = str(tmp_path / "store")
    report = SweepRunner(parallel=False, result_store=store_dir).run(
        small_space(), journal_path=journal_path)
    resumed = SweepRunner(parallel=False,
                          result_store=store_dir).resume(journal_path)
    assert resumed.result_store.rows_added == 0
    store = ResultStore.open(store_dir)
    assert store.n_rows == report.n_candidates
    assert int(store.live_mask().sum()) == resumed.n_candidates
    assert ranking_signature(store) == signature(resumed)


def test_store_and_journal_rank_identically_with_failures(tmp_path):
    store_dir = str(tmp_path / "store")
    candidates = list(small_space().grid())
    # An impossible candidate fails at evaluation and must land in the
    # store as a row with NaN metrics, not poison the ranking.
    candidates.append(Candidate(power_per_module=1.0e6, n_modules=2))
    report = SweepRunner(parallel=False,
                         result_store=store_dir).run(candidates)
    assert len(report.failures) >= 1
    store = ResultStore.open(store_dir)
    assert store.n_rows == len(candidates)
    assert ranking_signature(store) == signature(report)


# -- SweepReport.top(): the O(n log k) satellite -----------------------------


def sweep_report():
    return SweepRunner(parallel=False).run(small_space())


@pytest.mark.parametrize("k", [1, 2, 3, 5, 100])
def test_top_k_equals_ranked_prefix(k):
    report = sweep_report()
    assert report.top(k) == report.ranked()[:k]


def test_top_breaks_cost_and_headroom_ties_by_index():
    report = sweep_report()
    full = report.ranked()
    keys = [(o.cost_rank, -o.thermal_headroom_c, o.index) for o in full]
    assert keys == sorted(keys)
    assert report.best() == (full[0] if full else None)


def test_render_uses_selection_not_full_sort():
    report = sweep_report()
    document = render_sweep_document(report, top=2)
    remaining = report.n_compliant - 2
    assert f"... and {remaining} more compliant" in document


def test_run_closes_writer_on_progress_abort(tmp_path):
    store_dir = str(tmp_path / "store")

    class Stop(Exception):
        pass

    seen = []

    def progress(outcome):
        seen.append(outcome)
        if len(seen) == 3:
            raise Stop()

    runner = SweepRunner(parallel=False, result_store=store_dir)
    with pytest.raises(Stop):
        runner.run(small_space(), progress=progress)
    # The writer was closed (partial shard sealed): the journalled
    # prefix of 3 outcomes is already durable and queryable.
    store = ResultStore.open(store_dir)
    assert store.n_rows == 3
    assert not any(name.endswith(".lock.tmp")
                   for name in os.listdir(store_dir))
