"""Tests for the three-level pyramid and the architecture selector."""

import pytest

from avipack.core.levels import (
    run_level1,
    run_level2,
    run_level3,
    run_pyramid,
)
from avipack.core.selector import (
    Architecture,
    ThermalRequirement,
    assess,
    forced_air_no_longer_applicable,
    select_architecture,
)
from avipack.errors import InputError
from avipack.packaging.cooling import CoolingTechnique
from avipack.packaging.component import make_component
from avipack.packaging.module import Module
from avipack.packaging.pcb import Pcb
from avipack.packaging.rack import Rack, computer_rack
from avipack.units import celsius_to_kelvin


def populated_rack(power_per_module=15.0, n_modules=3):
    """A realistic populated rack: heavy-copper boards, spread power."""
    rack = Rack("test_rack")
    for index in range(n_modules):
        board = Pcb(0.16, 0.1, n_copper_layers=8, copper_coverage=0.7)
        board.place(make_component(f"U{index}_1", "bga_35mm",
                                   power_per_module * 0.5, (0.08, 0.05)))
        board.place(make_component(f"U{index}_2", "to_220",
                                   power_per_module * 0.3, (0.04, 0.03)))
        board.place(make_component(f"U{index}_3", "dpak",
                                   power_per_module * 0.2, (0.12, 0.07)))
        rack.add_module(Module(f"m{index + 1}", pcb=board))
    return rack


class TestLevel1:
    def test_low_power_recommends_simple(self):
        result = run_level1(15.0)
        assert result.is_feasible
        assert result.recommended in (CoolingTechnique.FREE_CONVECTION,
                                      CoolingTechnique.DIRECT_AIR_FLOW)

    def test_high_power_escalates(self):
        result = run_level1(150.0)
        assert result.recommended not in (
            CoolingTechnique.FREE_CONVECTION, None)

    def test_extreme_power_nothing_feasible(self):
        result = run_level1(800.0)
        assert not result.is_feasible
        assert result.recommended is None

    def test_rises_reported_for_all(self):
        result = run_level1(30.0)
        assert set(result.technique_rises) == set(CoolingTechnique)

    def test_invalid_power(self):
        with pytest.raises(InputError):
            run_level1(-1.0)


class TestLevel2:
    def test_compliance_depends_on_power(self):
        assert run_level2(computer_rack(4, 10.0)).compliant
        assert not run_level2(computer_rack(4, 250.0)).compliant

    def test_board_lookup(self):
        result = run_level2(computer_rack(3, 20.0))
        assert result.board_temperature("computer_rack_m2") > 0.0
        with pytest.raises(InputError):
            result.board_temperature("ghost")


class TestLevel3:
    def test_junctions_above_boundary(self):
        board = Pcb(0.16, 0.1)
        board.place(make_component("U1", "bga_23mm", 8.0, (0.08, 0.05)))
        result = run_level3(board, celsius_to_kelvin(45.0))
        assert result.max_junction > celsius_to_kelvin(45.0)

    def test_violation_detection(self):
        board = Pcb(0.16, 0.1)
        board.place(make_component("U1", "bga_23mm", 40.0, (0.08, 0.05)))
        result = run_level3(board, celsius_to_kelvin(70.0), h_film=8.0)
        assert "U1" in result.violations
        assert not result.compliant

    def test_empty_board_rejected(self):
        with pytest.raises(InputError):
            run_level3(Pcb(0.16, 0.1), 313.15)


class TestPyramid:
    def test_full_run_compliant_rack(self):
        result = run_pyramid(populated_rack(10.0),
                             ambient=celsius_to_kelvin(40.0))
        assert result.level1.is_feasible
        assert result.level3  # level 3 ran on populated boards
        assert result.compliant

    def test_junctions_cascade_from_level2(self):
        result = run_pyramid(populated_rack(15.0))
        for level3 in result.level3.values():
            assert level3.max_junction \
                > result.level2.slots[0].inlet_temperature

    def test_overloaded_rack_not_compliant(self):
        result = run_pyramid(populated_rack(150.0))
        assert not result.compliant


class TestSelector:
    def test_low_power_free_convection(self):
        req = ThermalRequirement(module_power=15.0, peak_flux_w_cm2=1.0)
        assert select_architecture(req) \
            is Architecture.FREE_CONVECTION

    def test_standard_module_forced_air(self):
        req = ThermalRequirement(module_power=80.0, peak_flux_w_cm2=5.0)
        assert select_architecture(req) is Architecture.FORCED_AIR

    def test_hotspot_crisis_forces_two_phase(self):
        # The paper's scenario: >100 W modules, >10 W/cm2 hot spots.
        req = ThermalRequirement(module_power=120.0,
                                 peak_flux_w_cm2=40.0)
        choice = select_architecture(req)
        assert choice in (Architecture.HEAT_PIPE_ASSISTED,
                          Architecture.THERMOSYPHON,
                          Architecture.LOOP_HEAT_PIPE)
        assert forced_air_no_longer_applicable(req)

    def test_long_distance_needs_lhp(self):
        # The COSEE scenario: heat moved ~0.6 m to the seat structure.
        req = ThermalRequirement(module_power=100.0,
                                 peak_flux_w_cm2=15.0,
                                 air_available=False,
                                 coldwall_available=False,
                                 transport_distance=0.6)
        assert select_architecture(req) is Architecture.LOOP_HEAT_PIPE

    def test_unstable_orientation_excludes_thermosyphon(self):
        req = ThermalRequirement(module_power=200.0,
                                 peak_flux_w_cm2=30.0,
                                 orientation_stable=False)
        verdicts = {a.architecture: a for a in assess(req)}
        assert not verdicts[Architecture.THERMOSYPHON].viable

    def test_sealed_excludes_direct_air(self):
        req = ThermalRequirement(module_power=50.0, sealed=True)
        verdicts = {a.architecture: a for a in assess(req)}
        assert not verdicts[Architecture.FORCED_AIR].viable

    def test_impossible_requirement_raises(self):
        req = ThermalRequirement(module_power=5000.0,
                                 peak_flux_w_cm2=500.0)
        with pytest.raises(InputError):
            select_architecture(req)

    def test_viable_sorted_first(self):
        req = ThermalRequirement(module_power=80.0)
        ranked = assess(req)
        seen_nonviable = False
        for verdict in ranked:
            if not verdict.viable:
                seen_nonviable = True
            elif seen_nonviable:
                pytest.fail("viable architecture after a non-viable one")

    def test_reasons_always_present(self):
        for verdict in assess(ThermalRequirement(module_power=80.0)):
            assert verdict.reasons
