"""Exceptions must cross process boundaries with every attribute intact."""

import pickle
from concurrent.futures import ProcessPoolExecutor

import pytest

from avipack.errors import (
    AvipackError,
    CacheCorruptionError,
    ConvergenceError,
    InputError,
    MaterialNotFoundError,
    ModelRangeError,
    OperatingLimitError,
    SpecificationError,
    WatchdogTimeout,
    WorkerCrashError,
)


def _roundtrip(exc):
    return pickle.loads(pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL))


class TestRoundTrip:
    def test_convergence_error_keeps_solver_state(self):
        exc = ConvergenceError("no convergence", iterations=137,
                              residual=4.2e-3,
                              last_iterate={"chip": 355.0, "ambient": 300.0})
        back = _roundtrip(exc)
        assert isinstance(back, ConvergenceError)
        assert str(back) == "no convergence"
        assert back.iterations == 137
        assert back.residual == pytest.approx(4.2e-3)
        assert back.last_iterate == {"chip": 355.0, "ambient": 300.0}

    def test_convergence_error_defaults_survive(self):
        back = _roundtrip(ConvergenceError("bare"))
        assert back.iterations == 0
        assert back.residual != back.residual  # NaN
        assert back.last_iterate is None

    def test_operating_limit_error_keeps_limit(self):
        exc = OperatingLimitError("capillary limit", limit_name="capillary",
                                  limit_value=87.5)
        back = _roundtrip(exc)
        assert back.limit_name == "capillary"
        assert back.limit_value == pytest.approx(87.5)

    def test_specification_error_keeps_violations(self):
        exc = SpecificationError("spec violated",
                                 violations=("level2: too hot",
                                             "mechanical: fatigue"))
        back = _roundtrip(exc)
        assert back.violations == ("level2: too hot", "mechanical: fatigue")

    @pytest.mark.parametrize("cls", [
        AvipackError, InputError, ModelRangeError, MaterialNotFoundError,
        WatchdogTimeout, WorkerCrashError, CacheCorruptionError,
    ])
    def test_plain_errors_roundtrip(self, cls):
        back = _roundtrip(cls("boom"))
        assert isinstance(back, cls)
        assert "boom" in str(back)

    def test_resilience_exceptions_keep_stdlib_bases(self):
        # except TimeoutError / RuntimeError must keep working for
        # callers that do not know about the avipack hierarchy.
        assert issubclass(WatchdogTimeout, TimeoutError)
        assert issubclass(WorkerCrashError, RuntimeError)
        assert issubclass(CacheCorruptionError, RuntimeError)


def _raise_convergence():
    raise ConvergenceError("worker-side failure", iterations=12,
                           residual=0.5, last_iterate={"n1": 310.0})


class TestAcrossProcessPool:
    def test_worker_raised_error_keeps_attributes(self):
        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(_raise_convergence)
            with pytest.raises(ConvergenceError) as excinfo:
                future.result(timeout=60)
        exc = excinfo.value
        assert exc.iterations == 12
        assert exc.residual == pytest.approx(0.5)
        assert exc.last_iterate == {"n1": 310.0}
