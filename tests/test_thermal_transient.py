"""Tests for the transient network solver and schedule builders."""

import math

import numpy as np
import pytest

from avipack.errors import InputError
from avipack.thermal.network import ThermalNetwork
from avipack.thermal.transient import (
    TransientNetworkSolver,
    cyclic_profile,
    ramp_profile,
)


def rc_network(capacitance=100.0, resistance=2.0, sink=300.0, load=0.0):
    net = ThermalNetwork()
    net.add_node("mass", heat_load=load, capacitance=capacitance)
    net.add_node("ambient", fixed_temperature=sink)
    net.add_resistance("mass", "ambient", resistance)
    return net


class TestRcResponse:
    def test_exponential_decay(self):
        # Classic RC: T(t) = T_inf + (T0-T_inf)exp(-t/RC).
        net = rc_network(capacitance=100.0, resistance=2.0)
        solver = TransientNetworkSolver(net)
        tau = 200.0
        result = solver.integrate(duration=600.0, time_step=1.0,
                                  initial_temperature=400.0)
        expected = 300.0 + 100.0 * math.exp(-600.0 / tau)
        assert result.final("mass") == pytest.approx(expected, rel=0.01)

    def test_steady_state_with_load(self):
        net = rc_network(load=25.0)
        solver = TransientNetworkSolver(net)
        result = solver.integrate(duration=3000.0, time_step=5.0,
                                  initial_temperature=300.0)
        assert result.final("mass") == pytest.approx(300.0 + 25.0 * 2.0,
                                                     rel=0.01)

    def test_monotonic_approach(self):
        net = rc_network(load=25.0)
        result = TransientNetworkSolver(net).integrate(
            duration=500.0, time_step=2.0, initial_temperature=300.0)
        history = result.node("mass")
        assert np.all(np.diff(history) >= -1e-9)

    def test_peak_and_trough(self):
        net = rc_network()
        result = TransientNetworkSolver(net).integrate(
            duration=100.0, time_step=1.0, initial_temperature=400.0)
        assert result.peak("mass") == pytest.approx(400.0)
        assert result.trough("mass") < 400.0

    def test_max_rate_bounded_by_initial(self):
        # dT/dt at t=0 is (T_inf - T0)/RC = -100/200 = -0.5 K/s.
        net = rc_network()
        result = TransientNetworkSolver(net).integrate(
            duration=50.0, time_step=0.5, initial_temperature=400.0)
        assert result.max_rate("mass") <= 0.5 + 1e-6


class TestSchedules:
    def test_boundary_ramp_follows(self):
        net = rc_network(capacitance=10.0, resistance=0.1)
        ramp = ramp_profile(300.0, 350.0, ramp_rate=1.0)
        solver = TransientNetworkSolver(
            net, boundary_schedules={"ambient": ramp})
        result = solver.integrate(duration=200.0, time_step=0.5,
                                  initial_temperature=300.0)
        # Small RC: the mass tracks the boundary closely.
        assert result.final("mass") == pytest.approx(350.0, abs=2.0)

    def test_load_schedule(self):
        net = rc_network(capacitance=10.0, resistance=1.0)
        solver = TransientNetworkSolver(
            net, load_schedules={"mass": lambda t: 10.0 if t > 50.0
                                 else 0.0})
        result = solver.integrate(duration=300.0, time_step=0.5,
                                  initial_temperature=300.0)
        assert result.node("mass")[50] == pytest.approx(300.0, abs=0.5)
        assert result.final("mass") == pytest.approx(310.0, rel=0.02)

    def test_schedule_on_free_node_rejected(self):
        net = rc_network()
        with pytest.raises(InputError):
            TransientNetworkSolver(net,
                                   boundary_schedules={"mass":
                                                       lambda t: 300.0})

    def test_schedule_on_unknown_node_rejected(self):
        net = rc_network()
        with pytest.raises(InputError):
            TransientNetworkSolver(net,
                                   load_schedules={"ghost": lambda t: 1.0})

    def test_free_node_without_capacitance_rejected(self):
        net = ThermalNetwork()
        net.add_node("m")  # no capacitance
        net.add_node("ambient", fixed_temperature=300.0)
        net.add_resistance("m", "ambient", 1.0)
        with pytest.raises(InputError):
            TransientNetworkSolver(net)


class TestRampProfile:
    def test_endpoints(self):
        ramp = ramp_profile(250.0, 330.0, ramp_rate=2.0)
        assert ramp(0.0) == pytest.approx(250.0)
        assert ramp(40.0) == pytest.approx(330.0)
        assert ramp(1000.0) == pytest.approx(330.0)

    def test_midpoint(self):
        ramp = ramp_profile(250.0, 330.0, ramp_rate=2.0)
        assert ramp(20.0) == pytest.approx(290.0)

    def test_descending(self):
        ramp = ramp_profile(330.0, 250.0, ramp_rate=2.0)
        assert ramp(20.0) == pytest.approx(290.0)

    def test_start_delay(self):
        ramp = ramp_profile(300.0, 310.0, ramp_rate=1.0, start_time=10.0)
        assert ramp(5.0) == pytest.approx(300.0)
        assert ramp(20.0) == pytest.approx(310.0)

    def test_invalid_rate(self):
        with pytest.raises(InputError):
            ramp_profile(300.0, 310.0, ramp_rate=0.0)


class TestCyclicProfile:
    def test_paper_thermal_shock_shape(self):
        # -45 / +55 degC at 5 K/min: swing 100 K, ramp 20 min.
        low, high = 228.15, 328.15
        rate = 5.0 / 60.0
        cycle = cyclic_profile(low, high, rate, dwell_time=600.0)
        assert cycle(0.0) == pytest.approx(low)
        assert cycle(300.0) == pytest.approx(low)          # low dwell
        ramp_s = 100.0 / rate
        assert cycle(600.0 + ramp_s / 2.0) == pytest.approx(
            (low + high) / 2.0)
        assert cycle(600.0 + ramp_s + 300.0) == pytest.approx(high)

    def test_periodicity(self):
        cycle = cyclic_profile(250.0, 350.0, 1.0, dwell_time=50.0)
        period = 2.0 * (50.0 + 100.0)
        for t in (0.0, 75.0, 130.0, 260.0):
            assert cycle(t) == pytest.approx(cycle(t + period), abs=1e-9)

    def test_bounds_respected(self):
        cycle = cyclic_profile(250.0, 350.0, 2.0, dwell_time=20.0)
        values = [cycle(t * 3.7) for t in range(200)]
        assert min(values) >= 250.0 - 1e-9
        assert max(values) <= 350.0 + 1e-9

    def test_invalid_order(self):
        with pytest.raises(InputError):
            cyclic_profile(350.0, 250.0, 1.0, 10.0)


class TestValidation:
    def test_invalid_duration(self):
        solver = TransientNetworkSolver(rc_network())
        with pytest.raises(InputError):
            solver.integrate(duration=-1.0, time_step=0.1)

    def test_step_exceeding_duration(self):
        solver = TransientNetworkSolver(rc_network())
        with pytest.raises(InputError):
            solver.integrate(duration=1.0, time_step=2.0)

    def test_unknown_node_in_result(self):
        result = TransientNetworkSolver(rc_network()).integrate(
            duration=10.0, time_step=1.0)
        with pytest.raises(InputError):
            result.node("ghost")

    def test_max_steps_guard_rejects_runaway_step_count(self):
        # A mistyped time_step must fail eagerly, not loop for 10^8
        # steps while allocating the full history.
        solver = TransientNetworkSolver(rc_network())
        with pytest.raises(InputError, match="max_steps"):
            solver.integrate(duration=1000.0, time_step=1e-5)

    def test_max_steps_guard_can_be_raised(self):
        solver = TransientNetworkSolver(rc_network())
        result = solver.integrate(duration=2.0, time_step=0.5,
                                  max_steps=4)
        assert len(result.times) == 5

    def test_max_steps_below_request_rejected(self):
        solver = TransientNetworkSolver(rc_network())
        with pytest.raises(InputError, match="max_steps"):
            solver.integrate(duration=2.0, time_step=0.5, max_steps=3)

    def test_invalid_max_steps(self):
        solver = TransientNetworkSolver(rc_network())
        with pytest.raises(InputError):
            solver.integrate(duration=2.0, time_step=0.5, max_steps=0)


class TestCompiledPathCorrectness:
    def test_rc_full_history_matches_analytic(self):
        # Backward Euler on dT/dt = -(T - T_inf)/RC has the exact
        # discrete solution T_n = T_inf + (T0-T_inf)/(1+dt/RC)^n, which
        # converges to the analytic exponential; with dt = tau/200 the
        # whole trajectory must track exp(-t/tau) to first order.
        capacitance, resistance = 100.0, 2.0
        tau = capacitance * resistance
        dt = tau / 200.0
        net = rc_network(capacitance=capacitance, resistance=resistance)
        result = TransientNetworkSolver(net).integrate(
            duration=3.0 * tau, time_step=dt, initial_temperature=400.0)
        analytic = 300.0 + 100.0 * np.exp(-result.times / tau)
        assert np.max(np.abs(result.node("mass") - analytic)) < 0.3
        # And the discrete backward-Euler solution is matched exactly.
        steps = np.arange(result.times.size)
        discrete = 300.0 + 100.0 / (1.0 + dt / tau) ** steps
        assert np.max(np.abs(result.node("mass") - discrete)) < 1e-9

    def test_nonlinear_transient_matches_reference(self):
        # Hard-coded trajectory values captured from the pre-compiled
        # (lil_matrix + per-step refactorization) implementation: the
        # compiled path must reproduce them.
        net = ThermalNetwork()
        net.add_node("amb", fixed_temperature=293.15)
        net.add_node("chip", heat_load=12.0, capacitance=40.0)
        net.add_node("board", capacitance=150.0)
        net.add_conductance("chip", "board", 1.5)
        net.add_conductance("board", "amb",
                            lambda a, b: 0.4 + 1e-3 * (a - b))
        result = TransientNetworkSolver(net).integrate(
            duration=200.0, time_step=2.0)
        chip = result.node("chip")
        assert chip[10] == pytest.approx(297.3852488421196, rel=1e-12)
        assert chip[50] == pytest.approx(304.1240754412540, rel=1e-12)
        assert chip[100] == pytest.approx(309.2093950110543, rel=1e-12)
        assert result.final("board") == pytest.approx(302.41703393679387,
                                                      rel=1e-12)
