"""Tests for cooling-technique evaluation, modules and racks."""

import pytest

from avipack.errors import InputError
from avipack.packaging.cooling import (
    CoolingTechnique,
    ModuleEnvelope,
    compare_techniques,
    evaluate_cooling,
    max_power_for_limit,
)
from avipack.packaging.module import Module, module_generation
from avipack.packaging.rack import Rack, computer_rack
from avipack.units import celsius_to_kelvin


class TestCoolingTechniques:
    def test_all_techniques_evaluate(self):
        results = compare_techniques(30.0)
        assert set(results) == set(CoolingTechnique)
        for evaluation in results.values():
            assert evaluation.rise > 0.0

    def test_liquid_beats_free_convection(self):
        results = compare_techniques(60.0)
        assert results[CoolingTechnique.LIQUID_FLOW_THROUGH].rise \
            < results[CoolingTechnique.FREE_CONVECTION].rise

    def test_forced_air_beats_free_convection(self):
        results = compare_techniques(60.0)
        assert results[CoolingTechnique.DIRECT_AIR_FLOW].rise \
            < results[CoolingTechnique.FREE_CONVECTION].rise

    def test_free_convection_fails_at_60w(self):
        # The Fig. 6 trend end point: 60 W/module is beyond passive air.
        evaluation = evaluate_cooling(CoolingTechnique.FREE_CONVECTION,
                                      60.0)
        assert not evaluation.feasible_85c

    def test_direct_air_ok_at_10w(self):
        evaluation = evaluate_cooling(CoolingTechnique.DIRECT_AIR_FLOW,
                                      10.0)
        assert evaluation.feasible_85c

    def test_rise_monotone_in_power(self):
        rises = [evaluate_cooling(CoolingTechnique.CONDUCTION_COOLED,
                                  p).rise for p in (10.0, 30.0, 60.0)]
        assert rises == sorted(rises)

    def test_max_power_ordering(self):
        # Capability ladder: free convection < direct air.
        p_free = max_power_for_limit(CoolingTechnique.FREE_CONVECTION)
        p_air = max_power_for_limit(CoolingTechnique.DIRECT_AIR_FLOW)
        assert p_free < p_air

    def test_free_convection_capability_class(self):
        # Passive boxes top out at a few tens of watts.
        p_free = max_power_for_limit(CoolingTechnique.FREE_CONVECTION)
        assert 5.0 < p_free < 80.0

    def test_invalid_power(self):
        with pytest.raises(InputError):
            evaluate_cooling(CoolingTechnique.FREE_CONVECTION, -1.0)

    def test_invalid_envelope(self):
        with pytest.raises(InputError):
            ModuleEnvelope(board_length=-0.1)


class TestModule:
    def test_power_from_pcb_or_override(self):
        module = Module("m1", power_override=25.0)
        assert module.power == pytest.approx(25.0)

    def test_module_needs_source_of_power(self):
        with pytest.raises(InputError):
            Module("m1")

    def test_generations_match_paper_trend(self):
        # "from 10 W/module, it will reach 20/30 W ... and 60 W".
        assert module_generation("current").power == pytest.approx(10.0)
        assert module_generation("near_future").power \
            == pytest.approx(30.0)
        assert module_generation("next").power == pytest.approx(60.0)

    def test_unknown_generation(self):
        with pytest.raises(InputError):
            module_generation("retro")

    def test_evaluate_delegates(self):
        module = module_generation("current")
        evaluation = module.evaluate()
        assert evaluation.technique is CoolingTechnique.DIRECT_AIR_FLOW

    def test_flux_increases_across_generations(self):
        # Same envelope, more power: the miniaturisation squeeze.
        assert module_generation("next").mean_flux_w_cm2 \
            > module_generation("current").mean_flux_w_cm2


class TestRack:
    def test_total_power(self):
        rack = computer_rack(6, 20.0)
        assert rack.total_power == pytest.approx(120.0)

    def test_slots_heat_up_downstream(self):
        rack = computer_rack(6, 30.0)
        slots = rack.solve()
        inlets = [slot.inlet_temperature for slot in slots]
        assert inlets[-1] > inlets[0]

    def test_worst_slot_is_last(self):
        rack = computer_rack(6, 30.0)
        worst = rack.worst_slot()
        assert worst.module_name == rack.solve()[-1].module_name

    def test_parallel_feed_equalizes(self):
        rack = computer_rack(6, 30.0)
        rack.series_fraction = 0.0
        slots = rack.solve()
        assert slots[0].inlet_temperature \
            == pytest.approx(slots[-1].inlet_temperature)

    def test_feasibility_flips_with_power(self):
        cool_rack = computer_rack(4, 10.0)
        hot_rack = computer_rack(4, 220.0)
        assert cool_rack.feasible()
        assert not hot_rack.feasible()

    def test_empty_rack_rejected(self):
        with pytest.raises(InputError):
            Rack("empty").solve()

    def test_invalid_series_fraction(self):
        with pytest.raises(InputError):
            Rack("bad", series_fraction=1.5)

    def test_zero_power_module_passthrough(self):
        rack = Rack("r")
        rack.add_module(Module("dead", power_override=0.0))
        rack.add_module(Module("live", power_override=20.0))
        slots = rack.solve()
        assert slots[0].board_temperature \
            == pytest.approx(slots[0].inlet_temperature)
