"""Design-space enumeration: Candidate realisation and DesignSpace grids."""

import pytest

from avipack.core.design_flow import PackagingSpecification
from avipack.errors import InputError
from avipack.packaging.cooling import CoolingTechnique
from avipack.packaging.rack import Rack
from avipack.sweep import Candidate, DesignSpace


class TestCandidate:
    def test_default_candidate_builds(self):
        rack, spec = Candidate().build()
        assert isinstance(rack, Rack)
        assert isinstance(spec, PackagingSpecification)
        assert len(rack.modules) == 4
        assert rack.total_power == pytest.approx(80.0)

    def test_construction_never_validates(self):
        # Broken points must enumerate fine and fail only on build().
        broken = Candidate(power_per_module=-5.0, tim_name="no_such_tim")
        assert broken.power_per_module == -5.0
        with pytest.raises(InputError):
            broken.build()

    def test_build_rejects_zero_modules(self):
        with pytest.raises(InputError):
            Candidate(n_modules=0).build()

    def test_build_rejects_unknown_cooling_string(self):
        with pytest.raises(InputError):
            Candidate(cooling="peltier_magic").build()

    def test_cooling_accepts_string_value(self):
        rack, _ = Candidate(cooling="conduction_cooled").build()
        assert rack.modules[0].technique is CoolingTechnique.CONDUCTION_COOLED

    def test_fingerprint_is_content_based(self):
        a = Candidate(power_per_module=12.0)
        b = Candidate(power_per_module=12.0)
        c = Candidate(power_per_module=13.0)
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint

    def test_fingerprint_insensitive_to_cooling_spelling(self):
        # Enum and its string value are distinct contents by design:
        # the candidate record stores what was given.
        by_enum = Candidate(cooling=CoolingTechnique.DIRECT_AIR_FLOW)
        again = Candidate(cooling=CoolingTechnique.DIRECT_AIR_FLOW)
        assert by_enum.fingerprint == again.fingerprint

    def test_nanopack_tim_raises_edge_conductance(self):
        cheap = Candidate(tim_name="standard_grease").envelope()
        nano = Candidate(tim_name="nanopack_cnt_array").envelope()
        assert nano.edge_conductance > cheap.edge_conductance

    def test_label_mentions_the_choices(self):
        label = Candidate(power_per_module=25.0,
                          tim_name="standard_grease").label
        assert "25W" in label
        assert "standard_grease" in label


class TestDesignSpace:
    def test_size_is_axis_product(self):
        space = DesignSpace({"power_per_module": (10.0, 20.0, 30.0),
                             "n_modules": (2, 4)})
        assert space.size == 6
        assert len(space) == 6

    def test_grid_order_last_axis_fastest(self):
        space = DesignSpace({"power_per_module": (10.0, 20.0),
                             "n_modules": (2, 4)})
        points = [(c.power_per_module, c.n_modules) for c in space.grid()]
        assert points == [(10.0, 2), (10.0, 4), (20.0, 2), (20.0, 4)]

    def test_grid_is_repeatable(self):
        space = DesignSpace({"series_fraction": (0.0, 0.5, 1.0)})
        assert list(space.grid()) == list(space.grid())

    def test_unknown_axis_rejected(self):
        with pytest.raises(InputError):
            DesignSpace({"warp_drive": (1, 2)})

    def test_empty_axis_rejected(self):
        with pytest.raises(InputError):
            DesignSpace({"power_per_module": ()})

    def test_no_axes_rejected(self):
        with pytest.raises(InputError):
            DesignSpace({})

    def test_base_candidate_fills_unswept_fields(self):
        base = Candidate(n_modules=7)
        space = DesignSpace({"power_per_module": (5.0,)}, base=base)
        (point,) = space.grid()
        assert point.n_modules == 7
        assert point.power_per_module == 5.0

    def test_sample_is_seeded_and_without_replacement(self):
        space = DesignSpace({"power_per_module": tuple(range(1, 21))})
        first = space.sample(5, seed=42)
        second = space.sample(5, seed=42)
        other = space.sample(5, seed=43)
        assert first == second
        assert len({c.fingerprint for c in first}) == 5
        assert first != other

    def test_sample_larger_than_space_returns_grid(self):
        space = DesignSpace({"n_modules": (1, 2)})
        assert space.sample(10) == list(space.grid())

    def test_standard_tradeoff_covers_every_cooling_mode(self):
        space = DesignSpace.standard_tradeoff()
        techniques = {c.cooling for c in space.grid()}
        assert techniques == set(CoolingTechnique)
        assert space.size == 3 * 2 * len(CoolingTechnique) * 2
