"""Failure-injection tests: the models must degrade the way hardware does.

A credible co-design tool is defined as much by how it fails as by how
it succeeds: an overloaded heat pipe must dry out, a capsized
thermosyphon must refuse to run, a dried LHP must collapse its
conductance inside the network rather than silently keep cooling.
"""

import pytest

from avipack.errors import InputError, OperatingLimitError
from avipack.packaging.seb import SeatElectronicsBox, SebConfiguration
from avipack.thermal.network import ThermalNetwork
from avipack.twophase.heatpipe import standard_copper_water_heatpipe
from avipack.twophase.loopheatpipe import cosee_ammonia_lhp
from avipack.twophase.thermosyphon import Thermosyphon
from avipack.twophase.workingfluid import WorkingFluid


class TestDeviceFailureModes:
    def test_heatpipe_dryout_at_full_adverse_tilt(self):
        pipe = standard_copper_water_heatpipe(length=1.0, tilt_deg=90.0)
        assert pipe.capillary_limit(333.15) == 0.0
        with pytest.raises(OperatingLimitError):
            pipe.temperature_drop(5.0, 333.15)

    def test_heatpipe_frozen_fluid_out_of_range(self):
        from avipack.errors import ModelRangeError

        pipe = standard_copper_water_heatpipe()
        with pytest.raises(ModelRangeError):
            pipe.thermal_resistance(250.0)  # water frozen

    def test_lhp_overload_names_the_limit(self, cosee_lhp):
        with pytest.raises(OperatingLimitError) as excinfo:
            cosee_lhp.temperature_drop(5000.0, 320.0)
        assert excinfo.value.limit_value > 0.0

    def test_lhp_network_conductance_collapse_on_overtemperature(
            self, cosee_lhp):
        g = cosee_lhp.network_conductance(power_hint=30.0)
        healthy = g(320.0, 300.0)
        dead = g(700.0, 300.0)  # far beyond ammonia validity
        assert dead < 0.01 * healthy

    def test_thermosyphon_inverted_refuses(self):
        syphon = Thermosyphon(8e-3, 0.1, 0.1, 0.1, WorkingFluid("water"),
                              inclination_deg=85.0)
        with pytest.raises(OperatingLimitError):
            syphon.flooding_limit(333.15)


class TestSebFailureModes:
    def test_seb_heat_pipes_overload_at_absurd_power(self, seb, seb_lhp):
        with pytest.raises(OperatingLimitError):
            seb.build_network(600.0, seb_lhp)

    def test_max_power_search_survives_device_limits(self, seb):
        # The capability search must treat device overloads as
        # infeasible points, not crash.
        config = SebConfiguration(cooling="hp_lhp")
        capability = seb.max_power_for_delta_t(60.0, config,
                                               power_ceiling=1000.0)
        assert 50.0 < capability < 300.0

    def test_natural_configuration_runs_away_thermally(self, seb,
                                                       seb_natural):
        # No LHPs: power beyond ~60 W drives the PCB into runaway
        # territory - the solver still converges and reports it honestly.
        solution = seb.solve(150.0, seb_natural)
        assert solution.delta_t_pcb_air > 150.0


class TestNetworkRobustness:
    def test_two_islands_with_own_sinks_solve(self):
        net = ThermalNetwork()
        net.add_node("a", heat_load=5.0)
        net.add_node("sink_a", fixed_temperature=300.0)
        net.add_node("b", heat_load=3.0)
        net.add_node("sink_b", fixed_temperature=320.0)
        net.add_resistance("a", "sink_a", 1.0)
        net.add_resistance("b", "sink_b", 2.0)
        sol = net.solve()
        assert sol.temperature("a") == pytest.approx(305.0)
        assert sol.temperature("b") == pytest.approx(326.0)

    def test_duplicate_labels_disambiguated(self):
        net = ThermalNetwork()
        net.add_node("hot", heat_load=10.0)
        net.add_node("sink", fixed_temperature=300.0)
        net.add_resistance("hot", "sink", 2.0, label="path")
        net.add_resistance("hot", "sink", 2.0, label="path")
        sol = net.solve()
        assert len(sol.heat_flows) == 2
        assert sum(sol.heat_flows.values()) == pytest.approx(10.0)

    def test_extreme_conductance_ratio_still_converges(self):
        # 1e9 conductance ratio: stiff but solvable.
        net = ThermalNetwork()
        net.add_node("chip", heat_load=10.0)
        net.add_node("spreader")
        net.add_node("ambient", fixed_temperature=300.0)
        net.add_conductance("chip", "spreader", 1e6)
        net.add_conductance("spreader", "ambient", 1e-3)
        sol = net.solve()
        assert sol.residual < 1e-6
        assert sol.temperature("chip") \
            == pytest.approx(300.0 + 10.0 / 1e-3, rel=1e-6)

    def test_zero_power_network_isothermal(self, seb, seb_lhp):
        solution = seb.solve(0.0, seb_lhp)
        temps = solution.network.temperatures
        spread = max(temps.values()) - min(temps.values())
        assert spread < 0.5
