"""Chaos battery for retention: real SIGKILLs at every compaction phase.

A subprocess compacts a journal (then a result store) with a phase
hook that SIGKILLs itself at one phase boundary per run — no atexit,
no flush, the closest a test gets to a power cut mid-compaction.  The
parent then demands the artefact still answers identically (resume
ranking for journals, ``ranking_signature`` for stores) and that a
retried compaction converges.
"""

import os
import shutil
import signal
import subprocess
import sys
import textwrap

import pytest

from avipack.durability import replay_journal
from avipack.results import ResultStore, ResultStoreWriter, \
    ranking_signature
from avipack.retention import compact_journal, compact_store
from avipack.sweep import DesignSpace, SweepRunner

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SPACE = DesignSpace(axes={
    "power_per_module": (10.0, 20.0),
    "cooling": ("direct_air_flow", "air_flow_through"),
})

JOURNAL_PHASES = ("replay", "encode", "write", "fsync", "replace", "done")
STORE_PHASES = ("open", "plan", "publish", "delete", "done")

#: Compact the artefact at argv[1], SIGKILLing ourselves the moment
#: the phase named by argv[2] begins.  argv[3] picks the compactor.
KILL_SCRIPT = textwrap.dedent("""
    import os, signal, sys
    from avipack.retention import compact_journal, compact_store

    target = sys.argv[2]

    def hook(phase):
        if phase == target:
            os.kill(os.getpid(), signal.SIGKILL)

    compactor = {"journal": compact_journal,
                 "store": compact_store}[sys.argv[3]]
    compactor(sys.argv[1], phase_hook=hook)
""")


def kill_compaction(path, phase, kind):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    child = subprocess.run(
        [sys.executable, "-c", KILL_SCRIPT, path, phase, kind],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        timeout=120.0)
    assert child.returncode == -signal.SIGKILL, \
        f"phase {phase!r}: {child.stderr.decode()}"


def ranking(report):
    return [(o.fingerprint, o.cost_rank, o.worst_board_c)
            for o in report.ranked()]


def replay_state(path):
    replay = replay_journal(path, write_quarantine=False)
    return (replay.candidates, replay.space_fingerprint,
            dict(replay.outcomes), dict(replay.dispatched),
            replay.next_seq)


class TestJournalKill:
    @pytest.fixture(scope="class")
    def referee(self, tmp_path_factory):
        """One real campaign: its journal is copied per kill phase."""
        root = tmp_path_factory.mktemp("referee")
        path = str(root / "sweep.jsonl")
        report = SweepRunner(parallel=False).run(SPACE, journal_path=path)
        return path, ranking(report)

    @pytest.mark.parametrize("phase", JOURNAL_PHASES)
    def test_sigkill_at_phase_then_resume_ranks_identically(
            self, tmp_path, referee, phase):
        pristine, expected = referee
        journal = str(tmp_path / "killed.jsonl")
        shutil.copy(pristine, journal)
        before = replay_state(pristine)

        kill_compaction(journal, phase, "journal")

        # The kill landed on one side of the atomic swap: either way
        # the journal replays to the exact pre-compaction state.
        assert replay_state(journal) == before
        # A restarted process compacts to completion (stale tmp swept)
        # and the resume ranks identically to the uninterrupted run.
        compact_journal(journal)
        assert replay_state(journal) == before
        resumed = SweepRunner(parallel=False).resume(journal)
        assert resumed.durability.n_recomputed == 0
        assert ranking(resumed) == expected
        debris = [name for name in os.listdir(tmp_path)
                  if ".compact." in name]
        assert debris == []


class TestStoreKill:
    @pytest.fixture(scope="class")
    def referee(self, tmp_path_factory):
        """A store with superseded rows, copied per kill phase."""
        from tests.test_retention_store import build_superseded_store
        root = tmp_path_factory.mktemp("referee")
        directory = str(root / "store")
        build_superseded_store(directory)
        return directory, ranking_signature(ResultStore.open(directory))

    @pytest.mark.parametrize("phase", STORE_PHASES)
    def test_sigkill_at_phase_preserves_signature_then_converges(
            self, tmp_path, referee, phase):
        pristine, expected = referee
        directory = str(tmp_path / "killed")
        shutil.copytree(pristine, directory)

        kill_compaction(directory, phase, "store")

        # Duplicates or originals, the ranking contract holds...
        assert ranking_signature(ResultStore.open(directory)) == expected
        # ...and a restarted compactor converges to the clean state.
        compact_store(directory)
        store = ResultStore.open(directory)
        assert ranking_signature(store) == expected
        assert bool(store.live_mask().all())
        assert compact_store(directory).changed is False
