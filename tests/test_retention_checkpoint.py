"""Journal compaction: one checkpoint record, byte-identical resume.

The contract under test is absolute: folding a journal into its
checkpoint must change *nothing* observable — replay state, resume
ranking, the sequence numbers future appends will carry — while the
file shrinks to one line.  The truncation sweep then holds the
checkpoint record to the same every-byte-offset standard as live
journal lines, and the phase-abort battery proves the swap is atomic
at every seam.
"""

import json
import os
import shutil

import pytest

from avipack import perf
from avipack.durability import SweepJournal, replay_journal
from avipack.durability.journal import _canonical
from avipack.errors import DurabilityError, JournalError
from avipack.fingerprint import content_crc32, content_digest
from avipack.retention import compact_journal
from avipack.sweep import Candidate, DesignSpace, SweepRunner
from avipack.sweep.runner import CandidateResult

SPACE = DesignSpace(axes={
    "power_per_module": (10.0, 20.0),
    "cooling": ("direct_air_flow", "air_flow_through"),
})


def ranking_signature(report):
    return [(o.fingerprint, o.cost_rank, o.worst_board_c)
            for o in report.ranked()]


def make_candidates(n=3):
    return tuple(Candidate(power_per_module=10.0 + 5.0 * i)
                 for i in range(n))


def make_result(index, candidate, worst_board_c=60.0):
    return CandidateResult(
        index=index, candidate=candidate,
        fingerprint=candidate.fingerprint, compliant=True,
        violations=(), margins={"worst_board_c": worst_board_c},
        worst_board_c=worst_board_c,
        recommended_cooling="direct_air_flow",
        declared_cooling_feasible=True, cost_rank=10.0,
        elapsed_s=0.01, worker_pid=os.getpid(),
        cache_hits=0, cache_misses=1)


def write_journal(path, candidates, outcomes):
    with SweepJournal.create(str(path), candidates) as journal:
        for index, candidate in enumerate(candidates):
            journal.record_dispatched(index, candidate)
        for outcome in outcomes:
            journal.record_outcome(outcome)


def replay_state(path):
    """Everything resume semantics depend on, as one comparable tuple."""
    replay = replay_journal(str(path), write_quarantine=False)
    return (replay.candidates, replay.space_fingerprint,
            dict(replay.outcomes), dict(replay.dispatched),
            replay.next_seq)


@pytest.fixture()
def journalled(tmp_path):
    candidates = make_candidates(4)
    outcomes = [make_result(i, c) for i, c in enumerate(candidates)]
    path = str(tmp_path / "sweep.jsonl")
    write_journal(path, candidates, outcomes)
    return path


class TestFold:
    def test_folds_to_one_verified_checkpoint_line(self, journalled):
        before = replay_journal(journalled, write_quarantine=False)
        size_before = os.path.getsize(journalled)
        compaction = compact_journal(journalled)

        lines = open(journalled, "rb").read().splitlines()
        assert len(lines) == 1
        envelope = json.loads(lines[0])
        body = envelope["body"]
        assert body["kind"] == "checkpoint"
        assert body["n_folded"] == before.n_records
        # The checkpoint line verifies under the live-append discipline.
        canonical = _canonical(body)
        assert envelope["crc32"] == content_crc32(canonical)
        assert envelope["sha256"] == content_digest(canonical)

        assert compaction.n_folded == before.n_records
        assert compaction.n_quarantined == 0
        assert compaction.bytes_before == size_before
        assert compaction.bytes_after == os.path.getsize(journalled)
        assert compaction.bytes_reclaimed > 0

    def test_replay_state_is_identical(self, journalled):
        before = replay_state(journalled)
        compact_journal(journalled)
        assert replay_state(journalled) == before
        after = replay_journal(journalled, write_quarantine=False)
        # n_folded preserves the logical record count through the fold.
        assert after.n_records == replay_journal(
            journalled, write_quarantine=False).n_records

    def test_recompaction_is_a_stable_fixpoint(self, journalled):
        compact_journal(journalled)
        first = open(journalled, "rb").read()
        again = compact_journal(journalled)
        assert open(journalled, "rb").read() == first
        assert again.bytes_reclaimed == 0

    def test_counters_track_compactions_and_bytes(self, journalled):
        perf.reset()
        compaction = compact_journal(journalled)
        assert perf.counter("retention.journal_compactions") == 1
        assert perf.counter("retention.bytes_reclaimed") \
            == compaction.bytes_reclaimed

    def test_damaged_line_is_dropped_from_the_fold(self, journalled):
        lines = open(journalled, "rb").read().splitlines(keepends=True)
        damaged = bytearray(lines[-1])
        damaged[len(damaged) // 2] ^= 0x04
        lines[-1] = bytes(damaged)
        with open(journalled, "wb") as stream:
            stream.write(b"".join(lines))
        before = replay_journal(journalled, write_quarantine=False)
        compaction = compact_journal(journalled)
        assert compaction.n_quarantined == 1
        after = replay_journal(journalled, write_quarantine=False)
        assert after.n_quarantined == 0  # the damage is gone, not kept
        assert dict(after.outcomes) == dict(before.outcomes)
        assert after.next_seq == before.next_seq


class TestRefusals:
    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            compact_journal(str(tmp_path / "absent.jsonl"))

    def test_journal_without_intact_plan_is_refused_untouched(
            self, journalled):
        lines = open(journalled, "rb").read().splitlines(keepends=True)
        plan = bytearray(lines[0])
        plan[len(plan) // 2] ^= 0x01
        lines[0] = bytes(plan)
        with open(journalled, "wb") as stream:
            stream.write(b"".join(lines))
        data_before = open(journalled, "rb").read()
        with pytest.raises(JournalError):
            compact_journal(journalled)
        assert open(journalled, "rb").read() == data_before

    def test_live_writer_lock_is_respected(self, tmp_path):
        path = str(tmp_path / "held.jsonl")
        journal = SweepJournal.create(path, make_candidates())
        try:
            with pytest.raises(DurabilityError):
                compact_journal(path)
        finally:
            journal.close()
        compact_journal(path)  # released lock admits the compactor


class TestSequenceParity:
    def test_appends_after_compaction_carry_identical_seqs(
            self, tmp_path):
        candidates = make_candidates(3)
        outcomes = [make_result(i, c)
                    for i, c in enumerate(candidates[:-1])]
        plain = str(tmp_path / "plain.jsonl")
        write_journal(plain, candidates, outcomes)
        folded = str(tmp_path / "folded.jsonl")
        shutil.copy(plain, folded)
        compact_journal(folded)

        seqs = {}
        for path in (plain, folded):
            replay = replay_journal(path, write_quarantine=False)
            with SweepJournal.append_to(
                    path, next_seq=replay.next_seq) as journal:
                journal.record_outcome(
                    make_result(2, candidates[-1]))
            tail = open(path, "rb").read().splitlines()[-1]
            seqs[path] = json.loads(tail)["body"]["seq"]
        assert seqs[plain] == seqs[folded]
        # And both journals now replay to the same state.
        assert replay_state(plain) == replay_state(folded)


class TestResumeParity:
    def test_compacted_partial_journal_resumes_to_identical_ranking(
            self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        fresh = SweepRunner(parallel=False).run(SPACE, journal_path=path)
        # Cut the last two lines: a mid-campaign crash image.
        lines = open(path, "rb").read().splitlines(keepends=True)
        with open(path, "wb") as stream:
            stream.write(b"".join(lines[:-2]))
        folded = str(tmp_path / "folded.jsonl")
        shutil.copy(path, folded)
        compact_journal(folded)

        plain_resume = SweepRunner(parallel=False).resume(path)
        folded_resume = SweepRunner(parallel=False).resume(folded)
        assert folded_resume.durability.n_resumed \
            == plain_resume.durability.n_resumed
        assert folded_resume.durability.n_recomputed \
            == plain_resume.durability.n_recomputed
        assert ranking_signature(folded_resume) \
            == ranking_signature(plain_resume) \
            == ranking_signature(fresh)

    def test_complete_compacted_journal_resumes_without_recompute(
            self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        fresh = SweepRunner(parallel=False).run(SPACE, journal_path=path)
        compact_journal(path)
        resumed = SweepRunner(parallel=False).resume(path)
        assert resumed.durability.n_recomputed == 0
        assert resumed.durability.n_resumed == fresh.n_candidates
        assert ranking_signature(resumed) == ranking_signature(fresh)


class TestPhaseAborts:
    """An exception at every phase seam must leave a valid journal."""

    @pytest.mark.parametrize("target", [
        "replay", "encode", "write", "fsync", "replace", "done"])
    def test_abort_at_phase_leaves_replayable_journal(
            self, tmp_path, journalled, target):
        before = replay_state(journalled)

        class Abort(Exception):
            pass

        def hook(phase):
            if phase == target:
                raise Abort(phase)

        with pytest.raises(Abort):
            compact_journal(journalled, phase_hook=hook)
        # Whatever side the atomic swap the abort landed on, the
        # journal replays to the same state...
        assert replay_state(journalled) == before
        # ...a retried compaction completes (sweeping any stale tmp)...
        compact_journal(journalled)
        assert replay_state(journalled) == before
        # ...and leaves no tmp debris behind.
        debris = [name for name in os.listdir(os.path.dirname(journalled))
                  if ".compact." in name]
        assert debris == []


class TestCheckpointTruncationSweep:
    """Cut the checkpoint record at EVERY byte offset; replay must cope."""

    def test_every_byte_offset(self, tmp_path, journalled):
        before = replay_state(journalled)
        compact_journal(journalled)
        data = open(journalled, "rb").read()
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        # The record survives once its content is complete — with or
        # without the trailing newline.
        complete_at = {0, len(data) - 1, len(data)}

        truncated = tmp_path / "cut.jsonl"
        for cut in range(len(data) + 1):
            truncated.write_bytes(data[:cut])
            replay = replay_journal(str(truncated),
                                    write_quarantine=False)
            if cut in complete_at:
                assert replay.n_quarantined == 0, f"offset {cut}"
                if cut:
                    state = (replay.candidates, replay.space_fingerprint,
                             dict(replay.outcomes),
                             dict(replay.dispatched), replay.next_seq)
                    assert state == before, f"offset {cut}"
            else:
                # A torn checkpoint is quarantined, never trusted —
                # and never crashes the replay.
                assert replay.n_quarantined == 1, f"offset {cut}"
                assert replay.quarantined[0].reason.startswith(
                    "torn tail:"), f"offset {cut}"
                assert replay.candidates is None, f"offset {cut}"
