"""Tests for the IFE fleet model (the paper's fan-drawback arithmetic)."""

import pytest

from avipack.errors import InputError
from avipack.packaging.ife import (
    FAN_POWER_W,
    IfeSystem,
    compare_cooling_strategies,
)


@pytest.fixture
def fan_fleet():
    return IfeSystem(n_seats=300, cooling="fan")


@pytest.fixture
def passive_fleet():
    return IfeSystem(n_seats=300, cooling="passive")


class TestPerBox:
    def test_fan_degrades_mtbf(self, fan_fleet, passive_fleet):
        assert fan_fleet.seb_mtbf_hours < passive_fleet.seb_mtbf_hours

    def test_fan_adds_power(self, fan_fleet, passive_fleet):
        assert fan_fleet.seb_total_power \
            == passive_fleet.seb_total_power + FAN_POWER_W

    def test_more_fans_worse(self):
        one = IfeSystem(300, cooling="fan", fans_per_seb=1)
        two = IfeSystem(300, cooling="fan", fans_per_seb=2)
        assert two.seb_mtbf_hours < one.seb_mtbf_hours


class TestFleet:
    def test_power_scales_with_seats(self):
        small = IfeSystem(100, cooling="fan")
        large = IfeSystem(300, cooling="fan")
        assert large.system_power == pytest.approx(
            3.0 * small.system_power)

    def test_cooling_overhead_when_multiplied_by_seat_number(self,
                                                             fan_fleet):
        # "energy consumption when multiplied by the seat number".
        assert fan_fleet.cooling_overhead_power \
            == pytest.approx(300 * FAN_POWER_W)
        assert IfeSystem(300, cooling="passive").cooling_overhead_power \
            == 0.0

    def test_maintenance_dominated_by_filters(self, fan_fleet):
        # "reliability and maintenance concern (filters, failures...)".
        failures = fan_fleet.expected_failures_per_year()
        events = fan_fleet.maintenance_events_per_year()
        assert events > 5.0 * failures

    def test_passive_maintenance_is_failures_only(self, passive_fleet):
        assert passive_fleet.maintenance_events_per_year() \
            == pytest.approx(passive_fleet.expected_failures_per_year())

    def test_passive_hardware_costs_more_up_front(self, fan_fleet,
                                                  passive_fleet):
        # The trade the project had to win on operating cost, not
        # hardware cost.
        assert passive_fleet.cooling_hardware_cost() \
            > fan_fleet.cooling_hardware_cost()


class TestComparison:
    def test_comparison_structure(self):
        comparison = compare_cooling_strategies(300)
        assert set(comparison) == {"fan", "passive"}
        for figures in comparison.values():
            assert figures["system_power_w"] > 0.0

    def test_passive_wins_reliability_and_maintenance(self):
        comparison = compare_cooling_strategies(300)
        assert comparison["passive"]["seb_mtbf_h"] \
            > 2.0 * comparison["fan"]["seb_mtbf_h"]
        assert comparison["passive"]["maintenance_per_year"] \
            < 0.1 * comparison["fan"]["maintenance_per_year"]


class TestValidation:
    def test_invalid_seats(self):
        with pytest.raises(InputError):
            IfeSystem(0)

    def test_invalid_cooling(self):
        with pytest.raises(InputError):
            IfeSystem(300, cooling="peltier")

    def test_invalid_power(self):
        with pytest.raises(InputError):
            IfeSystem(300, seb_power=-40.0)
