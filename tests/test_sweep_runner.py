"""Sweep execution: failure isolation, parity, caching, reporting."""

import pytest

from avipack.core.levels import run_level1, run_level2, run_level3, run_pyramid
from avipack.errors import InputError
from avipack.sweep import (
    Candidate,
    CandidateFailure,
    CandidateResult,
    DesignSpace,
    SolverCache,
    SweepRunner,
    evaluate_candidate,
    render_sweep_document,
)

SMALL_SPACE = {
    "power_per_module": (10.0, 20.0),
    "tim_name": ("standard_grease", "nanopack_cnt_array"),
}


class TestEvaluateCandidate:
    def test_valid_candidate_yields_result(self):
        outcome = evaluate_candidate((3, Candidate(), False))
        assert isinstance(outcome, CandidateResult)
        assert outcome.index == 3
        assert outcome.margins["worst_board_c"] == pytest.approx(
            outcome.worst_board_c)
        assert outcome.elapsed_s > 0.0
        assert outcome.cache_hits == 0 and outcome.cache_misses == 0

    def test_invalid_candidate_yields_build_failure(self):
        bad = Candidate(power_per_module=-1.0)
        outcome = evaluate_candidate((0, bad, False))
        assert isinstance(outcome, CandidateFailure)
        assert outcome.stage == "build"
        assert outcome.error_type == "InputError"
        assert not outcome.compliant

    def test_unknown_tim_yields_failure_not_raise(self):
        bad = Candidate(tim_name="unobtainium")
        outcome = evaluate_candidate((0, bad, False))
        assert isinstance(outcome, CandidateFailure)
        assert "unobtainium" in outcome.message

    def test_explicit_cache_is_used(self):
        cache = SolverCache()
        evaluate_candidate((0, Candidate(), True), cache)
        assert cache.misses > 0
        again = evaluate_candidate((1, Candidate(), True), cache)
        assert again.cache_hits > 0


class TestFailureIsolation:
    def test_invalid_candidates_fail_exactly_and_rest_complete(self):
        candidates = [
            Candidate(power_per_module=10.0),            # 0: fine
            Candidate(power_per_module=-4.0),            # 1: bad power
            Candidate(power_per_module=15.0),            # 2: fine
            Candidate(tim_name="not_a_tim"),             # 3: bad TIM
            Candidate(cooling="vortex_tube"),            # 4: bad cooling
            Candidate(power_per_module=20.0),            # 5: fine
        ]
        report = SweepRunner(parallel=False).run(candidates)
        assert report.n_candidates == 6
        assert [f.index for f in report.failures] == [1, 3, 4]
        assert [r.index for r in report.results] == [0, 2, 5]
        assert all(isinstance(f, CandidateFailure) for f in report.failures)
        assert {f.error_type for f in report.failures} == {"InputError",
                                                           "MaterialNotFoundError"}

    def test_failures_survive_the_process_pool(self):
        candidates = [Candidate(), Candidate(n_modules=0), Candidate()]
        report = SweepRunner(parallel=True, max_workers=2).run(candidates)
        assert [f.index for f in report.failures] == [1]
        assert [r.index for r in report.results] == [0, 2]


class TestSerialParallelParity:
    def test_identical_outcomes_and_ranking(self):
        space = DesignSpace(SMALL_SPACE)
        serial = SweepRunner(parallel=False).run(space)
        par = SweepRunner(parallel=True, max_workers=2).run(space)
        assert [o.fingerprint for o in serial.outcomes] \
            == [o.fingerprint for o in par.outcomes]
        assert [o.compliant for o in serial.outcomes] \
            == [o.compliant for o in par.outcomes]
        assert [r.index for r in serial.ranked()] \
            == [r.index for r in par.ranked()]
        for a, b in zip(serial.results, par.results):
            assert a.worst_board_c == pytest.approx(b.worst_board_c)

    def test_parallel_uses_multiple_workers_when_available(self):
        space = DesignSpace(SMALL_SPACE)
        report = SweepRunner(parallel=True, max_workers=2, chunksize=1).run(space)
        assert report.mode == "parallel"
        assert report.workers == 2
        pids = {o.worker_pid for o in report.outcomes}
        assert len(pids) >= 1  # >= 2 on multi-core boxes; never zero

    def test_single_worker_requests_serial_path(self):
        report = SweepRunner(max_workers=1).run(DesignSpace(SMALL_SPACE))
        assert report.mode == "serial"
        assert report.workers == 1


class TestCaching:
    def test_sweep_cache_hit_rate_positive(self):
        report = SweepRunner(parallel=False, use_cache=True).run(
            DesignSpace(SMALL_SPACE))
        assert report.cache.hits > 0
        assert report.cache.hit_rate > 0.0

    def test_cold_sweep_records_no_lookups(self):
        report = SweepRunner(parallel=False, use_cache=False).run(
            DesignSpace(SMALL_SPACE))
        assert report.cache.lookups == 0

    def test_cached_results_match_uncached(self):
        space = DesignSpace(SMALL_SPACE)
        hot = SweepRunner(parallel=False, use_cache=True).run(space)
        cold = SweepRunner(parallel=False, use_cache=False).run(space)
        for a, b in zip(hot.results, cold.results):
            assert a.worst_board_c == pytest.approx(b.worst_board_c)
            assert a.compliant == b.compliant

    def test_levels_share_cache_across_tim_variants(self):
        # Two candidates differing only in TIM share the rack airflow
        # solve (level 2 never reads the TIM).
        cache = SolverCache()
        for tim in ("standard_grease", "nanopack_cnt_array"):
            rack, _ = Candidate(tim_name=tim).build()
            run_level2(rack, cache=cache)
        assert cache.hits == 1
        assert cache.misses == 1


class TestLevelRunnersWithCache:
    def test_run_level1_memoised(self):
        cache = SolverCache()
        first = run_level1(60.0, cache=cache)
        second = run_level1(60.0, cache=cache)
        assert first is second
        assert cache.hits == 1

    def test_run_level3_accepts_injected_solver(self):
        calls = []
        pcb = Candidate().board()

        class FakeDetail:
            junction_temperatures = {"r1": 350.0}

        def fake_solver(**kwargs):
            calls.append(kwargs)
            return FakeDetail()

        result = run_level3(pcb, 330.0, detail_solver=fake_solver)
        assert calls and calls[0]["ambient"] == 330.0
        assert result.max_junction == 350.0

    def test_run_pyramid_threads_cache(self):
        rack, _ = Candidate().build()
        cache = SolverCache()
        run_pyramid(rack, cache=cache)
        assert cache.misses > 0
        before = cache.misses
        run_pyramid(rack, cache=cache)
        assert cache.misses == before  # fully served from memory


class TestSweepReport:
    @pytest.fixture(scope="class")
    def report(self):
        return SweepRunner(parallel=False).run(DesignSpace(SMALL_SPACE))

    def test_ranked_is_cheapest_first(self, report):
        ranked = report.ranked()
        assert ranked, "expected compliant candidates in the small space"
        costs = [r.cost_rank for r in ranked]
        assert costs == sorted(costs)
        assert report.best() is ranked[0]

    def test_ranking_breaks_ties_by_headroom(self, report):
        ranked = report.ranked()
        for a, b in zip(ranked, ranked[1:]):
            if a.cost_rank == b.cost_rank:
                assert a.thermal_headroom_c >= b.thermal_headroom_c

    def test_observability_fields(self, report):
        assert report.wall_time_s > 0.0
        assert report.total_evaluation_s > 0.0
        assert 0.0 < report.worker_utilisation <= 1.0
        assert len(report.timings()) == report.n_candidates
        busy = report.worker_busy_s()
        assert sum(busy.values()) == pytest.approx(report.total_evaluation_s)

    def test_document_renders_all_sections(self, report):
        text = render_sweep_document(report)
        assert "DESIGN-SPACE SWEEP REPORT" in text
        assert "1. EXECUTION" in text
        assert "2. OUTCOMES" in text
        assert "3. RANKED COMPLIANT CANDIDATES" in text
        assert "hit rate" in text

    def test_document_lists_failures(self):
        report = SweepRunner(parallel=False).run(
            [Candidate(), Candidate(power_per_module=-1.0)])
        text = render_sweep_document(report)
        assert "#1 [build] InputError" in text


class TestRunnerValidation:
    def test_empty_sweep_rejected(self):
        with pytest.raises(InputError):
            SweepRunner().run([])

    def test_negative_workers_rejected(self):
        with pytest.raises(InputError):
            SweepRunner(max_workers=-1)

    def test_bad_chunksize_rejected(self):
        with pytest.raises(InputError):
            SweepRunner(chunksize=0)


class TestProgressCallbacks:
    """The journal-tee progress hook behind the job service."""

    def test_progress_fires_once_per_outcome_in_order(self, tmp_path):
        journal = str(tmp_path / "progress.jsonl")
        seen = []
        report = SweepRunner(parallel=False).run(
            DesignSpace(SMALL_SPACE), journal_path=journal,
            progress=seen.append)
        assert len(seen) == report.n_candidates
        assert [o.index for o in seen] == sorted(o.index for o in seen)
        assert {o.fingerprint for o in seen} == \
            {o.fingerprint for o in report.outcomes}

    def test_progress_without_journal(self):
        seen = []
        report = SweepRunner(parallel=False).run(
            DesignSpace(SMALL_SPACE), progress=seen.append)
        assert len(seen) == report.n_candidates

    def test_progress_exception_leaves_resumable_journal(self, tmp_path):
        from avipack.durability import replay_journal

        journal = str(tmp_path / "cancelled.jsonl")

        class Stop(Exception):
            pass

        seen = []

        def hook(outcome):
            seen.append(outcome)
            if len(seen) == 2:
                raise Stop("enough")

        with pytest.raises(Stop):
            SweepRunner(parallel=False).run(
                DesignSpace(SMALL_SPACE), journal_path=journal,
                progress=hook)
        # The triggering outcome was journalled before the hook ran:
        # nothing acknowledged is lost, and the journal replays clean.
        replay = replay_journal(journal, write_quarantine=False)
        assert replay.n_quarantined == 0
        assert len(replay.outcomes) == 2

        resumed = SweepRunner(parallel=False).resume(journal)
        assert resumed.n_candidates == 4
        assert resumed.durability.n_resumed == 2

    def test_resume_progress_covers_only_recomputed(self, tmp_path):
        journal = str(tmp_path / "partial.jsonl")
        first = []

        def stop_after_two(outcome):
            first.append(outcome)
            if len(first) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            SweepRunner(parallel=False).run(
                DesignSpace(SMALL_SPACE), journal_path=journal,
                progress=stop_after_two)
        resumed_seen = []
        report = SweepRunner(parallel=False).resume(
            journal, progress=resumed_seen.append)
        # Restored outcomes arrive from the journal, not the hook.
        assert len(resumed_seen) == report.n_candidates - 2
