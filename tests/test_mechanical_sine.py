"""Tests for sinusoidal vibration sweeps and responses."""

import pytest

from avipack.errors import InputError
from avipack.mechanical.sine import (
    SineSpec,
    do160_propeller_sine,
    peak_sine_response,
    resonance_dwell_cycles,
    sdof_magnification,
)


@pytest.fixture
def spec():
    return do160_propeller_sine()


class TestSineSpec:
    def test_level_lookup(self, spec):
        assert spec.level(100.0) == pytest.approx(4.0)
        assert spec.level(10.0) == pytest.approx(0.5)

    def test_outside_band_zero(self, spec):
        assert spec.level(1000.0) == 0.0

    def test_band_edges(self, spec):
        assert spec.f_min == pytest.approx(5.0)
        assert spec.f_max == pytest.approx(500.0)

    def test_overlapping_segments_rejected(self):
        with pytest.raises(InputError):
            SineSpec(segments=((10.0, 50.0, 1.0), (40.0, 100.0, 2.0)))

    def test_empty_rejected(self):
        with pytest.raises(InputError):
            SineSpec(segments=())

    def test_negative_level_rejected(self):
        with pytest.raises(InputError):
            SineSpec(segments=((10.0, 50.0, -1.0),))


class TestMagnification:
    def test_unity_at_low_frequency(self):
        assert sdof_magnification(1.0, 100.0, 10.0) \
            == pytest.approx(1.0, abs=0.01)

    def test_q_at_resonance(self):
        assert sdof_magnification(100.0, 100.0, 10.0) \
            == pytest.approx(10.0, rel=0.01)

    def test_rolloff_above_resonance(self):
        assert sdof_magnification(1000.0, 100.0, 10.0) < 0.05

    def test_invalid_q(self):
        with pytest.raises(InputError):
            sdof_magnification(100.0, 100.0, 0.4)


class TestPeakResponse:
    def test_resonance_in_band_amplifies_by_q(self, spec):
        response, frequency = peak_sine_response(spec, 94.0, 10.0)
        assert frequency == pytest.approx(94.0, rel=0.02)
        assert response == pytest.approx(4.0 * 10.0, rel=0.05)

    def test_resonance_above_band_tracks_edge(self, spec):
        response, frequency = peak_sine_response(spec, 5000.0, 10.0)
        # No resonance in band: response stays near the input level.
        assert response < 6.0

    def test_stiffer_structure_lower_peak(self, spec):
        soft, _f1 = peak_sine_response(spec, 100.0, 10.0)
        stiff, _f2 = peak_sine_response(spec, 2000.0, 10.0)
        assert stiff < soft


class TestDwellCycles:
    def test_slower_sweep_more_cycles(self):
        fast = resonance_dwell_cycles(94.0, 10.0, 4.0)
        slow = resonance_dwell_cycles(94.0, 10.0, 0.5)
        assert slow == pytest.approx(8.0 * fast)

    def test_sharper_resonance_fewer_cycles(self):
        broad = resonance_dwell_cycles(94.0, 5.0, 1.0)
        sharp = resonance_dwell_cycles(94.0, 50.0, 1.0)
        assert sharp < broad

    def test_magnitude(self):
        # 94 Hz, Q=10, 1 oct/min: ~800 cycles - the classic result that
        # a single sweep is a negligible fatigue dose vs 2e7 capability.
        cycles = resonance_dwell_cycles(94.0, 10.0, 1.0)
        assert 100.0 < cycles < 5000.0

    def test_invalid_rate(self):
        with pytest.raises(InputError):
            resonance_dwell_cycles(94.0, 10.0, -1.0)


class TestExperimentsExtensions:
    """Ceiling/altitude studies (grouped here with other new features)."""

    def test_ceiling_beats_seat(self):
        from avipack.experiments.cosee import ceiling_installation_study

        study = ceiling_installation_study(60.0)
        assert study["ceiling_capability"] > study["seat_capability"]
        assert study["ceiling_delta_t"] < study["seat_delta_t"]

    def test_altitude_derates_monotonically(self):
        from avipack.experiments.cosee import altitude_derating_study

        study = altitude_derating_study(40.0)
        pressures = sorted(study, reverse=True)
        deltas = [study[p] for p in pressures]
        assert deltas == sorted(deltas)

    def test_altitude_study_validates_power(self):
        from avipack.experiments.cosee import altitude_derating_study

        with pytest.raises(InputError):
            altitude_derating_study(-1.0)
