"""Write-ahead journal: checksummed appends, verify-or-quarantine replay.

The property that matters is absolute: *no* byte-level damage to a
journal may crash the replay or smuggle a wrong record past it.  The
truncation sweep below enforces it literally — a valid journal cut at
every possible byte offset must replay cleanly, restoring exactly the
records whose lines survived intact and quarantining at most the torn
tail.
"""

import base64
import json
import os

import pytest

from avipack.durability import (
    SCHEMA_VERSION,
    SweepJournal,
    replay_journal,
)
from avipack.durability.journal import _canonical
from avipack.errors import DurabilityError, InputError, JournalError
from avipack.fingerprint import content_crc32, content_digest
from avipack.resilience import FaultPlan, FaultSpec
from avipack.resilience import faults as faults_mod
from avipack.sweep import Candidate, CandidateFailure, CandidateResult


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults_mod.uninstall()
    yield
    faults_mod.uninstall()


def make_candidates(n=3):
    return tuple(Candidate(power_per_module=10.0 + 5.0 * i)
                 for i in range(n))


def make_result(index, candidate, worst_board_c=60.0):
    return CandidateResult(
        index=index,
        candidate=candidate,
        fingerprint=candidate.fingerprint,
        compliant=True,
        violations=(),
        margins={"worst_board_c": worst_board_c},
        worst_board_c=worst_board_c,
        recommended_cooling="direct_air_flow",
        declared_cooling_feasible=True,
        cost_rank=10.0,
        elapsed_s=0.01,
        worker_pid=os.getpid(),
        cache_hits=0,
        cache_misses=1,
    )


def make_failure(index, candidate, error_type="ConvergenceError"):
    return CandidateFailure(
        index=index,
        candidate=candidate,
        fingerprint=candidate.fingerprint,
        stage="evaluate",
        error_type=error_type,
        message="injected",
        elapsed_s=0.01,
        worker_pid=os.getpid(),
    )


def write_journal(path, candidates, outcomes):
    with SweepJournal.create(str(path), candidates) as journal:
        for index, candidate in enumerate(candidates):
            journal.record_dispatched(index, candidate)
        for outcome in outcomes:
            journal.record_outcome(outcome)


class TestRoundTrip:
    def test_full_round_trip(self, tmp_path):
        candidates = make_candidates()
        outcomes = [make_result(i, c) for i, c in enumerate(candidates)]
        path = tmp_path / "sweep.jsonl"
        write_journal(path, candidates, outcomes)

        replay = replay_journal(str(path))
        assert replay.n_quarantined == 0
        assert replay.candidates == candidates
        assert set(replay.outcomes) == {c.fingerprint for c in candidates}
        for original in outcomes:
            restored = replay.outcomes[original.fingerprint]
            assert restored == original
        assert replay.n_records == 1 + 2 * len(candidates)
        assert replay.next_seq == replay.n_records
        assert not os.path.exists(f"{path}.quarantine")

    def test_outcome_kinds(self, tmp_path):
        candidates = make_candidates(3)
        outcomes = [
            make_result(0, candidates[0]),
            make_failure(1, candidates[1]),
            make_failure(2, candidates[2], error_type="WatchdogTimeout"),
        ]
        path = tmp_path / "sweep.jsonl"
        write_journal(path, candidates, outcomes)
        kinds = [json.loads(line)["body"]["kind"]
                 for line in path.read_bytes().splitlines()]
        assert kinds.count("completed") == 1
        assert kinds.count("failed") == 1
        assert kinds.count("timeout") == 1

    def test_records_carry_schema_and_checksums(self, tmp_path):
        candidates = make_candidates(1)
        path = tmp_path / "sweep.jsonl"
        write_journal(path, candidates, [make_result(0, candidates[0])])
        for line in path.read_bytes().splitlines():
            envelope = json.loads(line)
            body = envelope["body"]
            assert body["schema_version"] == SCHEMA_VERSION
            canonical = _canonical(body)
            assert envelope["crc32"] == content_crc32(canonical)
            assert envelope["sha256"] == content_digest(canonical)

    def test_append_to_continues_sequence(self, tmp_path):
        candidates = make_candidates(2)
        path = tmp_path / "sweep.jsonl"
        write_journal(path, candidates, [make_result(0, candidates[0])])
        replay = replay_journal(str(path))
        with SweepJournal.append_to(str(path),
                                    next_seq=replay.next_seq) as journal:
            journal.record_outcome(make_result(1, candidates[1]))
        again = replay_journal(str(path))
        assert again.n_quarantined == 0
        assert len(again.outcomes) == 2
        assert again.next_seq == replay.next_seq + 1

    def test_append_to_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            SweepJournal.append_to(str(tmp_path / "absent.jsonl"))

    def test_replay_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            replay_journal(str(tmp_path / "absent.jsonl"))

    def test_closed_journal_rejects_appends(self, tmp_path):
        candidates = make_candidates(1)
        journal = SweepJournal.create(str(tmp_path / "j.jsonl"), candidates)
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(InputError):
            journal.record_dispatched(0, candidates[0])


class TestDamage:
    def _journal(self, tmp_path):
        candidates = make_candidates()
        outcomes = [make_result(i, c) for i, c in enumerate(candidates)]
        path = tmp_path / "sweep.jsonl"
        write_journal(path, candidates, outcomes)
        return path, candidates

    def test_bitflip_is_quarantined(self, tmp_path):
        path, candidates = self._journal(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        damaged = bytearray(lines[-1])
        damaged[len(damaged) // 2] ^= 0x04
        lines[-1] = bytes(damaged)
        path.write_bytes(b"".join(lines))

        replay = replay_journal(str(path))
        assert replay.n_quarantined == 1
        assert "mismatch" in replay.quarantined[0].reason \
            or "unparseable" in replay.quarantined[0].reason
        assert len(replay.outcomes) == len(candidates) - 1
        sidecar = f"{path}.quarantine"
        assert os.path.exists(sidecar)
        entry = json.loads(open(sidecar).read().splitlines()[0])
        assert base64.b64decode(entry["raw"]) == lines[-1].rstrip(b"\n")

    def test_stale_schema_version_is_quarantined(self, tmp_path):
        # Valid checksums over a stale schema: integrity alone must not
        # be enough — the layout is untrusted.
        path, candidates = self._journal(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        envelope = json.loads(lines[-1])
        envelope["body"]["schema_version"] = SCHEMA_VERSION + 1
        canonical = _canonical(envelope["body"])
        envelope["crc32"] = content_crc32(canonical)
        envelope["sha256"] = content_digest(canonical)
        lines[-1] = (json.dumps(envelope, sort_keys=True) + "\n").encode()
        path.write_bytes(b"".join(lines))

        replay = replay_journal(str(path))
        assert replay.n_quarantined == 1
        assert "schema_version" in replay.quarantined[0].reason

    def test_unknown_kind_is_quarantined(self, tmp_path):
        path, _ = self._journal(tmp_path)
        body = {"schema_version": SCHEMA_VERSION, "seq": 99,
                "kind": "mystery"}
        canonical = _canonical(body)
        record = json.dumps({"body": body,
                             "crc32": content_crc32(canonical),
                             "sha256": content_digest(canonical)},
                            sort_keys=True)
        with open(path, "ab") as stream:
            stream.write(record.encode() + b"\n")
        replay = replay_journal(str(path))
        assert replay.n_quarantined == 1
        assert "unknown record kind" in replay.quarantined[0].reason

    def test_unpicklable_payload_is_quarantined(self, tmp_path):
        path, candidates = self._journal(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        envelope = json.loads(lines[-1])
        envelope["body"]["payload"] = base64.b64encode(
            b"not a pickle").decode()
        canonical = _canonical(envelope["body"])
        envelope["crc32"] = content_crc32(canonical)
        envelope["sha256"] = content_digest(canonical)
        lines[-1] = (json.dumps(envelope, sort_keys=True) + "\n").encode()
        path.write_bytes(b"".join(lines))
        replay = replay_journal(str(path))
        assert replay.n_quarantined == 1
        assert len(replay.outcomes) == len(candidates) - 1

    def test_quarantine_sidecar_optional(self, tmp_path):
        path, _ = self._journal(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        replay = replay_journal(str(path), write_quarantine=False)
        assert replay.n_quarantined == 1
        assert not os.path.exists(f"{path}.quarantine")


class TestTruncationSweep:
    """Cut a valid journal at EVERY byte offset; replay must cope."""

    def test_every_byte_offset(self, tmp_path):
        candidates = make_candidates(3)
        outcomes = [make_result(i, c) for i, c in enumerate(candidates)]
        path = tmp_path / "full.jsonl"
        write_journal(path, candidates, outcomes)
        data = path.read_bytes()
        originals = {o.fingerprint: o for o in outcomes}

        # Byte offset just past each record's newline.
        line_ends = [i + 1 for i, b in enumerate(data) if b == 0x0A]
        # A record survives a cut once its full content is present —
        # the trailing newline itself is not needed to verify it.
        complete_at = sorted({end - 1 for end in line_ends}
                             | set(line_ends))
        truncated = tmp_path / "cut.jsonl"
        for cut in range(len(data) + 1):
            truncated.write_bytes(data[:cut])
            replay = replay_journal(str(truncated),
                                    write_quarantine=False)
            # 1. Never an exception (reaching here proves it), and at
            #    most one damaged line — the torn tail.
            assert replay.n_quarantined <= 1, f"offset {cut}"
            # 2. Every record whose content survived is restored...
            intact_records = sum(1 for end in line_ends if end - 1 <= cut)
            assert replay.n_records == intact_records, f"offset {cut}"
            # 3. ...and restored outcomes equal the originals field
            #    for field (frozen dataclass equality: every metric,
            #    every margin, bit-for-bit floats).
            for fingerprint, restored in replay.outcomes.items():
                assert restored == originals[fingerprint], \
                    f"offset {cut}"
            # 4. A partial tail line is quarantined, not dropped.
            if cut != 0 and cut not in complete_at:
                assert replay.n_quarantined == 1, f"offset {cut}"
                assert replay.quarantined[0].reason.startswith(
                    "torn tail:"), f"offset {cut}"
            else:
                assert replay.n_quarantined == 0, f"offset {cut}"


class TestInjectedFaultSites:
    def test_torn_write_site(self, tmp_path):
        candidates = make_candidates(3)
        plan = FaultPlan(specs=(
            FaultSpec("durability.journal_torn_write", "cache_corrupt",
                      rate=1.0, scopes=(("journal", 4),)),), seed=7)
        faults_mod.install(plan)
        try:
            path = tmp_path / "sweep.jsonl"
            write_journal(path, candidates,
                          [make_result(i, c)
                           for i, c in enumerate(candidates)])
        finally:
            faults_mod.uninstall()
        replay = replay_journal(str(path), write_quarantine=False)
        # seq 4 is the first outcome record (plan + 3 dispatched come
        # first).  Its torn bytes carry no newline, so the *following*
        # record lands on the same damaged line: one quarantined line
        # swallows two records, and only the last outcome survives.
        assert replay.n_quarantined == 1
        assert len(replay.outcomes) == len(candidates) - 2

    def test_bitflip_site_corrupts_deterministic_subset(self, tmp_path):
        candidates = make_candidates(4)
        plan = FaultPlan(specs=(
            FaultSpec("durability.journal_bitflip", "cache_corrupt",
                      rate=0.5),), seed=11)
        outcomes = [make_result(i, c) for i, c in enumerate(candidates)]

        def run_once(path):
            faults_mod.install(plan)
            try:
                write_journal(path, candidates, outcomes)
            finally:
                faults_mod.uninstall()
            return replay_journal(str(path), write_quarantine=False)

        first = run_once(tmp_path / "a.jsonl")
        second = run_once(tmp_path / "b.jsonl")
        # Partial, deterministic damage: per-seq scoping means the same
        # seeded plan corrupts the same subset on every run.
        assert 0 < first.n_quarantined < 1 + 2 * len(candidates)
        assert first.n_quarantined == second.n_quarantined
        assert [q.line_number for q in first.quarantined] == \
            [q.line_number for q in second.quarantined]


class TestJournalLocking:
    """Advisory flock: one writer per journal, contention is loud."""

    def test_append_while_create_holds_lock_raises(self, tmp_path):
        path = str(tmp_path / "locked.jsonl")
        journal = SweepJournal.create(path, make_candidates())
        try:
            with pytest.raises(DurabilityError) as excinfo:
                SweepJournal.append_to(path)
            assert "locked by another writer" in str(excinfo.value)
        finally:
            journal.close()

    def test_create_over_held_journal_does_not_destroy_it(self, tmp_path):
        path = str(tmp_path / "held.jsonl")
        candidates = make_candidates()
        journal = SweepJournal.create(path, candidates)
        try:
            size_before = os.path.getsize(path)
            with pytest.raises(DurabilityError):
                SweepJournal.create(path, make_candidates(1))
            # The live journal's content survived the refused takeover.
            assert os.path.getsize(path) == size_before
        finally:
            journal.close()
        replay = replay_journal(path, write_quarantine=False)
        assert replay.candidates == candidates

    def test_lock_released_on_close(self, tmp_path):
        path = str(tmp_path / "released.jsonl")
        SweepJournal.create(path, make_candidates()).close()
        journal = SweepJournal.append_to(path)
        journal.close()

    def test_create_failure_releases_lock_and_descriptor(self, tmp_path):
        # A create that explodes after taking the lock (here: the plan
        # record cannot pickle a lambda) must close the stream on its
        # way out — otherwise the path stays flock'd and the fd leaks
        # until process exit, and every retry is refused as contention.
        path = str(tmp_path / "fail.jsonl")
        with pytest.raises(Exception):
            SweepJournal.create(path, (lambda: None,))
        journal = SweepJournal.create(path, make_candidates())
        journal.close()
        replay = replay_journal(path, write_quarantine=False)
        assert replay.candidates == make_candidates()

    def test_contention_error_is_a_durability_error(self, tmp_path):
        from avipack.errors import AvipackError

        path = str(tmp_path / "tax.jsonl")
        journal = SweepJournal.create(path, make_candidates())
        try:
            with pytest.raises(AvipackError):
                SweepJournal.append_to(path)
        finally:
            journal.close()
