"""Tests for the TIM catalogue and the NANOPACK entries."""

import pytest

from avipack.errors import InputError, MaterialNotFoundError
from avipack.tim.catalog import best_tim_for_target, get_tim, list_tims
from avipack.tim.interface import meets_nanopack_target


class TestCatalog:
    def test_nanopack_entries_present(self):
        names = list_tims()
        for expected in ("nanopack_silver_flake_epoxy",
                         "nanopack_silver_sphere_epoxy",
                         "nanopack_metal_polymer_composite"):
            assert expected in names

    def test_paper_conductivities(self):
        # The three headline numbers: 6 / 9.5 / 20 W/m.K.
        assert get_tim("nanopack_silver_flake_epoxy").conductivity \
            == pytest.approx(6.0)
        assert get_tim("nanopack_silver_sphere_epoxy").conductivity \
            == pytest.approx(9.5)
        assert get_tim("nanopack_metal_polymer_composite").conductivity \
            == pytest.approx(20.0)

    def test_flake_epoxy_shear_strength(self):
        # "measured to 14 MPa which is also remarkable".
        assert get_tim("nanopack_silver_flake_epoxy").shear_strength \
            == pytest.approx(14e6)

    def test_silver_adhesives_electrically_conductive(self):
        assert get_tim("nanopack_silver_flake_epoxy") \
            .electrically_conductive
        assert not get_tim("standard_grease").electrically_conductive

    def test_unknown_rejected(self):
        with pytest.raises(MaterialNotFoundError):
            get_tim("unobtanium_paste")


class TestAssembly:
    def test_composite_meets_project_target(self):
        iface = get_tim("nanopack_metal_polymer_composite").assemble(
            1e-4, hnc_surface=True)
        assert meets_nanopack_target(iface)

    def test_grease_does_not_meet_target(self):
        iface = get_tim("standard_grease").assemble(1e-4)
        assert not meets_nanopack_target(iface)

    def test_hnc_thins_bond_line(self):
        material = get_tim("nanopack_silver_sphere_epoxy")
        flat = material.assemble(1e-4)
        hnc = material.assemble(1e-4, hnc_surface=True)
        assert hnc.bond_line_thickness < flat.bond_line_thickness

    def test_pressure_effect(self):
        material = get_tim("standard_grease")
        soft = material.assemble(1e-4, pressure=1e5)
        hard = material.assemble(1e-4, pressure=1e6)
        assert hard.bond_line_thickness <= soft.bond_line_thickness

    def test_invalid_area(self):
        with pytest.raises(InputError):
            get_tim("standard_grease").assemble(-1e-4)


class TestSelection:
    def test_best_tim_prefers_least_exotic(self):
        # A loose 60 K.mm2/W target should NOT pick a nanopack material.
        material = best_tim_for_target(60.0, 1e-4)
        assert material is not None
        assert not material.name.startswith("nanopack")

    def test_tight_target_needs_nanopack(self):
        material = best_tim_for_target(4.0, 1e-4, hnc_surface=True)
        assert material is not None
        assert material.name.startswith("nanopack")

    def test_insulating_requirement_filters(self):
        material = best_tim_for_target(60.0, 1e-4,
                                       require_insulating=True)
        assert material is not None
        assert not material.electrically_conductive

    def test_impossible_target_returns_none(self):
        assert best_tim_for_target(0.01, 1e-4) is None

    def test_invalid_target(self):
        with pytest.raises(InputError):
            best_tim_for_target(-1.0, 1e-4)
