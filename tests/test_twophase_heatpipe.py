"""Tests for the heat-pipe model: limits, resistance, design behaviour."""

import pytest

from avipack.errors import InputError, OperatingLimitError
from avipack.twophase.heatpipe import (
    HeatPipe,
    HeatPipeGeometry,
    standard_copper_water_heatpipe,
)
from avipack.twophase.wick import sintered_powder_wick
from avipack.twophase.workingfluid import WorkingFluid

T_OP = 333.15  # 60 degC vapour


class TestGeometry:
    def test_derived_radii(self):
        geo = HeatPipeGeometry(3e-3, 0.3e-3, 0.6e-3, 0.05, 0.05, 0.05)
        assert geo.inner_radius == pytest.approx(2.7e-3)
        assert geo.vapor_radius == pytest.approx(2.1e-3)

    def test_effective_length(self):
        geo = HeatPipeGeometry(3e-3, 0.3e-3, 0.6e-3, 0.04, 0.06, 0.04)
        assert geo.effective_length == pytest.approx(0.06 + 0.04)

    def test_no_vapor_core_rejected(self):
        with pytest.raises(InputError):
            HeatPipeGeometry(1e-3, 0.5e-3, 0.6e-3, 0.05, 0.05, 0.05)

    def test_negative_length_rejected(self):
        with pytest.raises(InputError):
            HeatPipeGeometry(3e-3, 0.3e-3, 0.6e-3, -0.05, 0.05, 0.05)


class TestLimits:
    def test_capillary_binds_at_operating_temperature(self, copper_water_hp):
        q_max, name = copper_water_hp.max_heat_transport(T_OP)
        assert name == "capillary"
        # A 6 mm copper/water pipe carries some tens of watts.
        assert 20.0 < q_max < 200.0

    def test_all_limits_positive(self, copper_water_hp):
        for name, value in copper_water_hp.operating_limits(T_OP).items():
            assert value > 0.0, name

    def test_adverse_tilt_reduces_capillary(self, copper_water_hp):
        from dataclasses import replace

        tilted = replace(copper_water_hp, tilt_deg=45.0)
        assert tilted.capillary_limit(T_OP) \
            < copper_water_hp.capillary_limit(T_OP)

    def test_gravity_assist_increases_capillary(self, copper_water_hp):
        from dataclasses import replace

        assisted = replace(copper_water_hp, tilt_deg=-45.0)
        assert assisted.capillary_limit(T_OP) \
            > copper_water_hp.capillary_limit(T_OP)

    def test_fully_adverse_long_pipe_dries_out(self):
        pipe = standard_copper_water_heatpipe(length=1.5, tilt_deg=90.0)
        assert pipe.capillary_limit(T_OP) == 0.0

    def test_viscous_limit_grows_with_temperature(self, copper_water_hp):
        # Vapour pressure rises steeply: startup limit relaxes when hot.
        assert copper_water_hp.viscous_limit(350.0) \
            > copper_water_hp.viscous_limit(300.0)

    def test_sonic_limit_magnitude(self, copper_water_hp):
        # Sonic limit for a small water pipe at 60 degC: hundreds of watts.
        assert copper_water_hp.sonic_limit(T_OP) > 100.0


class TestResistance:
    def test_resistance_magnitude(self, copper_water_hp):
        # COTS 6 mm pipes: 0.1-1.5 K/W class.
        r = copper_water_hp.thermal_resistance(T_OP)
        assert 0.05 < r < 2.0

    def test_effective_conductivity_beats_copper(self, copper_water_hp):
        # The reason heat pipes exist: k_eff >> 398 W/m.K.
        assert copper_water_hp.effective_conductivity(T_OP) > 2000.0

    def test_temperature_drop_linear_in_power(self, copper_water_hp):
        dt10 = copper_water_hp.temperature_drop(10.0, T_OP)
        dt20 = copper_water_hp.temperature_drop(20.0, T_OP)
        assert dt20 == pytest.approx(2.0 * dt10)

    def test_overload_raises(self, copper_water_hp):
        q_max, name = copper_water_hp.max_heat_transport(T_OP)
        with pytest.raises(OperatingLimitError) as excinfo:
            copper_water_hp.temperature_drop(q_max * 1.1, T_OP)
        assert excinfo.value.limit_name == name

    def test_negative_power_rejected(self, copper_water_hp):
        with pytest.raises(InputError):
            copper_water_hp.check_operation(-1.0, T_OP)


class TestDesignBehaviour:
    def test_longer_pipe_carries_less(self):
        short = standard_copper_water_heatpipe(length=0.10)
        long = standard_copper_water_heatpipe(length=0.40)
        assert long.capillary_limit(T_OP) < short.capillary_limit(T_OP)

    def test_fatter_pipe_carries_more(self):
        thin = standard_copper_water_heatpipe(diameter=4e-3)
        fat = standard_copper_water_heatpipe(diameter=10e-3)
        assert fat.max_heat_transport(T_OP)[0] \
            > thin.max_heat_transport(T_OP)[0]

    def test_methanol_pipe_operates_cold(self):
        # Water freezes; methanol remains valid at -20 degC.
        geo = standard_copper_water_heatpipe().geometry
        wick = sintered_powder_wick(50e-6, 0.5, 398.0, 0.2)
        pipe = HeatPipe(geometry=geo, wick=wick,
                        fluid=WorkingFluid("methanol"))
        q_max, _name = pipe.max_heat_transport(253.15)
        assert q_max > 0.0

    def test_invalid_tilt(self):
        with pytest.raises(InputError):
            standard_copper_water_heatpipe(tilt_deg=120.0)

    def test_invalid_wall_conductivity(self):
        pipe = standard_copper_water_heatpipe()
        with pytest.raises(InputError):
            HeatPipe(geometry=pipe.geometry, wick=pipe.wick,
                     fluid=pipe.fluid, wall_conductivity=-1.0)
