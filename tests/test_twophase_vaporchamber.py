"""Tests for the flat vapor-chamber heat spreader."""

from dataclasses import replace

import pytest

from avipack.errors import InputError, OperatingLimitError
from avipack.twophase.vaporchamber import (
    VaporChamber,
    electronics_vapor_chamber,
)
from avipack.twophase.wick import sintered_necked_wick, \
    sintered_powder_wick

T_OP = 353.15  # 80 degC vapour


@pytest.fixture
def chamber():
    return electronics_vapor_chamber()


class TestEffectiveConductivity:
    def test_far_exceeds_copper(self, chamber):
        assert chamber.effective_conductivity(T_OP) > 5.0 * 398.0

    def test_capped_at_practical_ceiling(self, chamber):
        assert chamber.effective_conductivity(T_OP) \
            <= chamber.max_effective_conductivity

    def test_hotter_vapor_carries_more_or_caps(self, chamber):
        uncapped = replace(chamber, max_effective_conductivity=1e9)
        assert uncapped.effective_conductivity(360.0) \
            > uncapped.effective_conductivity(300.0)

    def test_thicker_vapor_gap_helps(self, chamber):
        uncapped = replace(chamber, max_effective_conductivity=1e9)
        thick = replace(uncapped, thickness=5e-3)
        assert thick.effective_conductivity(T_OP) \
            > uncapped.effective_conductivity(T_OP)


class TestLimits:
    def test_handles_100w_cm2(self, chamber):
        # The enabling number for the paper's hot-spot crisis.
        assert chamber.boiling_limit(1.0e-4) >= 100.0

    def test_capillary_generous(self, chamber):
        assert chamber.capillary_limit(T_OP) > chamber.boiling_limit(1e-4)

    def test_overload_raises(self, chamber):
        with pytest.raises(OperatingLimitError) as excinfo:
            chamber.check_operation(500.0, 1e-4, T_OP)
        assert excinfo.value.limit_name in ("boiling", "capillary")

    def test_within_limits_silent(self, chamber):
        chamber.check_operation(80.0, 1e-4, T_OP)


class TestSpreading:
    def test_beats_copper_spreader(self, chamber):
        assert chamber.improvement_over_copper(1e-4, T_OP) > 1.2

    def test_hotspot_delta_t_manageable(self, chamber):
        # 100 W on 1 cm2 through the chamber: tens of K, not thousands.
        delta_t = 100.0 * chamber.hotspot_resistance(1e-4, T_OP)
        assert delta_t < 30.0

    def test_smaller_source_higher_resistance(self, chamber):
        small = chamber.hotspot_resistance(0.25e-4, T_OP)
        large = chamber.hotspot_resistance(4e-4, T_OP)
        assert small > large

    def test_evaporator_stack_dominates(self, chamber):
        r_total = chamber.hotspot_resistance(1e-4, T_OP)
        r_stack = chamber.evaporator_stack_resistance(1e-4)
        assert r_stack > 0.5 * r_total

    def test_source_covering_chamber_rejected(self, chamber):
        with pytest.raises(InputError):
            chamber.hotspot_resistance(chamber.footprint_area, T_OP)


class TestConstruction:
    def test_no_vapor_space_rejected(self, chamber):
        with pytest.raises(InputError):
            replace(chamber, thickness=1.9e-3)  # walls+wicks = 2 mm

    def test_invalid_dimension(self, chamber):
        with pytest.raises(InputError):
            replace(chamber, length=-0.08)


class TestNeckedWick:
    def test_necked_beats_packed_conductivity(self):
        packed = sintered_powder_wick(40e-6, 0.55, 398.0, 0.63)
        necked = sintered_necked_wick(40e-6, 0.55, 398.0, 0.63)
        assert necked.conductivity_saturated \
            > 5.0 * packed.conductivity_saturated

    def test_necked_same_hydraulics(self):
        packed = sintered_powder_wick(40e-6, 0.55, 398.0, 0.63)
        necked = sintered_necked_wick(40e-6, 0.55, 398.0, 0.63)
        assert necked.permeability == pytest.approx(packed.permeability)
        assert necked.effective_pore_radius \
            == pytest.approx(packed.effective_pore_radius)

    def test_copper_water_literature_band(self):
        # Sintered Cu/water wicks measure ~30-50 W/m.K saturated.
        necked = sintered_necked_wick(40e-6, 0.55, 398.0, 0.63)
        assert 20.0 < necked.conductivity_saturated < 60.0
