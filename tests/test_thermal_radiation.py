"""Tests for view factors and gray-body radiation exchange."""

import numpy as np
import pytest

from avipack.errors import InputError
from avipack.thermal.radiation import (
    enclosure_exchange_factor,
    linearized_radiation_coefficient,
    radiation_conductance,
    solve_radiosity,
    view_factor_parallel_plates,
    view_factor_perpendicular_plates,
)
from avipack.units import STEFAN_BOLTZMANN


class TestViewFactors:
    def test_parallel_plates_bounds(self):
        f = view_factor_parallel_plates(0.1, 0.1, 0.05)
        assert 0.0 < f < 1.0

    def test_parallel_plates_close_approach_unity(self):
        f = view_factor_parallel_plates(1.0, 1.0, 0.001)
        assert f > 0.99

    def test_parallel_plates_far_approach_zero(self):
        f = view_factor_parallel_plates(0.1, 0.1, 10.0)
        assert f < 0.01

    def test_parallel_plates_textbook_value(self):
        # X = Y = 1 (square plates, gap = side): F ~ 0.1998 (Incropera).
        f = view_factor_parallel_plates(0.1, 0.1, 0.1)
        assert f == pytest.approx(0.1998, rel=0.01)

    def test_perpendicular_bounds(self):
        f = view_factor_perpendicular_plates(0.1, 0.1, 0.1)
        assert 0.0 < f < 0.5

    def test_perpendicular_textbook_value(self):
        # Equal squares sharing an edge: F ~ 0.2 (Incropera chart).
        f = view_factor_perpendicular_plates(1.0, 1.0, 1.0)
        assert f == pytest.approx(0.2, abs=0.02)

    def test_invalid_dimensions(self):
        with pytest.raises(InputError):
            view_factor_parallel_plates(-0.1, 0.1, 0.1)


class TestEnclosureFactor:
    def test_black_surfaces_give_unity(self):
        assert enclosure_exchange_factor(1.0, 1.0, 0.1, 1.0) \
            == pytest.approx(1.0)

    def test_gray_below_body_emissivity(self):
        f = enclosure_exchange_factor(0.8, 0.9, 0.1, 1.0)
        assert f < 0.8

    def test_large_enclosure_approaches_body_emissivity(self):
        f = enclosure_exchange_factor(0.8, 0.5, 0.01, 100.0)
        assert f == pytest.approx(0.8, rel=0.01)

    def test_body_larger_than_enclosure_rejected(self):
        with pytest.raises(InputError):
            enclosure_exchange_factor(0.8, 0.8, 2.0, 1.0)

    def test_invalid_emissivity(self):
        with pytest.raises(InputError):
            enclosure_exchange_factor(0.0, 0.8, 0.1, 1.0)


class TestRadiosity:
    def _two_plate_system(self, eps1, eps2, t1, t2):
        # Two infinite-ish parallel plates closed by a perfect mirror is
        # awkward; instead use the two-surface enclosure: body inside shell.
        a1, a2 = 0.1, 0.5
        f = np.array([[0.0, 1.0], [a1 / a2, 1.0 - a1 / a2]])
        return solve_radiosity([a1, a2], [eps1, eps2], f, [t1, t2])

    def test_net_exchange_conserves_energy(self):
        q = self._two_plate_system(0.8, 0.6, 400.0, 300.0)
        assert q[0] + q[1] == pytest.approx(0.0, abs=1e-9)

    def test_hot_body_emits(self):
        q = self._two_plate_system(0.8, 0.6, 400.0, 300.0)
        assert q[0] > 0.0

    def test_matches_two_surface_formula(self):
        a1, a2 = 0.1, 0.5
        eps1, eps2, t1, t2 = 0.8, 0.6, 400.0, 300.0
        q = self._two_plate_system(eps1, eps2, t1, t2)
        factor = enclosure_exchange_factor(eps1, eps2, a1, a2)
        expected = factor * a1 * STEFAN_BOLTZMANN * (t1 ** 4 - t2 ** 4)
        assert q[0] == pytest.approx(expected, rel=1e-6)

    def test_equal_temperatures_no_exchange(self):
        q = self._two_plate_system(0.8, 0.6, 350.0, 350.0)
        assert np.allclose(q, 0.0, atol=1e-9)

    def test_row_sum_validated(self):
        f = np.array([[0.0, 0.5], [0.2, 0.8]])
        with pytest.raises(InputError):
            solve_radiosity([0.1, 0.5], [0.8, 0.6], f, [400.0, 300.0])

    def test_reciprocity_validated(self):
        f = np.array([[0.0, 1.0], [0.5, 0.5]])  # violates A1F12 = A2F21
        with pytest.raises(InputError):
            solve_radiosity([0.1, 0.5], [0.8, 0.6], f, [400.0, 300.0])


class TestLinearised:
    def test_conductance_matches_exact_exchange(self):
        g = radiation_conductance(0.1, 0.8)
        t1, t2 = 380.0, 300.0
        exact = 0.8 * 0.1 * STEFAN_BOLTZMANN * (t1 ** 4 - t2 ** 4)
        assert g(t1, t2) * (t1 - t2) == pytest.approx(exact, rel=1e-12)

    def test_coefficient_magnitude_room_temperature(self):
        # eps=0.9 near 300 K: h_r ~ 5.5 W/m2K.
        h = linearized_radiation_coefficient(0.9, 310.0, 293.0)
        assert h == pytest.approx(5.6, rel=0.1)

    def test_coefficient_grows_with_temperature(self):
        assert linearized_radiation_coefficient(0.9, 500.0, 300.0) \
            > linearized_radiation_coefficient(0.9, 310.0, 300.0)

    def test_invalid_emissivity(self):
        with pytest.raises(InputError):
            linearized_radiation_coefficient(1.2, 310.0, 300.0)

    def test_invalid_exchange_factor(self):
        with pytest.raises(InputError):
            radiation_conductance(0.1, 1.5)
