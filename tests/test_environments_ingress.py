"""Tests for ingress-protection / sealing constraints and the CLI."""

import pytest

from avipack.environments.ingress import (
    SealingLevel,
    assess_sealing,
    compatible_techniques,
    required_sealing,
    seb_zone_explains_passive_choice,
    technique_compatible,
)
from avipack.errors import InputError
from avipack.packaging.cooling import CoolingTechnique


class TestZones:
    def test_bay_needs_no_sealing(self):
        assert required_sealing("avionics_bay") is SealingLevel.NONE

    def test_cabin_seat_dust_protected(self):
        assert required_sealing("cabin_seat") \
            is SealingLevel.DUST_PROTECTED

    def test_external_worst(self):
        assert required_sealing("unpressurised") \
            is SealingLevel.IMMERSION

    def test_unknown_zone(self):
        with pytest.raises(InputError):
            required_sealing("engine_core")


class TestCompatibility:
    def test_direct_air_only_in_open_bay(self):
        assert technique_compatible(CoolingTechnique.DIRECT_AIR_FLOW,
                                    SealingLevel.NONE)
        assert not technique_compatible(
            CoolingTechnique.DIRECT_AIR_FLOW,
            SealingLevel.DUST_PROTECTED)

    def test_washed_shell_survives_dust(self):
        assert technique_compatible(CoolingTechnique.AIR_FLOW_AROUND,
                                    SealingLevel.DUST_TIGHT)
        assert not technique_compatible(
            CoolingTechnique.AIR_FLOW_AROUND, SealingLevel.SPLASH_PROOF)

    def test_sealed_techniques_always_work(self):
        for technique in (CoolingTechnique.FREE_CONVECTION,
                          CoolingTechnique.CONDUCTION_COOLED,
                          CoolingTechnique.LIQUID_FLOW_THROUGH):
            assert technique_compatible(technique,
                                        SealingLevel.IMMERSION)

    def test_string_values_accepted(self):
        # The string form is what crosses the package boundary.
        assert not technique_compatible("direct_air_flow",
                                        SealingLevel.DUST_TIGHT)

    def test_compatible_set_shrinks_with_severity(self):
        bay = compatible_techniques("avionics_bay")
        seat = compatible_techniques("cabin_seat")
        external = compatible_techniques("unpressurised")
        assert len(external) <= len(seat) <= len(bay)
        assert CoolingTechnique.DIRECT_AIR_FLOW in bay
        assert CoolingTechnique.DIRECT_AIR_FLOW not in seat


class TestAssessment:
    def test_surcharge_tracks_level(self):
        mild = assess_sealing("avionics_bay",
                              CoolingTechnique.FREE_CONVECTION)
        severe = assess_sealing("unpressurised",
                                CoolingTechnique.FREE_CONVECTION)
        assert severe.complexity_surcharge > mild.complexity_surcharge

    def test_cosee_logic_holds(self):
        # The model agrees with the paper's reasoning for going passive.
        assert seb_zone_explains_passive_choice()


class TestCli:
    def test_default_runs(self, capsys):
        from avipack.__main__ import main

        assert main([]) == 0
        output = capsys.readouterr().out
        assert "Fig. 10" in output
        assert "capability increase" in output

    def test_subcommands(self, capsys):
        from avipack.__main__ import main

        assert main(["nanopack"]) == 0
        assert "NANOPACK" in capsys.readouterr().out
        assert main(["qual"]) == 0
        assert "QUALIFICATION" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        from avipack.__main__ import main

        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_help(self, capsys):
        from avipack.__main__ import main

        assert main(["--help"]) == 0
        assert "Usage" in capsys.readouterr().out


class TestZoneAwareSelection:
    def test_seb_case_derives_lhp(self):
        """The headline: the COSEE architecture falls out of the model."""
        from avipack.core.selector import (
            Architecture,
            ThermalRequirement,
            select_for_zone,
        )

        requirement = ThermalRequirement(module_power=40.0,
                                         peak_flux_w_cm2=3.0,
                                         transport_distance=0.6)
        assert select_for_zone("cabin_seat", requirement) \
            is Architecture.LOOP_HEAT_PIPE

    def test_bay_keeps_forced_air(self):
        from avipack.core.selector import (
            Architecture,
            ThermalRequirement,
            select_for_zone,
        )

        requirement = ThermalRequirement(module_power=40.0,
                                         peak_flux_w_cm2=3.0)
        assert select_for_zone("avionics_bay", requirement) \
            is Architecture.FORCED_AIR

    def test_low_power_seat_box_stays_passive(self):
        from avipack.core.selector import (
            Architecture,
            ThermalRequirement,
            select_for_zone,
        )

        requirement = ThermalRequirement(module_power=15.0,
                                         peak_flux_w_cm2=1.0,
                                         transport_distance=0.1)
        assert select_for_zone("cabin_seat", requirement) \
            is Architecture.FREE_CONVECTION

    def test_unknown_zone_rejected(self):
        from avipack.core.selector import (
            ThermalRequirement,
            select_for_zone,
        )
        from avipack.errors import InputError

        with pytest.raises(InputError):
            select_for_zone("flight_deck_window",
                            ThermalRequirement(module_power=10.0))
