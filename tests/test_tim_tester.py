"""Tests for the virtual ASTM D5470 tester and four-wire ohmmeter."""

import pytest

from avipack.errors import InputError
from avipack.tim.interface import ThermalInterface
from avipack.tim.tester import D5470Tester, FourWireOhmmeter


def sample_series(conductivity=9.5, contact=1e-6,
                  blts=(15e-6, 30e-6, 60e-6, 120e-6, 200e-6)):
    return [ThermalInterface(conductivity, blt, contact, 6.45e-4)
            for blt in blts]


class TestMeasurement:
    def test_measurement_near_truth(self):
        tester = D5470Tester(seed=1)
        iface = sample_series()[2]
        reading = tester.measure(iface)
        assert reading.specific_resistance == pytest.approx(
            iface.specific_resistance, abs=4e-6)  # 4 sigma of +/-1 K.mm2/W

    def test_noise_is_repeatable_with_seed(self):
        r1 = D5470Tester(seed=42).measure(sample_series()[0])
        r2 = D5470Tester(seed=42).measure(sample_series()[0])
        assert r1.specific_resistance == r2.specific_resistance

    def test_different_seeds_differ(self):
        r1 = D5470Tester(seed=1).measure(sample_series()[0])
        r2 = D5470Tester(seed=2).measure(sample_series()[0])
        assert r1.specific_resistance != r2.specific_resistance

    def test_hot_face_above_cold(self):
        reading = D5470Tester().measure(sample_series()[0])
        assert reading.hot_face_temperature \
            > reading.cold_face_temperature

    def test_noiseless_tester_exact(self):
        tester = D5470Tester(resistance_accuracy_kmm2=0.0,
                             thickness_accuracy=0.0)
        iface = sample_series()[1]
        reading = tester.measure(iface)
        assert reading.specific_resistance == pytest.approx(
            iface.specific_resistance, rel=1e-12)
        assert reading.bond_line_thickness == pytest.approx(
            iface.bond_line_thickness, rel=1e-12)

    def test_invalid_flux(self):
        with pytest.raises(InputError):
            D5470Tester().measure(sample_series()[0], heat_flux=-1.0)


class TestCharacterization:
    def test_recovers_conductivity_within_accuracy(self):
        # NANOPACK tester claims +/-1 K.mm2/W: with 5 thicknesses x 5
        # repeats, the fitted conductivity should land within ~15%.
        result = D5470Tester(seed=3).characterize(sample_series(),
                                                  n_repeats=5)
        assert result.conductivity == pytest.approx(9.5, rel=0.20)

    def test_recovers_contact_resistance_sign(self):
        result = D5470Tester(seed=3).characterize(
            sample_series(contact=5e-6), n_repeats=5)
        assert result.contact_resistance >= 0.0
        assert result.contact_resistance_kmm2 < 15.0

    def test_noiseless_fit_exact(self):
        tester = D5470Tester(resistance_accuracy_kmm2=0.0,
                             thickness_accuracy=0.0)
        result = tester.characterize(sample_series(conductivity=20.0,
                                                   contact=2e-6))
        assert result.conductivity == pytest.approx(20.0, rel=1e-6)
        assert result.contact_resistance == pytest.approx(2e-6, rel=1e-6)

    def test_single_thickness_rejected(self):
        with pytest.raises(InputError):
            D5470Tester().characterize(sample_series()[:1])

    def test_sample_count_recorded(self):
        result = D5470Tester().characterize(sample_series(), n_repeats=2)
        assert result.n_samples == 10


class TestFourWire:
    def test_measures_above_floor(self):
        meter = FourWireOhmmeter(seed=5)
        # rho*L/A = 1e-6 * 0.01 / 1e-7 = 1e-1 Ohm >> floor.
        reading = meter.measure(1e-6, 0.01, 1e-7)
        assert reading == pytest.approx(0.1, rel=0.01)

    def test_below_floor_rejected(self):
        meter = FourWireOhmmeter()
        with pytest.raises(InputError):
            meter.measure(1e-8, 0.001, 1e-4)

    def test_repeatable(self):
        r1 = FourWireOhmmeter(seed=9).measure(1e-6, 0.01, 1e-7)
        r2 = FourWireOhmmeter(seed=9).measure(1e-6, 0.01, 1e-7)
        assert r1 == r2

    def test_invalid_sample(self):
        with pytest.raises(InputError):
            FourWireOhmmeter().measure(-1e-6, 0.01, 1e-7)
