"""Solver cache semantics and the stable content fingerprint."""

import threading

import numpy as np
import pytest

from avipack.fingerprint import stable_fingerprint
from avipack.packaging.cooling import CoolingTechnique, ModuleEnvelope
from avipack.sweep import DEFAULT_WORKER_CACHE_MAX_ENTRIES, CacheStats, \
    SolverCache, worker_cache


class TestSolverCache:
    def test_miss_then_hit(self):
        cache = SolverCache()
        calls = []
        value = cache.get_or_compute("k", lambda: calls.append(1) or 41)
        again = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert value == again == 41
        assert calls == [1]
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1
        assert "k" in cache

    def test_stats_snapshot(self):
        cache = SolverCache()
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        stats = cache.stats()
        assert stats == CacheStats(hits=1, misses=2, entries=2)
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(1.0 / 3.0)

    def test_clear_resets_everything(self):
        cache = SolverCache()
        cache.get_or_compute("a", lambda: 1)
        cache.clear()
        assert cache.stats() == CacheStats(hits=0, misses=0, entries=0)
        assert "a" not in cache

    def test_max_entries_bounds_the_store(self):
        cache = SolverCache(max_entries=1)
        assert cache.get_or_compute("a", lambda: 1) == 1
        assert cache.get_or_compute("b", lambda: 2) == 2
        assert len(cache) == 1
        # "b" was not retained but its value still came back correct.
        assert "b" not in cache

    def test_thread_safety_single_flight_counters(self):
        cache = SolverCache()
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for i in range(100):
                cache.get_or_compute(i % 10, lambda i=i: i % 10)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        assert stats.lookups == 800
        assert stats.entries == 10

    def test_worker_cache_is_a_process_singleton(self):
        assert worker_cache() is worker_cache()

    def test_worker_cache_is_bounded_by_default(self):
        # An unbounded per-worker store would grow for the lifetime of
        # the pool process; the default caps it.
        assert worker_cache().max_entries \
            == DEFAULT_WORKER_CACHE_MAX_ENTRIES

    def test_stats_report_the_bound(self):
        bounded = SolverCache(max_entries=3)
        assert bounded.stats().max_entries == 3
        assert SolverCache().stats().max_entries is None

    def test_merged_stats_add_counters(self):
        merged = CacheStats(1, 2, 3).merged(CacheStats(10, 20, 30))
        assert merged == CacheStats(11, 22, 33)

    def test_merged_stats_keep_the_configured_bound(self):
        # Workers share one configured bound; the merge keeps the first
        # non-None value rather than inventing a combined one.
        merged = CacheStats(1, 2, 3).merged(
            CacheStats(1, 1, 1, max_entries=5))
        assert merged.max_entries == 5
        assert CacheStats(0, 0, 0, max_entries=7).merged(
            CacheStats(0, 0, 0)).max_entries == 7

    def test_empty_stats_hit_rate_zero(self):
        assert CacheStats(0, 0, 0).hit_rate == 0.0


class TestStableFingerprint:
    def test_deterministic_across_calls(self):
        assert stable_fingerprint(1, "a", 2.5) == stable_fingerprint(1, "a", 2.5)

    def test_type_tagged(self):
        # 1 (int) vs 1.0 (float) vs "1" (str) vs True must all differ.
        prints = {stable_fingerprint(v) for v in (1, 1.0, "1", True)}
        assert len(prints) == 4

    def test_order_sensitive_sequences(self):
        assert stable_fingerprint([1, 2]) != stable_fingerprint([2, 1])

    def test_dict_order_insensitive(self):
        assert (stable_fingerprint({"a": 1, "b": 2})
                == stable_fingerprint({"b": 2, "a": 1}))

    def test_ndarray_content_hashed(self):
        a = np.arange(6, dtype=float).reshape(2, 3)
        b = np.arange(6, dtype=float).reshape(2, 3)
        c = np.arange(6, dtype=float).reshape(3, 2)
        assert stable_fingerprint(a) == stable_fingerprint(b)
        assert stable_fingerprint(a) != stable_fingerprint(c)

    def test_dataclass_fields_hashed(self):
        a = ModuleEnvelope()
        b = ModuleEnvelope()
        c = ModuleEnvelope(board_length=0.123)
        assert stable_fingerprint(a) == stable_fingerprint(b)
        assert stable_fingerprint(a) != stable_fingerprint(c)

    def test_enum_identity(self):
        assert (stable_fingerprint(CoolingTechnique.DIRECT_AIR_FLOW)
                == stable_fingerprint(CoolingTechnique.DIRECT_AIR_FLOW))
        assert (stable_fingerprint(CoolingTechnique.DIRECT_AIR_FLOW)
                != stable_fingerprint(CoolingTechnique.FREE_CONVECTION))

    def test_none_is_distinct(self):
        assert stable_fingerprint(None) != stable_fingerprint(0)
        assert stable_fingerprint(None) != stable_fingerprint("")
