"""Service-side retention: governor passes, eviction, disk_low admission.

A real :class:`~avipack.service.ThreadedService` exercised through the
real client: the ``retention`` op compacts finished jobs in place, the
policy clauses evict exactly their victims, a latched disk budget
refuses *new* submissions with the structured ``disk_low`` code while
every read path keeps serving, and both ``finished_wall`` and the
``compacted`` flag survive a restart.
"""

import json
import os
import shutil
import tempfile
import time

import pytest

from avipack import perf
from avipack.errors import InputError, ServiceError
from avipack.retention import RetentionPolicy
from avipack.service import (
    ServiceClient,
    ServiceConfig,
    SweepService,
    ThreadedService,
)

#: One-candidate space variants: jobs finish in one solve.
def axes_for(power):
    return {"power_per_module": [power], "cooling": ["direct_air_flow"]}


@pytest.fixture()
def sockets():
    sock_dir = tempfile.mkdtemp(prefix="avisvc", dir="/tmp")
    yield sock_dir
    shutil.rmtree(sock_dir, ignore_errors=True)


def make_config(sockets, tmp_path, name="a", **overrides):
    defaults = dict(
        socket_path=os.path.join(sockets, f"{name}.sock"),
        journal_dir=str(tmp_path / "jobs"),
        parallel=False,
        heartbeat_s=0.1,
        stall_timeout_s=60.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def run_one_job(client, power=8.0):
    job_id = client.submit(axes=axes_for(power))["job_id"]
    final = client.wait(job_id, timeout_s=120.0)
    assert final["state"] == "completed"
    return job_id


def read_manifest(tmp_path, job_id, state="completed"):
    """The job's manifest once it reflects ``state``.

    The terminal event streams *before* the manifest rewrite lands, so
    a client returning from ``wait`` can observe the previous manifest
    for a moment; poll past that window.
    """
    path = tmp_path / "jobs" / f"{job_id}.manifest.json"
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        manifest = json.loads(path.read_text())
        if manifest["state"] == state:
            return manifest
        time.sleep(0.01)
    raise AssertionError(f"manifest for {job_id} never reached {state}")


class TestRetentionOp:
    def test_compacts_finished_jobs_once(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = run_one_job(client)
            journal = tmp_path / "jobs" / f"{job_id}.journal.jsonl"
            assert len(journal.read_bytes().splitlines()) > 1

            summary = client.retention()
            assert summary["trigger"] == "request"
            assert job_id in summary["compacted"]
            assert summary["evicted"] == []
            assert summary["bytes_reclaimed"] > 0
            # The journal folded to its checkpoint; results/status
            # still serve from the compacted artefacts.
            assert len(journal.read_bytes().splitlines()) == 1
            assert client.status(job_id)["state"] == "completed"
            assert client.results(job_id, k=1)["top"]

            # Compaction is once per job: the next pass skips it.
            again = client.retention()
            assert again["compacted"] == []

            payload = client.stats()
            assert payload["stats"]["retention_passes"] >= 2
            assert payload["stats"]["compacted_jobs"] == 1
            assert payload["disk"]["disk_low"] is False
            assert payload["disk"]["usage_bytes"] is None  # no budget

    def test_active_jobs_are_never_touched(self, sockets, tmp_path):
        config = make_config(
            sockets, tmp_path, throttle_s=0.2,
            retention=RetentionPolicy(keep_last_n=0, max_age_s=0.0))
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = client.submit(axes={
                "power_per_module": [8.0, 12.0, 16.0, 20.0],
                "cooling": ["direct_air_flow"]})["job_id"]
            summary = client.retention()
            assert job_id not in summary["compacted"]
            assert job_id not in summary["evicted"]
            client.cancel(job_id)


class TestEvictionPolicies:
    def test_keep_last_n_evicts_oldest_finished(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path,
                             retention=RetentionPolicy(keep_last_n=1))
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            first = run_one_job(client, power=8.0)
            second = run_one_job(client, power=12.0)

            summary = client.retention()
            assert summary["evicted"] == [first]
            assert summary["bytes_reclaimed"] > 0
            # Every on-disk artefact of the victim is gone...
            leftovers = [name for name
                         in os.listdir(tmp_path / "jobs")
                         if name.startswith(first + ".")]
            assert leftovers == []
            # ...the survivor still serves...
            assert client.status(second)["state"] == "completed"
            assert client.results(second, k=1)["top"]
            # ...and the victim is unknown, structurally.
            with pytest.raises(ServiceError) as excinfo:
                client.status(first)
            assert excinfo.value.code == "unknown_job"
            assert client.stats()["stats"]["evicted_jobs"] == 1

    def test_max_age_evicts_expired_finished_jobs(self, sockets,
                                                  tmp_path):
        config = make_config(
            sockets, tmp_path,
            retention=RetentionPolicy(max_age_s=0.05))
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = run_one_job(client)
            time.sleep(0.1)
            assert client.retention()["evicted"] == [job_id]

    def test_max_bytes_evicts_oldest_beyond_budget(self, sockets,
                                                   tmp_path):
        config = make_config(sockets, tmp_path,
                             retention=RetentionPolicy(max_bytes=0))
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = run_one_job(client)
            assert client.retention()["evicted"] == [job_id]

    def test_unbounded_policy_never_evicts(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path)  # default policy
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = run_one_job(client)
            assert client.retention()["evicted"] == []
            assert client.status(job_id)["state"] == "completed"


class TestDiskBudget:
    def test_disk_low_refuses_submissions_while_queries_serve(
            self, sockets, tmp_path):
        # A 1-byte high watermark the first journal write exceeds
        # forever: retention can never reclaim below it, so the latch
        # must hold and only *admission* may degrade.
        config = make_config(sockets, tmp_path,
                             disk_high_watermark_bytes=1,
                             disk_low_watermark_bytes=0,
                             disk_poll_s=0.05)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = run_one_job(client, power=8.0)

            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                disk = client.stats()["disk"]
                if disk["disk_low"]:
                    break
                time.sleep(0.02)
            assert disk["disk_low"] is True
            assert disk["usage_bytes"] >= 1
            assert disk["high_watermark_bytes"] == 1

            with pytest.raises(ServiceError) as excinfo:
                client.submit(axes=axes_for(12.0))
            assert excinfo.value.code == "disk_low"
            assert perf.counter("retention.disk_low_refusals") >= 1

            # Degraded means degraded — not down: every read path and
            # the refusal itself keep answering.
            assert client.ping()["pong"] is True
            assert client.status(job_id)["state"] == "completed"
            assert client.results(job_id, k=1)["top"]
            assert any(job["job_id"] == job_id
                       for job in client.jobs())
            stats = client.stats()["stats"]
            assert stats["rejected"].get("disk_low", 0) >= 1

    def test_watermark_breach_triggers_retention_passes(
            self, sockets, tmp_path):
        config = make_config(sockets, tmp_path,
                             disk_high_watermark_bytes=1,
                             disk_poll_s=0.05)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = run_one_job(client)
            journal = tmp_path / "jobs" / f"{job_id}.journal.jsonl"
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if client.stats()["stats"]["compacted_jobs"] >= 1:
                    break
                time.sleep(0.02)
            # The governor compacted the finished job on its own.
            assert client.stats()["stats"]["compacted_jobs"] >= 1
            assert len(journal.read_bytes().splitlines()) == 1


class TestPersistence:
    def test_finished_wall_and_compacted_survive_restart(
            self, sockets, tmp_path):
        config = make_config(sockets, tmp_path)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = run_one_job(client)
            manifest = read_manifest(tmp_path, job_id)
            assert manifest["finished_wall"] > 0
            assert manifest["compacted"] is False
            client.retention()
            assert read_manifest(tmp_path, job_id)["compacted"] is True

        config2 = make_config(sockets, tmp_path, name="b")
        with ThreadedService(config2):
            client2 = ServiceClient(config2.socket_path)
            assert client2.status(job_id)["state"] == "completed"
            # The restarted server remembers the compaction: the job
            # is not folded a second time.
            assert client2.retention()["compacted"] == []
            assert client2.results(job_id, k=1)["top"]


class TestConfigValidation:
    def test_disk_poll_must_be_positive(self, sockets, tmp_path):
        with pytest.raises(InputError):
            SweepService(make_config(sockets, tmp_path, disk_poll_s=0.0))

    def test_watermark_pair_is_validated(self, sockets, tmp_path):
        with pytest.raises(InputError):
            SweepService(make_config(sockets, tmp_path,
                                     disk_high_watermark_bytes=10,
                                     disk_low_watermark_bytes=20))
