"""Cross-module integration tests: full workflows end to end."""

import pytest

from avipack import (
    FrequencyAllocation,
    PackagingSpecification,
    SeatElectronicsBox,
    SebConfiguration,
    run_campaign,
    run_design_procedure,
)
from avipack.core.report import (
    render_design_document,
    render_qualification_report,
)
from avipack.environments.profiles import cosee_campaign
from avipack.experiments.cosee import measure_claims, seb_under_test
from avipack.packaging.component import make_component
from avipack.packaging.module import Module
from avipack.packaging.pcb import Pcb, dummy_resistive_pcb
from avipack.packaging.rack import Rack
from avipack.reliability.mtbf import PartReliability, predict_mtbf
from avipack.thermal.transient import TransientNetworkSolver, ramp_profile
from avipack.units import celsius_to_kelvin


def avionics_rack():
    rack = Rack("avionics_unit")
    for index in range(2):
        board = Pcb(0.16, 0.1, n_copper_layers=8, copper_coverage=0.7)
        board.place(make_component(f"cpu{index}", "bga_35mm", 3.0,
                                   (0.08, 0.05)))
        board.place(make_component(f"reg{index}", "to_220", 2.0,
                                   (0.04, 0.03)))
        rack.add_module(Module(f"board{index + 1}", pcb=board))
    return rack


class TestFullDesignFlow:
    def test_design_to_document_to_reliability(self):
        """Spec -> design procedure -> document -> MTBF, end to end."""
        spec = PackagingSpecification(
            "ifu_computer",
            frequency_allocation=FrequencyAllocation(100.0, 2000.0))
        parts = [
            PartReliability("cpu0", 150.0, 0.5, quality="full_mil"),
            PartReliability("reg0", 100.0, quality="full_mil"),
            PartReliability("cpu1", 150.0, 0.5, quality="full_mil"),
            PartReliability("reg1", 100.0, quality="full_mil"),
        ]
        review = run_design_procedure(avionics_rack(), spec, parts=parts)
        assert review.compliant
        assert review.mtbf_hours is not None
        document = render_design_document(review)
        assert "MTBF" in document
        # The MTBF printed comes from the level-3 junctions.
        junctions = {}
        for level3 in review.thermal.level3.values():
            junctions.update(level3.junction_temperatures)
        direct = predict_mtbf(parts, junctions)
        assert review.mtbf_hours == pytest.approx(direct.mtbf_hours)


class TestCoseeEndToEnd:
    def test_claims_plus_qualification(self):
        """The complete COSEE story: thermal gains AND qualification."""
        claims = measure_claims()
        assert claims.capability_with_lhp > 2.0 \
            * claims.capability_without_lhp
        report = run_campaign(seb_under_test(power=40.0),
                              cosee_campaign())
        assert report.passed
        text = render_qualification_report(report)
        assert "PASS" in text

    def test_seb_transient_startup(self, seb, seb_lhp):
        """Power-on transient of the SEB reaches its steady solution."""
        steady = seb.solve(40.0, seb_lhp)
        network = seb.build_network(40.0, seb_lhp)
        solver = TransientNetworkSolver(network)
        result = solver.integrate(duration=4.0 * 3600.0, time_step=30.0,
                                  initial_temperature=seb_lhp.ambient)
        assert result.final("pcb") == pytest.approx(
            steady.pcb_temperature, abs=1.5)

    def test_seb_cabin_heatup(self, seb, seb_lhp):
        """Cabin ambient ramp drags the SEB up with thermal lag."""
        network = seb.build_network(40.0, seb_lhp)
        ramp = ramp_profile(celsius_to_kelvin(20.0),
                            celsius_to_kelvin(40.0), ramp_rate=0.05)
        solver = TransientNetworkSolver(
            network, boundary_schedules={"ambient": ramp})
        result = solver.integrate(duration=3.0 * 3600.0, time_step=30.0,
                                  initial_temperature=celsius_to_kelvin(
                                      20.0))
        # Final pcb temperature reflects the new 40 degC ambient.
        assert result.final("pcb") > celsius_to_kelvin(40.0)


class TestDummyPcbInSeb:
    def test_dummy_board_junctions_from_seb_solution(self, seb, seb_lhp):
        """Level-3 style: hand the SEB pcb-node temperature down to the
        dummy resistive board's resistor junctions."""
        solution = seb.solve(40.0, seb_lhp)
        board = dummy_resistive_pcb(0.26, 0.16, 40.0, n_resistors=6)
        for component in board.components:
            junction = component.junction_temperature(
                solution.pcb_temperature)
            # Resistor junctions stay under 155 degC even at capability.
            assert junction < celsius_to_kelvin(155.0)

    def test_lhp_failure_mode_detected(self, seb):
        """With the LHPs disconnected (natural cooling), 100 W is not a
        legal operating point: the PCB exceeds any sane limit."""
        natural = SebConfiguration(cooling="natural")
        solution = seb.solve(100.0, natural)
        assert solution.pcb_temperature > celsius_to_kelvin(120.0)


class TestPublicApi:
    def test_repro_shim_exports(self):
        import repro

        assert repro.SeatElectronicsBox is SeatElectronicsBox
        assert hasattr(repro, "run_design_procedure")
        assert hasattr(repro.experiments, "fig10_curves")

    def test_top_level_exports(self):
        import avipack

        for name in avipack.__all__:
            assert hasattr(avipack, name), name
