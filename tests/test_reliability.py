"""Tests for the reliability (MTBF) prediction models."""

import pytest

from avipack.errors import InputError
from avipack.reliability.mtbf import (
    PartReliability,
    fan_reliability_penalty,
    mtbf_improvement_factor,
    predict_mtbf,
)
from avipack.units import celsius_to_kelvin


@pytest.fixture
def parts():
    return [
        PartReliability("cpu", base_failure_rate_fit=400.0,
                        activation_energy_ev=0.5),
        PartReliability("fpga", base_failure_rate_fit=300.0),
        PartReliability("power", base_failure_rate_fit=600.0,
                        quality="full_mil"),
    ]


def junctions(temp_c):
    t = celsius_to_kelvin(temp_c)
    return {"cpu": t, "fpga": t, "power": t}


class TestArrhenius:
    def test_unity_at_reference(self):
        part = PartReliability("p", 100.0)
        assert part.temperature_factor(celsius_to_kelvin(40.0)) \
            == pytest.approx(1.0)

    def test_acceleration_with_temperature(self):
        part = PartReliability("p", 100.0, activation_energy_ev=0.5)
        # 0.5 eV from 40 to 100 degC: ~15-20x acceleration.
        factor = part.temperature_factor(celsius_to_kelvin(100.0))
        assert 10.0 < factor < 30.0

    def test_cooling_decelerates(self):
        part = PartReliability("p", 100.0)
        assert part.temperature_factor(celsius_to_kelvin(20.0)) < 1.0

    def test_higher_activation_stronger_effect(self):
        mild = PartReliability("p", 100.0, activation_energy_ev=0.3)
        steep = PartReliability("p", 100.0, activation_energy_ev=0.7)
        t_hot = celsius_to_kelvin(100.0)
        assert steep.temperature_factor(t_hot) \
            > mild.temperature_factor(t_hot)

    def test_cots_quality_penalty(self):
        # The paper's COTS concern: commercial parts predict worse.
        mil = PartReliability("p", 100.0, quality="full_mil")
        cots = PartReliability("p", 100.0, quality="commercial_cots")
        t = celsius_to_kelvin(60.0)
        env = "airborne_inhabited_cargo"
        assert cots.failure_rate_fit(t, env) \
            == pytest.approx(5.0 * mil.failure_rate_fit(t, env))

    def test_unknown_environment(self):
        part = PartReliability("p", 100.0)
        with pytest.raises(InputError):
            part.failure_rate_fit(350.0, "submarine")

    def test_invalid_quality(self):
        with pytest.raises(InputError):
            PartReliability("p", 100.0, quality="hobbyist")


class TestPrediction:
    def test_40k_hour_class(self, parts):
        # Well cooled avionics: the paper's "typical MTBF ... about
        # 40,000 h" must be achievable with this parts list.
        prediction = predict_mtbf(parts, junctions(60.0))
        assert 10_000.0 < prediction.mtbf_hours < 200_000.0

    def test_hot_junctions_kill_mtbf(self, parts):
        cool = predict_mtbf(parts, junctions(60.0))
        hot = predict_mtbf(parts, junctions(120.0))
        assert hot.mtbf_hours < cool.mtbf_hours / 3.0

    def test_junction_over_125_flagged(self, parts):
        prediction = predict_mtbf(parts, junctions(130.0))
        assert prediction.derating_violations
        assert not prediction.compliant_40k

    def test_ambient_over_85_flagged(self, parts):
        prediction = predict_mtbf(parts, junctions(60.0),
                                  ambient_temperature=celsius_to_kelvin(
                                      90.0))
        assert any("ambient" in v for v in prediction.derating_violations)

    def test_missing_junction_rejected(self, parts):
        with pytest.raises(InputError):
            predict_mtbf(parts, {"cpu": 350.0})

    def test_per_part_rates_sum(self, parts):
        prediction = predict_mtbf(parts, junctions(60.0))
        assert sum(prediction.per_part_fit.values()) \
            == pytest.approx(prediction.total_failure_rate_fit)

    def test_empty_parts_rejected(self):
        with pytest.raises(InputError):
            predict_mtbf([], {})


class TestImprovements:
    def test_lhp_cooling_improves_mtbf(self, parts):
        # The COSEE payoff: a 32 degC junction drop more than doubles
        # predicted MTBF through Arrhenius.
        factor = mtbf_improvement_factor(parts, junctions(92.0),
                                         junctions(60.0))
        assert factor > 2.0

    def test_identity_when_unchanged(self, parts):
        factor = mtbf_improvement_factor(parts, junctions(60.0),
                                         junctions(60.0))
        assert factor == pytest.approx(1.0)

    def test_fan_penalty(self):
        # Fans dominate: 2 fans on a 5000-FIT box cost >3x MTBF.
        ratio = fan_reliability_penalty(5000.0, n_fans=2)
        assert ratio < 0.3

    def test_no_fans_no_penalty(self):
        assert fan_reliability_penalty(5000.0, 0) == pytest.approx(1.0)

    def test_invalid_fan_count(self):
        with pytest.raises(InputError):
            fan_reliability_penalty(5000.0, -1)
