"""Fault injection: deterministic decisions, per-kind behaviour, cleanup."""

import os

import pytest

from avipack.errors import (
    CacheCorruptionError,
    ConvergenceError,
    InputError,
    ModelRangeError,
    WatchdogTimeout,
    WorkerCrashError,
)
from avipack.resilience import FaultInjector, FaultPlan, FaultSpec
from avipack.resilience import faults as faults_mod
from avipack.sweep import SolverCache


@pytest.fixture(autouse=True)
def _clean_installation():
    faults_mod.uninstall()
    yield
    faults_mod.uninstall()


def plan(*specs, **kwargs):
    return FaultPlan(specs=tuple(specs), **kwargs)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InputError):
            FaultSpec("site", "meteor_strike")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(InputError):
            FaultSpec("site", "convergence", rate=1.5)

    def test_empty_site_rejected(self):
        with pytest.raises(InputError):
            FaultSpec("", "convergence")

    def test_bad_persist_rejected(self):
        with pytest.raises(InputError):
            FaultPlan(specs=(), persist=0)


class TestDeterminism:
    def test_same_plan_same_decisions(self):
        p = plan(FaultSpec("levels", "convergence", rate=0.5))

        def decisions():
            injector = FaultInjector(p)
            hit = []
            for scope in range(50):
                with injector.scoped(scope):
                    try:
                        injector.fire("levels.level2")
                    except ConvergenceError:
                        hit.append(scope)
            return hit

        first, second = decisions(), decisions()
        assert first == second
        assert 5 < len(first) < 45  # a real 0.5-ish split, not all-or-nothing

    def test_decisions_independent_of_evaluation_order(self):
        p = plan(FaultSpec("levels", "convergence", rate=0.5))

        def decisions(order):
            injector = FaultInjector(p)
            hit = set()
            for scope in order:
                with injector.scoped(scope):
                    try:
                        injector.fire("levels.level2")
                    except ConvergenceError:
                        hit.add(scope)
            return hit

        forward = decisions(range(50))
        backward = decisions(reversed(range(50)))
        assert forward == backward

    def test_seed_changes_decisions(self):
        scopes = range(200)

        def hit_set(seed):
            injector = FaultInjector(plan(
                FaultSpec("x", "convergence", rate=0.5), seed=seed))
            hit = set()
            for scope in scopes:
                with injector.scoped(scope):
                    try:
                        injector.fire("x")
                    except ConvergenceError:
                        hit.add(scope)
            return hit

        assert hit_set(1) != hit_set(2)

    def test_rate_zero_never_fires_rate_one_always(self):
        injector = FaultInjector(plan(
            FaultSpec("quiet", "convergence", rate=0.0),
            FaultSpec("loud", "convergence", rate=1.0)))
        injector.fire("quiet")  # no raise
        with pytest.raises(ConvergenceError):
            injector.fire("loud")


class TestMatching:
    def test_prefix_matches_bracketed_sites(self):
        injector = FaultInjector(plan(
            FaultSpec("levels.level3", "model_range")))
        with pytest.raises(ModelRangeError):
            injector.fire("levels.level3[m2]")
        injector2 = FaultInjector(plan(
            FaultSpec("levels.level3", "model_range")))
        injector2.fire("levels.level2")  # prefix mismatch: no raise

    def test_scope_allowlist_targets_candidates(self):
        injector = FaultInjector(plan(
            FaultSpec("site", "convergence", scopes=(3,))))
        with injector.scoped(2):
            injector.fire("site")  # not in allow-list
        with injector.scoped(3):
            with pytest.raises(ConvergenceError):
                injector.fire("site")


class TestPersistence:
    def test_fault_clears_after_persist_occurrences(self):
        injector = FaultInjector(plan(FaultSpec("site", "convergence")))
        with injector.scoped(0):
            with pytest.raises(ConvergenceError):
                injector.fire("site")
            injector.fire("site")  # occurrence 1 >= persist=1: recovered
        assert injector.injected == 1

    def test_persist_two_faults_twice(self):
        injector = FaultInjector(plan(FaultSpec("site", "convergence"),
                                      persist=2))
        with injector.scoped(0):
            for _ in range(2):
                with pytest.raises(ConvergenceError):
                    injector.fire("site")
            injector.fire("site")

    def test_occurrences_counted_per_scope(self):
        injector = FaultInjector(plan(FaultSpec("site", "convergence")))
        for scope in (0, 1):
            with injector.scoped(scope):
                with pytest.raises(ConvergenceError):
                    injector.fire("site")


class TestKinds:
    def test_model_range(self):
        injector = FaultInjector(plan(FaultSpec("s", "model_range")))
        with pytest.raises(ModelRangeError):
            injector.fire("s")

    def test_cache_corrupt(self):
        injector = FaultInjector(plan(FaultSpec("s", "cache_corrupt")))
        with pytest.raises(CacheCorruptionError):
            injector.fire("s")

    def test_crash_in_parent_raises_instead_of_exiting(self):
        injector = FaultInjector(plan(FaultSpec("s", "crash")))
        assert injector.in_parent
        with pytest.raises(WorkerCrashError):
            injector.fire("s")

    def test_hang_in_parent_is_immediate(self):
        injector = FaultInjector(plan(FaultSpec("s", "hang"),
                                      hang_seconds=3600.0))
        with pytest.raises(WatchdogTimeout):
            injector.fire("s")  # must not sleep an hour

    def test_hang_in_worker_sleeps_then_raises(self):
        p = FaultPlan(specs=(FaultSpec("s", "hang"),),
                      hang_seconds=0.01, parent_pid=os.getpid() + 1)
        injector = FaultInjector(p)
        assert not injector.in_parent
        with pytest.raises(WatchdogTimeout):
            injector.fire("s")


class TestInstallation:
    def test_fire_is_noop_without_plan(self):
        assert faults_mod.active() is None
        faults_mod.fire("anything")  # no raise

    def test_install_and_uninstall(self):
        injector = faults_mod.install(plan(FaultSpec("s", "convergence")))
        assert faults_mod.active() is injector
        with pytest.raises(ConvergenceError):
            faults_mod.fire("s")
        faults_mod.uninstall()
        faults_mod.fire("s")

    def test_reinstalling_same_plan_preserves_counters(self):
        p = plan(FaultSpec("s", "convergence"))
        first = faults_mod.install(p)
        with pytest.raises(ConvergenceError):
            faults_mod.fire("s")
        again = faults_mod.install(p)
        assert again is first
        faults_mod.fire("s")  # counter survived: fault already spent

    def test_installing_different_plan_replaces(self):
        first = faults_mod.install(plan(FaultSpec("s", "convergence")))
        second = faults_mod.install(plan(FaultSpec("s", "model_range")))
        assert second is not first

    def test_configure_none_uninstalls(self):
        faults_mod.install(plan(FaultSpec("s", "convergence")))
        assert faults_mod.configure(None) is None
        assert faults_mod.active() is None


class TestCacheCorruptionTolerance:
    def test_corrupt_pickled_entry_is_counted_miss(self):
        cache = SolverCache(pickle_entries=True)
        assert cache.get_or_compute("k", lambda: {"value": 1}) == {"value": 1}
        cache._store["k"] = b"not a pickle"
        assert cache.get_or_compute("k", lambda: {"value": 2}) == {"value": 2}
        stats = cache.stats()
        assert stats.corrupt == 1
        assert stats.misses == 2
        assert stats.hits == 0
        # the recomputed value was re-stored and is readable again
        assert cache.get_or_compute("k", lambda: {"value": 3}) == {"value": 2}
        assert cache.hits == 1

    def test_injected_corruption_hits_loads_only(self):
        faults_mod.install(plan(FaultSpec("sweep.cache", "cache_corrupt")))
        cache = SolverCache()
        assert cache.get_or_compute("k", lambda: 41) == 41  # store: no load
        assert cache.get_or_compute("k", lambda: 42) == 42  # corrupt hit
        assert cache.corrupt == 1
        assert cache.get_or_compute("k", lambda: 43) == 42  # fault spent

    def test_stats_roundup(self):
        from avipack.sweep import CacheStats
        a = CacheStats(hits=1, misses=2, entries=2, corrupt=1)
        b = CacheStats(hits=3, misses=4, entries=4)
        merged = a.merged(b)
        assert merged.corrupt == 1
        assert merged.hits == 4
        # default keeps historical equality semantics
        assert CacheStats(hits=1, misses=2, entries=2) \
            == CacheStats(hits=1, misses=2, entries=2, corrupt=0)

    def test_clear_resets_corrupt_counter(self):
        cache = SolverCache(pickle_entries=True)
        cache.get_or_compute("k", lambda: 1)
        cache._store["k"] = b"junk"
        cache.get_or_compute("k", lambda: 2)
        cache.clear()
        assert cache.stats() == type(cache.stats())(hits=0, misses=0,
                                                    entries=0, corrupt=0)
