"""CLI contract of ``python -m avipack sweep --resume``.

A resume pointed at an unusable journal must fail *distinctly* (exit
code 3, not the generic non-compliance 1 or the argparse 2) with an
actionable message — naming the quarantine sidecar and the two ways
out (restore a backup, or re-run without ``--resume``).
"""

import pytest

from avipack.__main__ import main


def test_missing_journal_exits_3(tmp_path, capsys):
    rc = main(["sweep", "--resume",
               "--journal", str(tmp_path / "absent.jsonl")])
    assert rc == 3
    err = capsys.readouterr().err
    assert "error:" in err
    assert "absent.jsonl" in err


def test_fully_quarantined_journal_exits_3_with_guidance(tmp_path,
                                                        capsys):
    journal = tmp_path / "garbage.jsonl"
    journal.write_text("not json at all\n{\"torn\": \n\x00\x01\x02\n")
    rc = main(["sweep", "--resume", "--journal", str(journal)])
    assert rc == 3
    err = capsys.readouterr().err
    assert "no usable records" in err
    assert ".quarantine" in err
    assert "without --resume" in err
    # The damage was quarantined to the sidecar for post-mortems.
    assert (tmp_path / "garbage.jsonl.quarantine").exists()


def test_empty_journal_exits_3(tmp_path, capsys):
    journal = tmp_path / "empty.jsonl"
    journal.write_text("")
    rc = main(["sweep", "--resume", "--journal", str(journal)])
    assert rc == 3
    assert "no usable records" in capsys.readouterr().err


def test_resume_without_journal_is_a_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "--resume"])
    assert excinfo.value.code == 2
