"""Tests for the solver instrumentation layer (avipack.perf).

Covers the SolveStats arithmetic, the process-global registry, the
factorization-reuse counters the compiled solver core is expected to
hit, compilation invalidation on structural mutation, and the
PERFORMANCE section of the sweep report.
"""

import pickle

import pytest

from avipack import perf
from avipack.errors import InputError
from avipack.perf import SolveStats, format_stats
from avipack.sweep.cache import CacheStats
from avipack.sweep.report import SweepReport, render_sweep_document
from avipack.thermal.conduction import (
    BoundaryCondition,
    CartesianGrid,
    ConductionSolver,
)
from avipack.thermal.network import ThermalNetwork
from avipack.thermal.transient import TransientNetworkSolver


@pytest.fixture(autouse=True)
def clean_registry():
    perf.reset()
    yield
    perf.reset()


def linear_network():
    net = ThermalNetwork()
    net.add_node("sink", fixed_temperature=300.0)
    net.add_node("a", heat_load=3.0, capacitance=30.0)
    net.add_node("b", heat_load=1.0, capacitance=50.0)
    net.add_resistance("a", "sink", 10.0)
    net.add_resistance("b", "a", 4.0)
    return net


class TestSolveStats:
    def test_merged_sums_counters(self):
        a = SolveStats("k", assemblies=2, factorizations=1, wall_s=0.5)
        b = SolveStats("k", assemblies=1, factorization_reuses=3,
                       iterations=7, wall_s=0.25)
        m = a.merged(b)
        assert m.assemblies == 3
        assert m.factorizations == 1
        assert m.factorization_reuses == 3
        assert m.iterations == 7
        assert m.wall_s == pytest.approx(0.75)

    def test_minus_is_inverse_of_merged(self):
        a = SolveStats("k", solves=5, factorizations=2)
        b = SolveStats("k", solves=3, factorizations=2,
                       factorization_reuses=1)
        assert a.merged(b).minus(a) == b

    def test_kernel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SolveStats("a").merged(SolveStats("b"))
        with pytest.raises(ValueError):
            SolveStats("a").minus(SolveStats("b"))

    def test_empty_and_reuse_rate(self):
        assert SolveStats("k").empty
        assert not SolveStats("k", solves=1).empty
        assert SolveStats("k").reuse_rate == 0.0
        s = SolveStats("k", factorizations=1, factorization_reuses=3)
        assert s.reuse_rate == pytest.approx(0.75)

    def test_pickles_cleanly(self):
        s = SolveStats("network.steady", solves=2, wall_s=0.1)
        assert pickle.loads(pickle.dumps(s)) == s


class TestBatchedCounters:
    def test_merged_and_minus_carry_batch_counters(self):
        a = SolveStats("k", batched_solves=1, batch_width=50,
                       factorizations=1)
        b = SolveStats("k", batched_solves=2, batch_width=150,
                       factorizations=2)
        m = a.merged(b)
        assert m.batched_solves == 3
        assert m.batch_width == 200
        assert m.minus(a) == b

    def test_batch_counters_alone_are_not_empty(self):
        assert not SolveStats("k", batched_solves=1).empty
        assert not SolveStats("k", batch_width=8).empty

    def test_candidates_per_factorization(self):
        s = SolveStats("k", batch_width=200, factorizations=2)
        assert s.candidates_per_factorization == pytest.approx(100.0)
        # Scalar kernels (no batch axis) and unfactorized records
        # report 0 rather than a misleading ratio.
        assert SolveStats("k", factorizations=5) \
            .candidates_per_factorization == 0.0
        assert SolveStats("k", batch_width=10) \
            .candidates_per_factorization == 0.0

    def test_record_accumulates_batch_counters(self):
        perf.record("network.batched", batched_solves=1, batch_width=120,
                    factorizations=2)
        perf.record("network.batched", batched_solves=1, batch_width=80,
                    factorizations=2)
        s = perf.stats("network.batched")
        assert s.batched_solves == 2
        assert s.batch_width == 200
        assert s.candidates_per_factorization == pytest.approx(50.0)

    def test_format_stats_appends_batch_suffix(self):
        batched = SolveStats("network.batched", solves=200,
                             batched_solves=1, batch_width=200,
                             factorizations=2)
        line = format_stats([batched])[0]
        assert "batched 1 width 200" in line
        assert "cand/LU 100" in line
        scalar_line = format_stats([SolveStats("k", solves=3)])[0]
        assert "batched" not in scalar_line

    def test_batch_counters_pickle_cleanly(self):
        s = SolveStats("network.batched", batched_solves=1,
                       batch_width=64, wall_s=0.01)
        assert pickle.loads(pickle.dumps(s)) == s


class TestRegistry:
    def test_record_accumulates(self):
        perf.record("k", solves=1, iterations=4)
        perf.record("k", solves=1, iterations=6, factorizations=1)
        s = perf.stats("k")
        assert s.solves == 2
        assert s.iterations == 10
        assert s.factorizations == 1

    def test_unknown_kernel_is_zero(self):
        assert perf.stats("nope").empty

    def test_reset_single_kernel(self):
        perf.record("a", solves=1)
        perf.record("b", solves=1)
        perf.reset("a")
        assert perf.stats("a").empty
        assert perf.stats("b").solves == 1

    def test_delta_since_omits_unchanged(self):
        perf.record("a", solves=1)
        before = perf.snapshot()
        perf.record("b", solves=2)
        deltas = perf.delta_since(before)
        assert [d.kernel for d in deltas] == ["b"]
        assert deltas[0].solves == 2

    def test_delta_since_orders_by_kernel(self):
        before = perf.snapshot()
        perf.record("z", solves=1)
        perf.record("a", solves=1)
        assert [d.kernel for d in perf.delta_since(before)] == ["a", "z"]

    def test_aggregate_merges_by_kernel(self):
        groups = [
            (SolveStats("a", solves=1), SolveStats("b", iterations=5)),
            (SolveStats("a", solves=2, factorization_reuses=1),),
        ]
        merged = perf.aggregate(groups)
        assert [s.kernel for s in merged] == ["a", "b"]
        assert merged[0].solves == 3
        assert merged[0].factorization_reuses == 1

    def test_timed_adds_wall_time(self):
        with perf.timed("k"):
            pass
        assert perf.stats("k").wall_s >= 0.0
        assert perf.stats("k").solves == 0


class TestNetworkCounters:
    def test_linear_network_factorizes_once(self):
        net = linear_network()
        for _ in range(5):
            net.solve()
        s = perf.stats("network.steady")
        assert s.compilations == 1
        assert s.assemblies == 1
        assert s.factorizations == 1
        assert s.factorization_reuses == 4
        assert s.solves == 5
        assert s.iterations == 5

    def test_mutation_invalidates_compilation(self):
        net = linear_network()
        assert net.solve().temperature("a") == pytest.approx(340.0)
        net.add_heat_load("a", 1.0)
        sol = net.solve()
        s = perf.stats("network.steady")
        assert s.compilations == 2
        assert s.factorizations == 2
        # 4 W through 10 K/W to a 300 K sink.
        assert sol.temperature("a") == pytest.approx(340.0 + 10.0)

    def test_nonlinear_network_assembles_per_iteration(self):
        net = ThermalNetwork()
        net.add_node("sink", fixed_temperature=300.0)
        net.add_node("hot", heat_load=5.0)
        net.add_conductance("hot", "sink",
                            lambda a, b: 0.1 + 1e-4 * (a + b))
        sol = net.solve()
        s = perf.stats("network.steady")
        assert sol.iterations > 1
        assert s.assemblies == sol.iterations
        assert s.factorizations == sol.iterations
        assert s.factorization_reuses == 0

    def test_transient_constant_conductance_reuses_lu(self):
        net = linear_network()
        solver = TransientNetworkSolver(net)
        solver.integrate(duration=100.0, time_step=1.0)
        s = perf.stats("network.transient")
        assert s.factorizations == 1
        assert s.factorization_reuses == 99
        # A second run at the same step size reuses the same handle.
        solver.integrate(duration=100.0, time_step=1.0)
        s = perf.stats("network.transient")
        assert s.factorizations == 1
        assert s.factorization_reuses == 199
        # A different step size means a different operator.
        solver.integrate(duration=100.0, time_step=2.0)
        assert perf.stats("network.transient").factorizations == 2

    def test_conduction_transient_factorizes_once(self):
        grid = CartesianGrid((4, 3, 2), (0.04, 0.03, 0.004),
                             conductivity=5.0, density=2000.0,
                             specific_heat=900.0)
        grid.add_power(grid.region_slices((0.0, 0.04), (0.0, 0.03),
                                          (0.0, 0.004)), 2.0)
        solver = ConductionSolver(grid)
        solver.set_boundary("z_min",
                            BoundaryCondition("convection", 50.0, 300.0))
        solver.solve_transient(duration=50.0, time_step=1.0,
                               initial_temperature=320.0)
        s = perf.stats("conduction.transient")
        assert s.solves == 1
        assert s.iterations == 50
        assert s.factorizations == 1
        assert s.factorization_reuses == 49


class TestReportRendering:
    def test_performance_section_renders(self):
        records = (SolveStats("network.steady", solves=3, iterations=12,
                              assemblies=1, factorizations=1,
                              factorization_reuses=2, wall_s=0.004),)
        report = SweepReport(outcomes=(), wall_time_s=0.1, mode="serial",
                            workers=1, cache=CacheStats(hits=0, misses=0, entries=0), perf=records)
        doc = render_sweep_document(report)
        assert "4. PERFORMANCE" in doc
        assert "network.steady" in doc
        assert "factorization reuse" in doc

    def test_performance_numbered_after_recovery(self):
        # With recovery content present, RECOVERY stays section 4 (other
        # suites assert that literal) and PERFORMANCE becomes 5.
        from avipack.sweep.runner import CandidateFailure
        from avipack.sweep.space import Candidate
        failure = CandidateFailure(
            index=0, candidate=Candidate(), fingerprint="f",
            stage="watchdog", error_type="WatchdogTimeout",
            message="timed out", elapsed_s=1.0, worker_pid=0)
        report = SweepReport(
            outcomes=(failure,), wall_time_s=0.1, mode="serial",
            workers=1, cache=CacheStats(hits=0, misses=0, entries=0),
            perf=(SolveStats("network.steady", solves=1),))
        doc = render_sweep_document(report)
        assert "4. RECOVERY" in doc
        assert "5. PERFORMANCE" in doc

    def test_no_perf_records_no_section(self):
        report = SweepReport(outcomes=(), wall_time_s=0.1, mode="serial",
                             workers=1, cache=CacheStats(hits=0, misses=0, entries=0))
        assert "PERFORMANCE" not in render_sweep_document(report)

    def test_format_stats_alignment(self):
        lines = format_stats([SolveStats("k", solves=1)])
        assert len(lines) == 1
        assert lines[0].startswith("k")

    def test_format_stats_accepts_snapshot_mapping(self):
        # format_stats(perf.snapshot()) is the natural interactive call;
        # mappings render in kernel-name order.
        lines = format_stats({"z.kernel": SolveStats("z.kernel", solves=2),
                              "a.kernel": SolveStats("a.kernel", solves=1)})
        assert len(lines) == 2
        assert lines[0].startswith("a.kernel")
        assert lines[1].startswith("z.kernel")


class TestSweepCarriesPerf:
    def test_serial_sweep_aggregates_kernel_deltas(self):
        from avipack.sweep import DesignSpace, SweepRunner
        space = DesignSpace({"power_per_module": (10.0, 20.0)})
        report = SweepRunner(parallel=False).run(space)
        assert report.perf, "sweep should surface solver counters"
        kernels = {s.kernel for s in report.perf}
        assert kernels <= {"network.steady", "network.transient",
                           "conduction.steady", "conduction.transient"}
        assert all(not s.empty for s in report.perf)


class TestCompiledStatePickling:
    def test_network_pickles_after_solve(self):
        net = linear_network()
        net.solve()
        clone = pickle.loads(pickle.dumps(net))
        assert clone.solve().temperature("a") == pytest.approx(340.0)

    def test_transient_solver_pickles_after_integrate(self):
        net = linear_network()
        solver = TransientNetworkSolver(net)
        solver.integrate(duration=10.0, time_step=1.0)
        clone = pickle.loads(pickle.dumps(solver))
        result = clone.integrate(duration=10.0, time_step=1.0)
        assert result.final("b") > 0.0


class TestInvalidInputsUnchanged:
    def test_negative_callable_still_raises(self):
        net = ThermalNetwork()
        net.add_node("sink", fixed_temperature=300.0)
        net.add_node("a", heat_load=1.0)
        net.add_conductance("a", "sink", lambda a, b: -1.0)
        with pytest.raises(InputError, match="negative"):
            net.solve()
