"""Tests for the finite-volume conduction solver against analytic cases."""

import numpy as np
import pytest

from avipack.errors import InputError
from avipack.thermal.conduction import (
    BoundaryCondition,
    CartesianGrid,
    ConductionSolver,
)


class TestGrid:
    def test_spacing(self):
        grid = CartesianGrid((10, 5, 2), (0.1, 0.05, 0.002))
        assert grid.spacing == pytest.approx((0.01, 0.01, 0.001))

    def test_cell_volume(self):
        grid = CartesianGrid((10, 5, 2), (0.1, 0.05, 0.002))
        assert grid.cell_volume == pytest.approx(0.01 * 0.01 * 0.001)

    def test_total_power_matches_added(self):
        grid = CartesianGrid((10, 10, 1), (0.1, 0.1, 0.001))
        region = grid.region_slices((0.0, 0.05), (0.0, 0.1), (0.0, 0.001))
        grid.add_power(region, 7.5)
        assert grid.total_power() == pytest.approx(7.5)

    def test_region_outside_rejected(self):
        grid = CartesianGrid((10, 10, 1), (0.1, 0.1, 0.001))
        with pytest.raises(InputError):
            grid.region_slices((0.2, 0.3), (0.0, 0.1), (0.0, 0.001))

    def test_invalid_shape(self):
        with pytest.raises(InputError):
            CartesianGrid((0, 1, 1), (1.0, 1.0, 1.0))

    def test_invalid_material(self):
        grid = CartesianGrid((4, 4, 1), (0.1, 0.1, 0.001))
        region = grid.region_slices((0.0, 0.1), (0.0, 0.1), (0.0, 0.001))
        with pytest.raises(InputError):
            grid.set_material(region, conductivity=-5.0)


class TestSetMaterial:
    def grid_and_region(self):
        grid = CartesianGrid((4, 4, 2), (0.1, 0.1, 0.002),
                             conductivity=10.0)
        region = grid.region_slices((0.0, 0.1), (0.0, 0.1), (0.0, 0.002))
        return grid, region

    def test_explicit_zero_conductivity_z_rejected(self):
        # Regression: 0.0 used to be truthiness-tested and silently
        # treated as "use the isotropic value".
        grid, region = self.grid_and_region()
        with pytest.raises(InputError, match="conductivity_z"):
            grid.set_material(region, conductivity=5.0, conductivity_z=0.0)

    def test_rejected_call_leaves_grid_unchanged(self):
        # Regression: kz used to be written before conductivity_z was
        # validated, leaving the grid partially mutated.
        grid, region = self.grid_and_region()
        kx0, ky0, kz0 = grid.kx.copy(), grid.ky.copy(), grid.kz.copy()
        rho_cp0 = grid.rho_cp.copy()
        with pytest.raises(InputError):
            grid.set_material(region, conductivity=5.0,
                              conductivity_z=-1.0)
        with pytest.raises(InputError):
            grid.set_material(region, conductivity=5.0, density=-1.0)
        assert np.array_equal(grid.kx, kx0)
        assert np.array_equal(grid.ky, ky0)
        assert np.array_equal(grid.kz, kz0)
        assert np.array_equal(grid.rho_cp, rho_cp0)

    def test_orthotropic_assignment(self):
        grid, region = self.grid_and_region()
        grid.set_material(region, conductivity=18.0, conductivity_z=0.35)
        assert np.all(grid.kx[region] == 18.0)
        assert np.all(grid.ky[region] == 18.0)
        assert np.all(grid.kz[region] == 0.35)

    def test_isotropic_when_z_omitted(self):
        grid, region = self.grid_and_region()
        grid.set_material(region, conductivity=7.0)
        assert np.all(grid.kz[region] == 7.0)


class TestSteady1D:
    def test_slab_with_fixed_faces(self):
        # 1-D slab, fixed 400 K / 300 K: linear profile, q = k dT/L.
        grid = CartesianGrid((50, 1, 1), (0.1, 0.01, 0.01),
                             conductivity=10.0)
        solver = ConductionSolver(grid, {
            "x_min": BoundaryCondition("temperature", 400.0),
            "x_max": BoundaryCondition("temperature", 300.0),
        })
        sol = solver.solve_steady()
        profile = sol.temperatures[:, 0, 0]
        x = grid.cell_centers(0)
        expected = 400.0 - 100.0 * x / 0.1
        assert np.allclose(profile, expected, atol=1e-6)

    def test_flux_boundary_energy_balance(self):
        # Imposed flux on one face, convection on the other.
        grid = CartesianGrid((20, 1, 1), (0.02, 0.01, 0.01),
                             conductivity=100.0)
        solver = ConductionSolver(grid, {
            "x_min": BoundaryCondition("flux", 1.0e4),
            "x_max": BoundaryCondition("convection", 500.0, ambient=300.0),
        })
        sol = solver.solve_steady()
        # Surface cell temperature must satisfy q = h (T_s - T_inf) with
        # the half-cell correction: check total rise magnitude.
        t_cold_face = sol.temperatures[-1, 0, 0]
        assert t_cold_face == pytest.approx(300.0 + 1.0e4 / 500.0, rel=0.02)

    def test_uniform_source_adiabatic_sides(self):
        # Uniform source, one convective face: T rises towards closed end.
        grid = CartesianGrid((30, 1, 1), (0.03, 0.01, 0.01),
                             conductivity=50.0)
        region = grid.region_slices((0.0, 0.03), (0.0, 0.01), (0.0, 0.01))
        grid.add_power(region, 5.0)
        solver = ConductionSolver(grid, {
            "x_max": BoundaryCondition("convection", 1000.0, ambient=300.0),
        })
        sol = solver.solve_steady()
        profile = sol.temperatures[:, 0, 0]
        assert profile[0] > profile[-1]
        assert sol.min_temperature > 300.0


class TestSteady2D3D:
    def test_symmetric_hotspot_peak_centred(self):
        grid = CartesianGrid((21, 21, 1), (0.1, 0.1, 0.002),
                             conductivity=20.0)
        region = grid.region_slices((0.045, 0.055), (0.045, 0.055),
                                    (0.0, 0.002))
        grid.add_power(region, 3.0)
        solver = ConductionSolver(grid, {
            "z_min": BoundaryCondition("convection", 100.0, ambient=300.0),
        })
        sol = solver.solve_steady()
        assert sol.hotspot_index()[:2] == (10, 10)

    def test_higher_conductivity_flattens_field(self):
        def peak(k):
            grid = CartesianGrid((15, 15, 1), (0.1, 0.1, 0.002),
                                 conductivity=k)
            region = grid.region_slices((0.045, 0.055), (0.045, 0.055),
                                        (0.0, 0.002))
            grid.add_power(region, 3.0)
            solver = ConductionSolver(grid, {
                "z_min": BoundaryCondition("convection", 100.0,
                                           ambient=300.0),
            })
            sol = solver.solve_steady()
            return sol.max_temperature - sol.min_temperature

        assert peak(100.0) < peak(1.0)

    def test_orthotropic_board_spreads_in_plane(self):
        grid = CartesianGrid((15, 15, 3), (0.1, 0.1, 0.0016),
                             conductivity=18.0)
        grid.kz[:, :, :] = 0.35
        region = grid.region_slices((0.045, 0.055), (0.045, 0.055),
                                    (0.0, 0.0016))
        grid.add_power(region, 2.0)
        solver = ConductionSolver(grid, {
            "z_min": BoundaryCondition("convection", 20.0, ambient=300.0),
            "z_max": BoundaryCondition("convection", 20.0, ambient=300.0),
        })
        sol = solver.solve_steady()
        assert sol.max_temperature > 300.0
        assert sol.hotspot_index()[:2] == (7, 7)

    def test_energy_balance_global(self):
        # Total heat in = convected out: check via mean surface rise.
        grid = CartesianGrid((10, 10, 2), (0.05, 0.05, 0.004),
                             conductivity=150.0)
        region = grid.region_slices((0.0, 0.05), (0.0, 0.05), (0.0, 0.004))
        grid.add_power(region, 10.0)
        h, t_inf = 200.0, 300.0
        solver = ConductionSolver(grid, {
            "z_min": BoundaryCondition("convection", h, ambient=t_inf),
        })
        sol = solver.solve_steady()
        # High conductivity -> nearly isothermal; Q = h A (T - Tinf).
        area = 0.05 * 0.05
        expected = t_inf + 10.0 / (h * area)
        assert sol.mean_temperature() == pytest.approx(expected, rel=0.05)


class TestTransient:
    def test_relaxation_to_steady(self):
        grid = CartesianGrid((10, 1, 1), (0.01, 0.01, 0.01),
                             conductivity=200.0, density=2700.0,
                             specific_heat=900.0)
        region = grid.region_slices((0.0, 0.01), (0.0, 0.01), (0.0, 0.01))
        grid.add_power(region, 2.0)
        solver = ConductionSolver(grid, {
            "x_max": BoundaryCondition("convection", 500.0, ambient=300.0),
        })
        steady = solver.solve_steady()
        transient = solver.solve_transient(initial_temperature=300.0,
                                           duration=2000.0, time_step=10.0)
        assert transient.final_field() == pytest.approx(
            steady.temperatures, rel=0.01)

    def test_monotonic_heating(self):
        grid = CartesianGrid((5, 1, 1), (0.01, 0.01, 0.01),
                             conductivity=200.0)
        region = grid.region_slices((0.0, 0.01), (0.0, 0.01), (0.0, 0.01))
        grid.add_power(region, 1.0)
        solver = ConductionSolver(grid, {
            "x_max": BoundaryCondition("convection", 100.0, ambient=300.0),
        })
        result = solver.solve_transient(300.0, 100.0, 1.0)
        peaks = result.max_temperature_history()
        assert np.all(np.diff(peaks) >= -1e-9)

    def test_time_to_reach(self):
        grid = CartesianGrid((5, 1, 1), (0.01, 0.01, 0.01),
                             conductivity=200.0)
        region = grid.region_slices((0.0, 0.01), (0.0, 0.01), (0.0, 0.01))
        grid.add_power(region, 5.0)
        solver = ConductionSolver(grid, {
            "x_max": BoundaryCondition("convection", 50.0, ambient=300.0),
        })
        result = solver.solve_transient(300.0, 500.0, 5.0)
        t_400 = result.time_to_reach(400.0)
        assert 0.0 < t_400 < 500.0
        assert result.time_to_reach(1.0e6) == float("inf")

    def test_invalid_duration(self):
        grid = CartesianGrid((5, 1, 1), (0.01, 0.01, 0.01))
        solver = ConductionSolver(grid, {
            "x_max": BoundaryCondition("temperature", 300.0)})
        with pytest.raises(InputError):
            solver.solve_transient(300.0, -1.0, 0.1)


class TestValidation:
    def test_all_adiabatic_singular(self):
        grid = CartesianGrid((5, 1, 1), (0.01, 0.01, 0.01))
        with pytest.raises(InputError):
            ConductionSolver(grid).solve_steady()

    def test_unknown_face(self):
        grid = CartesianGrid((5, 1, 1), (0.01, 0.01, 0.01))
        solver = ConductionSolver(grid)
        with pytest.raises(InputError):
            solver.set_boundary("top", BoundaryCondition("temperature",
                                                         300.0))

    def test_invalid_bc_kind(self):
        with pytest.raises(InputError):
            BoundaryCondition("dirichlet", 300.0)

    def test_negative_film(self):
        with pytest.raises(InputError):
            BoundaryCondition("convection", -5.0)
