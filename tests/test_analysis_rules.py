"""Per-rule fixtures for :mod:`avipack.analysis` (AVI001-AVI012).

Every rule gets at least: one positive fixture proving it fires, one
negative fixture proving it stays quiet on conforming code, and one
suppressed fixture proving ``# avilint: disable=RULE`` silences it.
"""

from __future__ import annotations

import textwrap

import pytest

from avipack.analysis import AnalysisEngine, Baseline, FileContext
from avipack.analysis.rules.unit_suffix import canonical_suffixes

IN_PACKAGE = "src/avipack/somemodule.py"
IN_SWEEP = "src/avipack/sweep/somemodule.py"
OUTSIDE = "scripts/tool.py"


def run_rules(source: str, path: str = IN_PACKAGE):
    """Raw findings of all registered rules over one source snippet."""
    source = textwrap.dedent(source)
    ctx = FileContext.parse(path, source)
    engine = AnalysisEngine()
    findings = []
    for rule in engine.rules:
        findings.extend(rule.check(ctx))
    return findings


def run_engine(source: str, path: str = IN_PACKAGE, tmp_path=None):
    """Full engine pass (suppressions applied) over one snippet on disk."""
    target = tmp_path / "snippet.py"
    target.write_text(textwrap.dedent(source))
    # Re-parse under the declarative path so path-scoped rules apply:
    # analyze the real file but present findings through a parsed context.
    engine = AnalysisEngine()
    ctx = FileContext.parse(path, target.read_text())
    raw = []
    for rule in engine.rules:
        raw.extend(rule.check(ctx))
    active, suppressed = engine._apply_suppressions(target.read_text(), raw)
    return active, suppressed


def rule_ids(findings):
    return sorted({finding.rule_id for finding in findings})


# ---------------------------------------------------------------------------
# AVI001 — unit-suffix consistency
# ---------------------------------------------------------------------------

class TestAVI001:
    def test_fires_on_spelled_out_suffix(self):
        findings = run_rules("""
            def set_power(power_watts: float) -> None:
                pass
        """)
        assert rule_ids(findings) == ["AVI001"]
        assert "power_watts" in findings[0].message
        assert "_w" in findings[0].suggestion

    def test_fires_on_docstring_contradiction(self):
        findings = run_rules('''
            def solve(temp_k: float) -> float:
                """Solve the network.

                Parameters
                ----------
                temp_k:
                    Boundary temperature in degrees Celsius.
                """
                return temp_k
        ''')
        assert rule_ids(findings) == ["AVI001"]
        assert "'_k'" in findings[0].message

    def test_fires_on_attribute_contradiction(self):
        findings = run_rules('''
            class Spec:
                """A spec.

                Attributes
                ----------
                length_m:
                    Edge length in mm.
                """

                length_m: float = 0.1
        ''')
        assert rule_ids(findings) == ["AVI001"]

    def test_quiet_on_consistent_code(self):
        findings = run_rules('''
            def solve(temp_k: float, power_w: float, freq_hz: float) -> float:
                """Solve.

                Parameters
                ----------
                temp_k:
                    Boundary temperature [K].
                power_w:
                    Dissipation [W].
                freq_hz:
                    Excitation frequency [Hz].
                """
                return temp_k + power_w + freq_hz
        ''')
        assert findings == []

    def test_quiet_on_private_function(self):
        findings = run_rules("""
            def _internal(power_watts: float) -> None:
                pass
        """)
        assert findings == []

    def test_suppressed(self, tmp_path):
        active, suppressed = run_engine(
            "def set_power(power_watts: float) -> None:"
            "  # avilint: disable=AVI001\n"
            "    pass\n", tmp_path=tmp_path)
        assert active == []
        assert rule_ids(suppressed) == ["AVI001"]

    def test_suffix_vocabulary_derived_from_units(self):
        suffixes = canonical_suffixes()
        # Tokens contributed by avipack.units converter names.
        for suffix in ("_k", "_c", "_hz", "_m", "_s", "_h", "_m_s2"):
            assert suffix in suffixes


# ---------------------------------------------------------------------------
# AVI002 — error taxonomy
# ---------------------------------------------------------------------------

class TestAVI002:
    def test_fires_on_bare_builtin_raise(self):
        findings = run_rules("""
            def f(x):
                if x < 0:
                    raise ValueError("negative")
        """)
        assert rule_ids(findings) == ["AVI002"]
        assert "InputError" in findings[0].suggestion

    def test_fires_on_unpicklable_exception(self):
        findings = run_rules("""
            class SolverError(Exception):
                def __init__(self, message, iterations, residual):
                    super().__init__(message)
                    self.iterations = iterations
                    self.residual = residual
        """)
        assert rule_ids(findings) == ["AVI002"]
        assert "__reduce__" in findings[0].message

    def test_quiet_on_taxonomy_raise(self):
        findings = run_rules("""
            from avipack.errors import InputError

            def f(x):
                if x < 0:
                    raise InputError("negative")
        """)
        assert findings == []

    def test_quiet_outside_package_for_raises(self):
        findings = run_rules("""
            def f(x):
                raise ValueError("fine outside avipack")
        """, path=OUTSIDE)
        assert findings == []

    def test_quiet_when_reduce_defined(self):
        findings = run_rules("""
            class SolverError(Exception):
                def __init__(self, message, iterations=0):
                    super().__init__(message)
                    self.iterations = iterations

                def __reduce__(self):
                    return (self.__class__, (self.args[0], self.iterations))
        """)
        assert findings == []

    def test_quiet_on_message_only_init(self):
        findings = run_rules("""
            class SimpleError(Exception):
                def __init__(self, message):
                    super().__init__(message)
        """)
        assert findings == []

    def test_suppressed(self, tmp_path):
        active, suppressed = run_engine("""
            def f(x):
                raise ValueError("negative")  # avilint: disable=AVI002
        """, tmp_path=tmp_path)
        assert active == []
        assert rule_ids(suppressed) == ["AVI002"]


# ---------------------------------------------------------------------------
# AVI003 — worker-boundary pickle safety
# ---------------------------------------------------------------------------

class TestAVI003:
    def test_fires_on_lambda_into_pool(self):
        findings = run_rules("""
            def sweep(pool, items):
                return pool.submit(lambda x: x + 1, items)
        """)
        assert rule_ids(findings) == ["AVI003"]
        assert "lambda" in findings[0].message

    def test_fires_on_local_def_into_runner(self):
        findings = run_rules("""
            def sweep(space):
                def evaluate(task):
                    return task

                runner = SweepRunner(evaluator=evaluate)
                return runner.run(space)
        """)
        assert rule_ids(findings) == ["AVI003"]
        assert "evaluate" in findings[0].message

    def test_fires_on_local_class_into_executor_map(self):
        findings = run_rules("""
            def sweep(executor, items):
                class Payload:
                    pass

                return list(executor.map(Payload, items))
        """)
        assert rule_ids(findings) == ["AVI003"]

    def test_quiet_on_module_level_function(self):
        findings = run_rules("""
            def evaluate(task):
                return task

            def sweep(pool, items):
                return [pool.submit(evaluate, item) for item in items]
        """)
        assert findings == []

    def test_quiet_on_plain_map_builtin(self):
        findings = run_rules("""
            def transform(items):
                return list(map(lambda x: x + 1, items))
        """)
        assert findings == []

    def test_suppressed(self, tmp_path):
        active, suppressed = run_engine("""
            def sweep(pool, items):
                return pool.submit(lambda x: x, items)  # avilint: disable=AVI003
        """, tmp_path=tmp_path)
        assert active == []
        assert rule_ids(suppressed) == ["AVI003"]


# ---------------------------------------------------------------------------
# AVI004 — determinism
# ---------------------------------------------------------------------------

class TestAVI004:
    def test_fires_on_unseeded_entropy_and_wall_clock(self):
        findings = run_rules("""
            import random
            import time
            import numpy as np

            def jitter():
                rng = np.random.default_rng()
                return (random.random() + time.time()
                        + float(np.random.rand()) + rng.normal())
        """, path=IN_SWEEP)
        assert rule_ids(findings) == ["AVI004"]
        messages = " | ".join(finding.message for finding in findings)
        assert "default_rng() without an explicit seed" in messages
        assert "random.random()" in messages
        assert "time.time()" in messages
        assert "np.random.rand()" in messages

    def test_quiet_on_seeded_sources(self):
        findings = run_rules("""
            import random
            import time
            import numpy as np

            def deterministic(seed):
                rng = np.random.default_rng(seed)
                local = random.Random(seed)
                started = time.perf_counter()
                return rng.normal() + local.random() + started
        """, path=IN_SWEEP)
        assert findings == []

    def test_quiet_outside_scoped_subpackages(self):
        findings = run_rules("""
            import time

            def now():
                return time.time()
        """, path="src/avipack/reliability/clock.py")
        assert findings == []

    def test_suppressed(self, tmp_path):
        active, suppressed = run_engine("""
            import time

            def now():
                return time.time()  # avilint: disable=AVI004
        """, path=IN_SWEEP, tmp_path=tmp_path)
        assert active == []
        assert rule_ids(suppressed) == ["AVI004"]


# ---------------------------------------------------------------------------
# AVI005 — solver-mutation safety
# ---------------------------------------------------------------------------

class TestAVI005:
    def test_fires_on_mutation_after_solve(self):
        findings = run_rules("""
            def iterate():
                network = ThermalNetwork()
                network.add_node("cpu", heat_load=40.0)
                network.solve()
                network.add_heat_load("cpu", 55.0)
                return network.solve()
        """)
        assert rule_ids(findings) == ["AVI005"]
        assert "add_heat_load" in findings[0].message

    def test_fires_on_attribute_receiver(self):
        findings = run_rules("""
            def refine(self):
                self.network.solve()
                self.network.add_conductance("a", "b", 2.0)
        """)
        assert rule_ids(findings) == ["AVI005"]

    def test_quiet_on_build_then_solve(self):
        findings = run_rules("""
            def build_and_solve():
                network = ThermalNetwork()
                network.add_node("cpu", heat_load=40.0)
                network.add_conductance("cpu", "sink", 2.0)
                return network.solve()
        """)
        assert findings == []

    def test_quiet_across_function_boundaries(self):
        findings = run_rules("""
            def solve_once(network):
                return network.solve()

            def mutate(network):
                network.add_heat_load("cpu", 55.0)
        """)
        assert findings == []

    def test_quiet_on_different_receivers(self):
        findings = run_rules("""
            def two_networks(a, b):
                a.solve()
                b.add_heat_load("cpu", 55.0)
                return b.solve()
        """)
        assert findings == []

    def test_suppressed(self, tmp_path):
        active, suppressed = run_engine("""
            def iterate(network):
                network.solve()
                network.add_heat_load("cpu", 55.0)  # avilint: disable=AVI005
                return network.solve()
        """, tmp_path=tmp_path)
        assert active == []
        assert rule_ids(suppressed) == ["AVI005"]


# ---------------------------------------------------------------------------
# AVI006 — atomic persistence of on-disk documents
# ---------------------------------------------------------------------------

class TestAVI006:
    def test_fires_on_open_w_json_literal(self):
        findings = run_rules("""
            import json

            def save(payload):
                with open("state.json", "w") as stream:
                    json.dump(payload, stream)
        """)
        assert "AVI006" in rule_ids(findings)
        assert "torn" in findings[0].message

    def test_fires_on_json_dump_into_variable_path(self):
        findings = run_rules("""
            import json

            def save(path, payload):
                with open(path, "w", encoding="utf-8") as stream:
                    json.dump(payload, stream)
        """)
        assert rule_ids(findings) == ["AVI006"]

    def test_fires_on_write_text_of_json_dumps(self):
        findings = run_rules("""
            import json

            def save(path, payload):
                path.write_text(json.dumps(payload) + "\\n")
        """)
        assert rule_ids(findings) == ["AVI006"]

    def test_fires_on_jsonl_fstring_destination(self):
        findings = run_rules("""
            def save(stem, lines):
                with open(f"{stem}.records.jsonl", "w") as stream:
                    stream.writelines(lines)
        """)
        assert rule_ids(findings) == ["AVI006"]

    def test_fires_outside_the_package_too(self):
        findings = run_rules("""
            import json

            def save(payload):
                with open("bench.json", "w") as stream:
                    json.dump(payload, stream)
        """, path=OUTSIDE)
        assert rule_ids(findings) == ["AVI006"]

    def test_quiet_on_tmp_file_plus_os_replace(self):
        # flush + fsync included: the durable idiom satisfies AVI009 too.
        findings = run_rules("""
            import json
            import os

            def save(path, payload):
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as stream:
                    json.dump(payload, stream)
                    stream.flush()
                    os.fsync(stream.fileno())
                os.replace(tmp, path)
        """)
        assert findings == []

    def test_quiet_on_append_mode(self):
        findings = run_rules("""
            def log(path, line):
                with open("events.jsonl", "ab") as stream:
                    stream.write(line)
        """)
        assert findings == []

    def test_quiet_on_read_and_scratch_writes(self):
        findings = run_rules("""
            import json

            def load(path):
                with open(path, "r", encoding="utf-8") as stream:
                    return json.load(stream)

            def scratch(path, text):
                with open(path, "w") as stream:
                    stream.write(text)
        """)
        assert findings == []

    def test_suppressed(self, tmp_path):
        active, suppressed = run_engine("""
            import json

            def save(payload):
                with open("state.json", "w") as stream:  # avilint: disable=AVI006
                    json.dump(payload, stream)
        """, tmp_path=tmp_path)
        assert active == []
        assert rule_ids(suppressed) == ["AVI006"]


# ---------------------------------------------------------------------------
# AVI007 — fire-and-forget asyncio tasks
# ---------------------------------------------------------------------------

class TestAVI007:
    def test_fires_on_bare_create_task(self):
        findings = run_rules("""
            import asyncio

            def kick(coro):
                asyncio.create_task(coro())
        """)
        assert rule_ids(findings) == ["AVI007"]
        assert "fire-and-forget" in findings[0].message

    def test_fires_on_bare_ensure_future(self):
        findings = run_rules("""
            import asyncio

            def kick(coro):
                asyncio.ensure_future(coro())
        """)
        assert rule_ids(findings) == ["AVI007"]

    def test_fires_on_loop_create_task(self):
        findings = run_rules("""
            def kick(loop, coro):
                loop.create_task(coro())
        """)
        assert rule_ids(findings) == ["AVI007"]

    def test_fires_on_from_imported_create_task(self):
        findings = run_rules("""
            from asyncio import create_task

            def kick(coro):
                create_task(coro())
        """)
        assert rule_ids(findings) == ["AVI007"]

    def test_quiet_when_result_is_stored(self):
        findings = run_rules("""
            import asyncio

            def kick(tasks, coro):
                task = asyncio.create_task(coro())
                task.add_done_callback(tasks.discard)
                tasks.add(task)
        """)
        assert findings == []

    def test_quiet_when_awaited(self):
        findings = run_rules("""
            import asyncio

            async def kick(coro):
                await asyncio.create_task(coro())
        """)
        assert findings == []

    def test_quiet_when_passed_or_returned(self):
        findings = run_rules("""
            import asyncio

            def kick(tasks, coro):
                tasks.append(asyncio.create_task(coro()))
                return asyncio.create_task(coro())
        """)
        assert findings == []

    def test_quiet_on_task_group_create_task(self):
        findings = run_rules("""
            async def run_all(coro):
                import asyncio
                async with asyncio.TaskGroup() as tg:
                    tg.create_task(coro())
        """)
        assert findings == []

    def test_suppressed(self, tmp_path):
        active, suppressed = run_engine("""
            import asyncio

            def kick(coro):
                asyncio.create_task(coro())  # avilint: disable=AVI007
        """, tmp_path=tmp_path)
        assert active == []
        assert rule_ids(suppressed) == ["AVI007"]


# ---------------------------------------------------------------------------
# AVI008 — blocking calls reachable from async code
# ---------------------------------------------------------------------------

class TestAVI008:
    def test_fires_on_direct_blocking_call(self):
        findings = run_rules("""
            import time

            async def tick():
                time.sleep(0.1)
        """)
        assert rule_ids(findings) == ["AVI008"]
        assert "time.sleep" in findings[0].message
        assert findings[0].symbol == "tick"

    def test_fires_on_builtin_open_in_async(self):
        findings = run_rules("""
            async def slurp(path):
                with open(path) as stream:
                    return stream.read()
        """)
        assert rule_ids(findings) == ["AVI008"]
        assert "open()" in findings[0].message

    def test_fires_through_a_sync_helper(self):
        findings = run_rules("""
            import os

            def _publish(tmp, path):
                os.replace(tmp, path)

            async def persist(tmp, path):
                _publish(tmp, path)
        """)
        assert rule_ids(findings) == ["AVI008"]
        assert "_publish" in findings[0].message
        assert "os.replace" in findings[0].message
        assert findings[0].symbol == "persist"

    def test_fires_through_a_method_chain(self):
        findings = run_rules("""
            import os

            class Store:
                def save(self, path):
                    os.fsync(3)

            class Service:
                def __init__(self, path):
                    self.store = Store()

                async def run(self, path):
                    self.store.save(path)
        """)
        assert rule_ids(findings) == ["AVI008"]
        assert "self.store.save" in findings[0].message

    def test_quiet_on_executor_handoff(self):
        findings = run_rules("""
            import time

            def _work():
                time.sleep(1.0)

            async def handler(loop):
                await loop.run_in_executor(None, _work)
        """)
        assert findings == []

    def test_quiet_on_sync_caller(self):
        findings = run_rules("""
            import time

            def pace():
                time.sleep(0.1)
        """)
        assert findings == []

    def test_quiet_on_await_of_async_callee(self):
        findings = run_rules("""
            async def _helper():
                return 1

            async def outer():
                return await _helper()
        """)
        assert findings == []

    def test_suppressed(self, tmp_path):
        active, suppressed = run_engine("""
            import time

            async def tick():
                time.sleep(0.1)  # avilint: disable=AVI008
        """, tmp_path=tmp_path)
        assert active == []
        assert rule_ids(suppressed) == ["AVI008"]


# ---------------------------------------------------------------------------
# AVI009 — flow-sensitive atomic-persist ordering
# ---------------------------------------------------------------------------

class TestAVI009:
    def test_fires_when_a_branch_skips_the_fsync(self):
        findings = run_rules("""
            import json
            import os

            def publish(path, payload, durable):
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as stream:
                    json.dump(payload, stream)
                    stream.flush()
                    if durable:
                        os.fsync(stream.fileno())
                os.replace(tmp, path)
        """)
        assert "AVI009" in rule_ids(findings)
        messages = [f.message for f in findings
                    if f.rule_id == "AVI009"]
        assert any("no os.fsync()" in m for m in messages)

    def test_fires_on_fsync_without_flush(self):
        findings = run_rules("""
            import json
            import os

            def publish(path, payload):
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as stream:
                    json.dump(payload, stream)
                    os.fsync(stream.fileno())
                os.replace(tmp, path)
        """)
        assert "AVI009" in rule_ids(findings)
        messages = [f.message for f in findings
                    if f.rule_id == "AVI009"]
        assert any("without a preceding flush" in m for m in messages)

    def test_quiet_on_the_full_durable_idiom(self):
        findings = run_rules("""
            import json
            import os

            def publish(path, payload):
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as stream:
                    json.dump(payload, stream)
                    stream.flush()
                    os.fsync(stream.fileno())
                os.replace(tmp, path)
        """)
        assert findings == []

    def test_quiet_on_rename_only_use_of_replace(self):
        findings = run_rules("""
            import os

            def quarantine(shard, graveyard):
                os.replace(shard, graveyard)
        """)
        assert findings == []

    def test_suppressed(self, tmp_path):
        active, suppressed = run_engine("""
            import json
            import os

            def publish(path, payload):
                tmp = f"{path}.tmp.{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as stream:
                    json.dump(payload, stream)
                    stream.flush()
                os.replace(tmp, path)  # avilint: disable=AVI009
        """, tmp_path=tmp_path)
        assert active == []
        assert rule_ids(suppressed) == ["AVI009"]


# ---------------------------------------------------------------------------
# AVI010 — lock discipline and use-after-close
# ---------------------------------------------------------------------------

class TestAVI010:
    def test_fires_when_lock_is_never_released(self):
        findings = run_rules("""
            import fcntl

            def wedge(path):
                stream = open(path, "w")
                fcntl.flock(stream, fcntl.LOCK_EX)
                stream.write("x")
        """)
        assert rule_ids(findings) == ["AVI010"]
        assert "never released" in findings[0].message

    def test_fires_on_happy_path_only_release(self):
        findings = run_rules("""
            import fcntl

            def racy(path):
                stream = open(path, "w")
                fcntl.flock(stream, fcntl.LOCK_EX)
                stream.write("x")
                fcntl.flock(stream, fcntl.LOCK_UN)
                stream.close()
        """)
        assert rule_ids(findings) == ["AVI010"]
        assert "happy path" in findings[0].message

    def test_fires_on_use_after_close(self):
        findings = run_rules("""
            def finish(writer):
                writer.close()
                writer.flush()
        """)
        assert rule_ids(findings) == ["AVI010"]
        assert "after close()" in findings[0].message

    def test_quiet_on_release_in_finally(self):
        findings = run_rules("""
            import fcntl

            def safe(path):
                stream = open(path, "w")
                fcntl.flock(stream, fcntl.LOCK_EX)
                try:
                    stream.write("x")
                finally:
                    fcntl.flock(stream, fcntl.LOCK_UN)
                    stream.close()
        """)
        assert findings == []

    def test_quiet_when_locked_stream_escapes(self):
        findings = run_rules("""
            import fcntl

            def lock_writer(path):
                stream = open(path, "w")
                fcntl.flock(stream, fcntl.LOCK_EX)
                return stream
        """)
        assert findings == []

    def test_quiet_on_caller_owned_subject(self):
        findings = run_rules("""
            import fcntl

            def hold(stream):
                fcntl.flock(stream.fileno(), fcntl.LOCK_EX)
        """)
        assert findings == []

    def test_quiet_on_stats_after_close(self):
        # Sealed-totals accessors are the documented post-close API.
        findings = run_rules("""
            def finish(writer):
                writer.close()
                return writer.stats()
        """)
        assert findings == []

    def test_quiet_when_name_is_rebound_after_close(self):
        findings = run_rules("""
            def rotate(writer, factory):
                writer.close()
                writer = factory()
                writer.write("b")
        """)
        assert findings == []

    def test_quiet_on_branch_where_close_never_happened(self):
        findings = run_rules("""
            def maybe(writer, seal):
                if seal:
                    writer.close()
                else:
                    writer.write("x")
        """)
        assert findings == []

    def test_suppressed(self, tmp_path):
        active, suppressed = run_engine("""
            def finish(writer):
                writer.close()
                writer.flush()  # avilint: disable=AVI010
        """, tmp_path=tmp_path)
        assert active == []
        assert rule_ids(suppressed) == ["AVI010"]


# ---------------------------------------------------------------------------
# AVI011 — perf-counter hygiene (project scope)
# ---------------------------------------------------------------------------

PERF_PATH = "src/avipack/perf.py"


def analyze_pkg(tmp_path, monkeypatch, files):
    """Run the full engine over a synthetic package tree."""
    pkg = tmp_path / "src" / "avipack"
    pkg.mkdir(parents=True, exist_ok=True)
    for name, source in files.items():
        (pkg / name).write_text(textwrap.dedent(source))
    monkeypatch.chdir(tmp_path)
    return AnalysisEngine().analyze_paths([str(tmp_path / "src")])


class TestAVI011:
    def test_fires_on_dead_registrations_standalone(self):
        findings = run_rules("""
            KERNELS = ("solver.solve",)
            COUNTERS = ("results.rows",)
        """, path=PERF_PATH)
        assert rule_ids(findings) == ["AVI011"]
        symbols = sorted(f.symbol for f in findings)
        assert symbols == ["COUNTERS", "KERNELS"]

    def test_fires_on_unregistered_increment(self, tmp_path, monkeypatch):
        result = analyze_pkg(tmp_path, monkeypatch, {
            "perf.py": 'COUNTERS = ("results.rows",)\n',
            "ingest.py": """
                from avipack import perf

                def ingest(n):
                    perf.increment("results.rows", n)
                    perf.increment("results.ghost", n)
            """,
        })
        unregistered = [f for f in result.findings
                        if f.rule_id == "AVI011"
                        and "not declared" in f.message]
        assert len(unregistered) == 1
        assert "results.ghost" in unregistered[0].message
        assert unregistered[0].path == "src/avipack/ingest.py"

    def test_fires_on_registered_but_never_incremented(
            self, tmp_path, monkeypatch):
        result = analyze_pkg(tmp_path, monkeypatch, {
            "perf.py": 'COUNTERS = ("results.rows", "results.unused")\n',
            "ingest.py": """
                from avipack import perf

                def ingest(n):
                    perf.increment("results.rows", n)
            """,
        })
        dead = [f for f in result.findings
                if f.rule_id == "AVI011" and "eternal zero" in f.message]
        assert len(dead) == 1
        assert "results.unused" in dead[0].message
        assert dead[0].path == "src/avipack/perf.py"
        assert dead[0].symbol == "COUNTERS"

    def test_constant_fed_name_resolves_across_modules(
            self, tmp_path, monkeypatch):
        result = analyze_pkg(tmp_path, monkeypatch, {
            "perf.py": 'COUNTERS = ("results.rows",)\n',
            "names.py": 'ROWS = "results.rows"\n',
            "ingest.py": """
                from avipack import perf
                from avipack.names import ROWS

                def ingest(n):
                    perf.increment(ROWS, n)
            """,
        })
        assert [f for f in result.findings
                if f.rule_id == "AVI011"] == []

    def test_dynamic_record_disables_dead_kernel_check(
            self, tmp_path, monkeypatch):
        result = analyze_pkg(tmp_path, monkeypatch, {
            "perf.py": 'KERNELS = ("solver.solve", "solver.assemble")\n',
            "solver.py": """
                from avipack import perf

                def run(kernel_name, wall):
                    perf.record(kernel_name, wall)
            """,
        })
        assert [f for f in result.findings
                if f.rule_id == "AVI011"] == []

    def test_suppressed_inline(self, tmp_path, monkeypatch):
        result = analyze_pkg(tmp_path, monkeypatch, {
            "perf.py": "COUNTERS = ()\n",
            "ingest.py": """
                from avipack import perf

                def ingest(n):
                    perf.increment("results.ghost", n)  # avilint: disable=AVI011
            """,
        })
        assert [f for f in result.findings
                if f.rule_id == "AVI011"] == []
        assert rule_ids(result.suppressed) == ["AVI011"]


# ---------------------------------------------------------------------------
# AVI012 — resource-handle leaks on error paths
# ---------------------------------------------------------------------------

class TestAVI012:
    def test_fires_when_handle_is_never_closed(self):
        findings = run_rules("""
            def read_header(path):
                stream = open(path, "rb")
                data = stream.read(16)
                return data
        """)
        assert rule_ids(findings) == ["AVI012"]
        assert "never closed" in findings[0].message

    def test_fires_on_straight_line_only_close(self):
        findings = run_rules("""
            def copy(path, sink):
                stream = open(path, "rb")
                sink.write(stream.read())
                stream.close()
        """)
        assert rule_ids(findings) == ["AVI012"]
        assert "error" in findings[0].message or \
            "straight-line" in findings[0].message

    def test_fires_on_leaked_mmap(self):
        findings = run_rules("""
            import mmap

            def peek(fileno):
                mapping = mmap.mmap(fileno, 0)
                return bytes(mapping[:16])
        """)
        assert rule_ids(findings) == ["AVI012"]
        assert "mmap.mmap()" in findings[0].message

    def test_quiet_on_close_in_finally(self):
        findings = run_rules("""
            def copy(path, sink):
                stream = open(path, "rb")
                try:
                    sink.write(stream.read())
                finally:
                    stream.close()
        """)
        assert findings == []

    def test_quiet_on_close_in_except(self):
        findings = run_rules("""
            def load(path, parse):
                stream = open(path, "rb")
                try:
                    return parse(stream)
                except ValueError:
                    stream.close()
                    raise
        """)
        assert findings == []

    def test_quiet_on_with_statement(self):
        findings = run_rules("""
            def read_all(path):
                with open(path, "rb") as stream:
                    return stream.read()
        """)
        assert findings == []

    def test_quiet_on_ownership_transfer(self):
        findings = run_rules("""
            import io

            def wrap(path):
                stream = open(path, "rb")
                return io.BufferedReader(stream)
        """)
        assert findings == []

    def test_quiet_on_immediate_close(self):
        findings = run_rules("""
            def touch(path):
                stream = open(path, "w")
                stream.close()
        """)
        assert findings == []

    def test_suppressed(self, tmp_path):
        active, suppressed = run_engine("""
            def read_header(path):
                stream = open(path, "rb")  # avilint: disable=AVI012
                return stream.read(16)
        """, tmp_path=tmp_path)
        assert active == []
        assert rule_ids(suppressed) == ["AVI012"]


# ---------------------------------------------------------------------------
# Baseline interaction (one representative rule per class of finding)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("source, path", [
    ("def set_power(power_watts: float) -> None:\n    pass\n", IN_PACKAGE),
    ("def f(x):\n    raise ValueError('bad')\n", IN_PACKAGE),
    ("import time\n\ndef now():\n    return time.time()\n", IN_SWEEP),
])
def test_baselined_finding_does_not_gate(source, path):
    ctx = FileContext.parse(path, source)
    engine = AnalysisEngine()
    raw = []
    for rule in engine.rules:
        raw.extend(rule.check(ctx))
    assert raw, "fixture must produce at least one finding"

    baseline = Baseline(tuple(raw))
    active, baselined = baseline.partition(raw)
    assert active == []
    assert baselined == raw

    # A *new* identical finding in a different symbol still gates.
    mutated = [finding for finding in raw]
    moved = mutated[0].__class__(**{**mutated[0].to_dict(),
                                    "severity": mutated[0].severity,
                                    "symbol": "other_function"})
    active, _ = baseline.partition([moved])
    assert active == [moved]
