"""Disk-budget primitives: usage probe, watermark latch, policy."""

import os

import pytest

from avipack.errors import InputError
from avipack.retention import DiskBudget, RetentionPolicy, directory_bytes


class TestDirectoryBytes:
    def test_sums_nested_regular_files(self, tmp_path):
        (tmp_path / "a.bin").write_bytes(b"x" * 100)
        nested = tmp_path / "deep" / "deeper"
        nested.mkdir(parents=True)
        (nested / "b.bin").write_bytes(b"y" * 23)
        assert directory_bytes(str(tmp_path)) == 123

    def test_missing_directory_is_zero(self, tmp_path):
        assert directory_bytes(str(tmp_path / "absent")) == 0

    def test_empty_directory_is_zero(self, tmp_path):
        assert directory_bytes(str(tmp_path)) == 0

    def test_matches_os_walk_over_a_store_like_tree(self, tmp_path):
        files = {"j000001.journal.jsonl": 512,
                 "j000001.manifest.json": 64,
                 "j000001.results/shard-000000.rows": 2048,
                 "j000001.results/shard-000000.blobs": 4096}
        for rel, size in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"z" * size)
        assert directory_bytes(str(tmp_path)) == sum(files.values())


class TestDiskBudget:
    def test_validation(self):
        with pytest.raises(InputError):
            DiskBudget(0, 0)
        with pytest.raises(InputError):
            DiskBudget(-5, 0)
        with pytest.raises(InputError):
            DiskBudget(100, 101)  # low above high
        with pytest.raises(InputError):
            DiskBudget(100, -1)

    def test_latches_at_high_releases_at_low(self):
        budget = DiskBudget(high_bytes=100, low_bytes=50)
        assert budget.observe(99) is False
        assert budget.observe(100) is True  # >= high latches
        # Inside the hysteresis band the latch holds: admission must
        # not flap while retention is still reclaiming.
        assert budget.observe(75) is True
        assert budget.observe(51) is True
        assert budget.observe(50) is False  # <= low releases
        assert budget.observe(75) is False  # band entered from below
        assert budget.disk_low is False

    def test_last_usage_tracks_every_sample(self):
        budget = DiskBudget(high_bytes=100, low_bytes=50)
        budget.observe(42)
        assert budget.last_usage == 42
        budget.observe(7)
        assert budget.last_usage == 7

    def test_degenerate_equal_watermarks(self):
        # high == low is legal: a pure threshold with no band.  At the
        # exact threshold the high test wins — degraded, never flapping.
        budget = DiskBudget(high_bytes=10, low_bytes=10)
        assert budget.observe(10) is True
        assert budget.observe(10) is True
        assert budget.observe(9) is False


class TestRetentionPolicy:
    def test_default_policy_is_unbounded(self):
        policy = RetentionPolicy()
        assert policy.keep_last_n is None
        assert policy.max_age_s is None
        assert policy.max_bytes is None
        assert policy.bounded is False

    @pytest.mark.parametrize("clause", [
        {"keep_last_n": 3},
        {"max_age_s": 60.0},
        {"max_bytes": 10 ** 9},
    ])
    def test_any_clause_makes_it_bounded(self, clause):
        assert RetentionPolicy(**clause).bounded is True

    @pytest.mark.parametrize("clause", [
        {"keep_last_n": -1},
        {"max_age_s": -0.5},
        {"max_bytes": -1},
    ])
    def test_negative_clauses_are_rejected(self, clause):
        with pytest.raises(InputError):
            RetentionPolicy(**clause)

    def test_zero_clauses_are_legal(self):
        # keep nothing / evict immediately are valid operator choices.
        policy = RetentionPolicy(keep_last_n=0, max_age_s=0.0, max_bytes=0)
        assert policy.bounded is True
