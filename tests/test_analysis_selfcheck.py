"""Self-check: the analyzer over the repo's own ``src/`` must be clean.

This is the same gate CI runs (``python -m avipack.analysis src``): zero
non-baselined findings against the checked-in ``analysis-baseline.json``.
"""

from __future__ import annotations

import pathlib

import pytest

from avipack.analysis import AnalysisEngine, Baseline

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "avipack"
BASELINE = REPO_ROOT / "analysis-baseline.json"


@pytest.fixture(scope="module")
def result(monkeypatch_module):
    monkeypatch_module.chdir(REPO_ROOT)
    baseline = Baseline.load(str(BASELINE))
    engine = AnalysisEngine(baseline=baseline)
    return engine.analyze_paths([str(SRC)])


@pytest.fixture(scope="module")
def monkeypatch_module():
    from _pytest.monkeypatch import MonkeyPatch

    patcher = MonkeyPatch()
    yield patcher
    patcher.undo()


def test_src_has_zero_non_baselined_findings(result):
    rendered = "\n".join(finding.render() for finding in result.findings)
    assert result.findings == [], f"active findings in src:\n{rendered}"
    assert result.errors == []
    assert result.clean


def test_src_analysis_covers_the_package(result):
    # Guard against the gate silently analyzing nothing.
    assert result.files_analyzed >= 50


def test_checked_in_baseline_is_empty(result):
    # PR 9 fixed every real finding instead of grandfathering it; the
    # gate must stay at zero debt (new findings get fixed, not listed).
    assert len(Baseline.load(str(BASELINE))) == 0
