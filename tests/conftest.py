"""Shared fixtures for the avipack test suite."""

import pytest

from avipack.packaging.seb import (
    SeatElectronicsBox,
    SebConfiguration,
    carbon_composite_seat_structure,
)
from avipack.mechanical.random_vibration import PowerSpectralDensity
from avipack.twophase.heatpipe import standard_copper_water_heatpipe
from avipack.twophase.loopheatpipe import cosee_ammonia_lhp


@pytest.fixture(scope="session")
def seb():
    """The default COSEE seat electronics box."""
    return SeatElectronicsBox()


@pytest.fixture(scope="session")
def seb_natural():
    return SebConfiguration(cooling="natural")


@pytest.fixture(scope="session")
def seb_lhp():
    return SebConfiguration(cooling="hp_lhp")


@pytest.fixture(scope="session")
def seb_tilted():
    return SebConfiguration(cooling="hp_lhp", tilt_deg=22.0)


@pytest.fixture(scope="session")
def seb_carbon():
    return SebConfiguration(cooling="hp_lhp",
                            structure=carbon_composite_seat_structure())


@pytest.fixture(scope="session")
def copper_water_hp():
    return standard_copper_water_heatpipe()


@pytest.fixture(scope="session")
def cosee_lhp():
    return cosee_ammonia_lhp()


@pytest.fixture
def flat_psd():
    """A flat 0.01 g²/Hz PSD from 10 to 2000 Hz."""
    return PowerSpectralDensity(((10.0, 0.01), (2000.0, 0.01)))
