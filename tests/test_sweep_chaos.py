"""Chaos suite: the sweep engine under seeded fault injection.

Every test drives the *production* runner with a deterministic
:class:`~avipack.resilience.FaultPlan`: convergence failures, model-range
errors, worker crashes, hangs and corrupted cache entries are injected at
the instrumented sites, and the runner must classify every candidate
(recovered / degraded / failed) without dying — with identical survivor
rankings serial vs parallel.
"""

import math
import os
import time

import pytest

from avipack.errors import ConvergenceError
from avipack.resilience import (
    FaultPlan,
    FaultSpec,
    NO_SUPERVISION,
    Supervisor,
    SupervisionPolicy,
)
from avipack.resilience import faults as faults_mod
from avipack.sweep import (
    Candidate,
    CandidateFailure,
    CandidateResult,
    DesignSpace,
    SweepRunner,
    evaluate_candidate,
    render_sweep_document,
)
from avipack.thermal.network import ThermalNetwork

#: >= 100 candidates, kept individually cheap (2 modules, 4 components).
CHAOS_SPACE = DesignSpace(
    {
        "power_per_module": tuple(float(p) for p in range(8, 44, 2)),
        "series_fraction": (0.0, 0.3, 0.6),
        "tim_name": ("standard_grease", "nanopack_cnt_array"),
    },
    base=Candidate(n_modules=2, n_components=4),
)

#: All five fault kinds at once, seeded — decisions are a pure function
#: of (seed, site, kind, candidate index), so serial and parallel runs
#: fault identically.
CHAOS_PLAN = FaultPlan(
    specs=(
        FaultSpec("levels.level2", "convergence", rate=0.15),
        FaultSpec("levels.level3", "model_range", rate=0.12),
        FaultSpec("sweep.worker", "crash", rate=0.04),
        FaultSpec("sweep.worker", "hang", rate=0.04),
        FaultSpec("sweep.cache", "cache_corrupt", rate=0.25),
    ),
    seed=2024,
    hang_seconds=0.2,
)

#: Error types only the injector produces.
_INJECTED_FAILURES = {"WorkerCrashError", "WatchdogTimeout"}


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults_mod.uninstall()
    yield
    assert faults_mod.active() is None, \
        "sweep must uninstall its fault plan on exit"


def classification(report):
    """Per-candidate (kind, error_type, degraded, recovered) signature."""
    signature = []
    for outcome in report.outcomes:
        if isinstance(outcome, CandidateFailure):
            signature.append(("failure", outcome.error_type, False, False))
        else:
            signature.append(("result", "", outcome.degraded,
                              outcome.recovered))
    return signature


class TestChaosSweep:
    @pytest.fixture(scope="class")
    def serial(self):
        return SweepRunner(parallel=False,
                           faults=CHAOS_PLAN).run(CHAOS_SPACE)

    @pytest.fixture(scope="class")
    def parallel(self):
        return SweepRunner(parallel=True, max_workers=4, timeout_s=10.0,
                           faults=CHAOS_PLAN).run(CHAOS_SPACE)

    def test_space_is_large_enough(self):
        assert CHAOS_SPACE.size >= 100

    def test_runner_survives_and_classifies_everything(self, serial):
        assert serial.n_candidates == CHAOS_SPACE.size
        for outcome in serial.outcomes:
            assert isinstance(outcome, (CandidateResult, CandidateFailure))

    def test_at_least_a_fifth_of_candidates_faulted(self, serial):
        touched = set()
        for outcome in serial.outcomes:
            if isinstance(outcome, CandidateFailure):
                if outcome.error_type in _INJECTED_FAILURES:
                    touched.add(outcome.index)
            else:
                if (outcome.recovered or outcome.degraded
                        or outcome.cache_corrupt):
                    touched.add(outcome.index)
        assert len(touched) >= 0.2 * serial.n_candidates

    def test_all_fault_kinds_observed(self, serial):
        failures = {f.error_type for f in serial.failures}
        assert "WorkerCrashError" in failures          # crash
        assert "WatchdogTimeout" in failures           # hang
        assert serial.n_recovered > 0                  # convergence, retried
        assert serial.n_degraded > 0                   # model_range, degraded
        assert serial.cache.corrupt > 0                # cache_corrupt

    def test_recovered_candidates_carry_trails(self, serial):
        recovered = [r for r in serial.results if r.recovered]
        assert recovered
        for result in recovered:
            assert any(trail.recovered for trail in result.recovery)
            trail = result.recovery[0]
            assert trail.attempts[0].error_type  # the failed first attempt

    def test_degraded_candidates_still_rank(self, serial):
        degraded = [r for r in serial.results if r.degraded]
        assert degraded
        # degraded candidates keep full margin data (level-2 fidelity)
        for result in degraded:
            assert result.worst_board_c > 0.0

    def test_serial_parallel_survivor_parity(self, serial, parallel):
        assert classification(serial) == classification(parallel)
        assert [r.index for r in serial.ranked()] \
            == [r.index for r in parallel.ranked()]
        assert [f.index for f in serial.failures] \
            == [f.index for f in parallel.failures]

    def test_parallel_run_reports_parallel_mode(self, parallel):
        assert parallel.mode.startswith("parallel")

    def test_chaos_report_renders_recovery_section(self, serial):
        text = render_sweep_document(serial)
        assert "4. RECOVERY" in text
        assert "recovered" in text
        assert "degraded" in text

    def test_rerun_is_deterministic(self, serial):
        again = SweepRunner(parallel=False,
                            faults=CHAOS_PLAN).run(CHAOS_SPACE)
        assert classification(serial) == classification(again)


class TestFaultFreePlanIsInert:
    def test_sweep_without_plan_matches_chaosless_run(self):
        space = DesignSpace({"power_per_module": (10.0, 20.0)},
                            base=Candidate(n_modules=2, n_components=4))
        plain = SweepRunner(parallel=False).run(space)
        assert plain.n_recovered == 0
        assert plain.n_degraded == 0
        assert plain.cache.corrupt == 0
        assert all(isinstance(o, CandidateResult) for o in plain.outcomes)


class TestEnrichedFailures:
    def test_build_failure_carries_traceback(self):
        outcome = evaluate_candidate((0, Candidate(power_per_module=-1.0),
                                      False))
        assert isinstance(outcome, CandidateFailure)
        assert outcome.stage == "build"
        assert "Traceback" in outcome.traceback
        assert "InputError" in outcome.traceback

    def test_unsupervised_convergence_failure_exposes_solver_state(self):
        plan = FaultPlan(specs=(FaultSpec("levels.level2", "convergence"),),
                         seed=7)
        faults_mod.install(plan)
        try:
            outcome = evaluate_candidate(
                (0, Candidate(n_modules=2, n_components=4), False,
                 NO_SUPERVISION, plan))
        finally:
            faults_mod.uninstall()
        assert isinstance(outcome, CandidateFailure)
        assert outcome.error_type == "ConvergenceError"
        assert outcome.stage == "evaluate"
        assert "iterations" in outcome.details
        assert "residual" in outcome.details

    def test_supervised_run_recovers_the_same_fault(self):
        plan = FaultPlan(specs=(FaultSpec("levels.level2", "convergence"),),
                         seed=7)
        outcome = evaluate_candidate(
            (0, Candidate(n_modules=2, n_components=4), False,
             SupervisionPolicy(), plan))
        faults_mod.uninstall()
        assert isinstance(outcome, CandidateResult)
        assert outcome.recovered
        assert outcome.recovery[0].site == "levels.level2"


class TestWatchdog:
    def test_hung_worker_is_abandoned_and_sweep_completes(self):
        plan = FaultPlan(
            specs=(FaultSpec("sweep.worker", "hang", scopes=(2,)),),
            hang_seconds=30.0)
        candidates = [Candidate(n_modules=2, n_components=4,
                                power_per_module=10.0 + i)
                      for i in range(6)]
        report = SweepRunner(parallel=True, max_workers=2, timeout_s=1.0,
                             faults=plan).run(candidates)
        assert report.n_candidates == 6
        assert report.n_timeouts == 1
        timeout = report.failures[0]
        assert timeout.index == 2
        assert timeout.error_type == "WatchdogTimeout"
        assert timeout.stage == "watchdog"
        others = [o for o in report.outcomes if o.index != 2]
        assert all(isinstance(o, CandidateResult) for o in others)

    def test_short_hang_classified_in_process(self):
        # The hang out-waits nothing: the worker's own injected
        # WatchdogTimeout comes back as a structured failure before the
        # parent-side watchdog has to act.
        plan = FaultPlan(
            specs=(FaultSpec("sweep.worker", "hang", scopes=(1,)),),
            hang_seconds=0.05)
        candidates = [Candidate(n_modules=2, n_components=4,
                                power_per_module=10.0 + i)
                      for i in range(3)]
        report = SweepRunner(parallel=True, max_workers=2, timeout_s=10.0,
                             faults=plan).run(candidates)
        assert report.n_timeouts == 1
        assert report.failures[0].index == 1
        assert report.failures[0].stage == "worker"

    def test_timeout_validation(self):
        from avipack.errors import InputError
        with pytest.raises(InputError):
            SweepRunner(timeout_s=0.0)


class TestBrokenPoolRecovery:
    def test_watchdog_path_retries_unfinished_serially(self):
        plan = FaultPlan(
            specs=(FaultSpec("sweep.worker", "crash", scopes=(2,)),))
        candidates = [Candidate(n_modules=2, n_components=4,
                                power_per_module=10.0 + i)
                      for i in range(8)]
        report = SweepRunner(parallel=True, max_workers=2, timeout_s=10.0,
                             faults=plan).run(candidates)
        assert report.n_candidates == 8
        assert [f.index for f in report.failures] == [2]
        assert report.failures[0].error_type == "WorkerCrashError"
        assert "broken pool" in report.mode

    def test_bulk_path_falls_back_to_full_serial(self):
        plan = FaultPlan(
            specs=(FaultSpec("sweep.worker", "crash", scopes=(1,)),))
        candidates = [Candidate(n_modules=2, n_components=4,
                                power_per_module=10.0 + i)
                      for i in range(4)]
        report = SweepRunner(parallel=True, max_workers=2,
                             faults=plan).run(candidates)
        assert report.n_candidates == 4
        assert [f.index for f in report.failures] == [1]
        assert report.failures[0].error_type == "WorkerCrashError"
        assert report.mode.startswith("serial (pool fallback")


def _ill_conditioned_evaluator(task):
    """Sweep-compatible evaluator: each candidate is a raw supervised
    network solve whose conditioning worsens with the power budget."""
    index, candidate, _use_cache, policy, _plan = task
    k = 0.04 + 0.002 * candidate.power_per_module
    net = ThermalNetwork()
    net.add_node("chip", heat_load=50.0)
    net.add_node("ambient", fixed_temperature=300.0)
    net.add_conductance(
        "chip", "ambient",
        lambda t_hot, t_cold, k=k: math.exp(k * (t_hot - 350.0)))
    supervisor = Supervisor(policy)
    start = time.perf_counter()
    try:
        solution = supervisor.solve_network(net)
    except ConvergenceError as exc:
        return CandidateFailure(
            index=index, candidate=candidate,
            fingerprint=candidate.fingerprint, stage="network",
            error_type=type(exc).__name__, message=str(exc),
            elapsed_s=time.perf_counter() - start, worker_pid=os.getpid(),
            recovery=supervisor.trails)
    chip_c = solution.temperature("chip") - 273.15
    return CandidateResult(
        index=index, candidate=candidate,
        fingerprint=candidate.fingerprint, compliant=chip_c <= 85.0,
        violations=(), margins={"chip_c": chip_c}, worst_board_c=chip_c,
        recommended_cooling=None, declared_cooling_feasible=True,
        cost_rank=float(index), elapsed_s=time.perf_counter() - start,
        worker_pid=os.getpid(), cache_hits=0, cache_misses=0,
        recovery=supervisor.trails)


class TestIllConditionedNetworkInSweep:
    """The acceptance scenario: a network that fails a bare ``solve()``
    is solved automatically by the default escalation policy, and its
    recovery trail is visible in the rendered sweep report."""

    @pytest.fixture(scope="class")
    def report(self):
        candidates = [Candidate(power_per_module=float(p))
                      for p in (10.0, 25.0, 40.0)]
        return SweepRunner(parallel=False,
                           evaluator=_ill_conditioned_evaluator,
                           use_cache=False).run(candidates)

    def test_bare_solve_fails_on_the_hard_candidate(self):
        k = 0.04 + 0.002 * 40.0  # the steepest candidate's conditioning
        net = ThermalNetwork()
        net.add_node("chip", heat_load=50.0)
        net.add_node("ambient", fixed_temperature=300.0)
        net.add_conductance(
            "chip", "ambient",
            lambda t_hot, t_cold: math.exp(k * (t_hot - 350.0)))
        with pytest.raises(ConvergenceError):
            net.solve()

    def test_escalation_solves_every_candidate(self, report):
        assert not report.failures
        for result in report.results:
            assert result.worst_board_c == pytest.approx(350.0 - 273.15,
                                                         abs=0.5)

    def test_hard_candidates_recovered_via_ladder(self, report):
        assert report.n_recovered >= 1
        hard = report.outcomes[2]
        assert hard.recovered
        trail = hard.recovery[0]
        assert trail.site == "thermal.network.solve"
        assert trail.attempts[0].error_type == "ConvergenceError"
        assert trail.attempts[-1].ok

    def test_trail_visible_in_rendered_report(self, report):
        text = render_sweep_document(report)
        assert "4. RECOVERY" in text
        assert "thermal.network.solve" in text
        assert "failed(ConvergenceError)" in text
