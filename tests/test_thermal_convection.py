"""Tests for convection correlations against textbook behaviour."""

import pytest

from avipack.errors import InputError, ModelRangeError
from avipack.materials.fluids import air_properties
from avipack.thermal.convection import (
    air_outlet_temperature,
    duct_velocity,
    fin_efficiency,
    forced_convection_conductance,
    forced_convection_duct,
    forced_convection_flat_plate,
    heat_sink_conductance,
    natural_convection_conductance,
    natural_convection_enclosure,
    natural_convection_horizontal_cylinder,
    natural_convection_horizontal_plate_down,
    natural_convection_horizontal_plate_up,
    natural_convection_vertical_plate,
    rayleigh_number,
    reynolds_number,
)


@pytest.fixture
def air():
    return air_properties(300.0)


class TestDimensionless:
    def test_reynolds_magnitude(self, air):
        # 10 m/s over 0.1 m in air: Re ~ 6.3e4.
        assert reynolds_number(air, 10.0, 0.1) == pytest.approx(6.3e4,
                                                                rel=0.05)

    def test_rayleigh_magnitude(self, air):
        # 20 K over 0.1 m at 300 K: Ra = g.beta.dT.L^3/(nu.alpha) ~ 1.9e6.
        assert rayleigh_number(air, 20.0, 0.1) == pytest.approx(1.9e6,
                                                                rel=0.1)

    def test_rayleigh_zero_dt(self, air):
        assert rayleigh_number(air, 0.0, 0.1) == 0.0

    def test_invalid_length(self, air):
        with pytest.raises(InputError):
            reynolds_number(air, 1.0, -0.1)


class TestNaturalConvection:
    def test_vertical_plate_magnitude(self, air):
        # 30 K over a 0.2 m plate: h ~ 4-6 W/m2K.
        h = natural_convection_vertical_plate(air, 30.0, 0.2)
        assert 3.0 < h < 7.0

    def test_h_grows_with_delta_t(self, air):
        assert natural_convection_vertical_plate(air, 50.0, 0.2) \
            > natural_convection_vertical_plate(air, 10.0, 0.2)

    def test_up_beats_down(self, air):
        up = natural_convection_horizontal_plate_up(air, 30.0, 0.2, 0.2)
        down = natural_convection_horizontal_plate_down(air, 30.0, 0.2, 0.2)
        assert up > down

    def test_cylinder_magnitude(self, air):
        # 30 mm rod at 30 K: h ~ 6-9 W/m2K.
        h = natural_convection_horizontal_cylinder(air, 30.0, 0.03)
        assert 4.0 < h < 11.0

    def test_enclosure_conduction_floor(self, air):
        # Tiny Rayleigh -> Nu = 1 -> h = k/gap.
        h = natural_convection_enclosure(air, 0.01, 0.005, 0.1)
        assert h == pytest.approx(air.conductivity / 0.005, rel=1e-6)

    def test_enclosure_aspect_validated(self, air):
        with pytest.raises(ModelRangeError):
            natural_convection_enclosure(air, 10.0, 0.2, 0.1)

    def test_zero_dt_gives_zero(self, air):
        assert natural_convection_vertical_plate(air, 0.0, 0.2) == 0.0


class TestForcedConvection:
    def test_flat_plate_laminar_magnitude(self, air):
        # 2 m/s over 0.1 m: laminar, h ~ 10-15 W/m2K.
        h = forced_convection_flat_plate(air, 2.0, 0.1)
        assert 8.0 < h < 20.0

    def test_flat_plate_turbulent_beats_laminar(self, air):
        h_slow = forced_convection_flat_plate(air, 2.0, 1.0)
        h_fast = forced_convection_flat_plate(air, 30.0, 1.0)
        assert h_fast > 3.0 * h_slow

    def test_duct_laminar_constant_nu(self, air):
        # Below Re 2300 the laminar Nu is constant: h = 7.54 k / Dh.
        h = forced_convection_duct(air, 0.5, 0.005)
        assert h == pytest.approx(7.54 * air.conductivity / 0.005,
                                  rel=1e-6)

    def test_duct_turbulent_scaling(self, air):
        # Dittus-Boelter: h ~ V^0.8.
        h1 = forced_convection_duct(air, 10.0, 0.01)
        h2 = forced_convection_duct(air, 20.0, 0.01)
        assert h2 / h1 == pytest.approx(2.0 ** 0.8, rel=0.01)

    def test_duct_velocity(self, air):
        v = duct_velocity(0.01, air, 1e-3)
        assert v == pytest.approx(0.01 / (air.density * 1e-3))

    def test_outlet_temperature(self):
        out = air_outlet_temperature(313.15, 100.0, 0.01, 1006.0)
        assert out == pytest.approx(313.15 + 100.0 / 10.06)

    def test_outlet_requires_positive_flow(self):
        with pytest.raises(InputError):
            air_outlet_temperature(313.15, 100.0, 0.0)


class TestFins:
    def test_efficiency_bounds(self):
        eta = fin_efficiency(0.02, 0.001, 200.0, 50.0)
        assert 0.0 < eta <= 1.0

    def test_short_fin_near_unity(self):
        assert fin_efficiency(0.001, 0.002, 400.0, 5.0) > 0.99

    def test_long_poor_fin_inefficient(self):
        assert fin_efficiency(0.2, 0.0005, 5.0, 50.0) < 0.3

    def test_heat_sink_conductance_grows_with_fins(self):
        base = dict(base_area=0.01, fin_height=0.02, fin_thickness=0.001,
                    fin_length=0.05, conductivity=200.0,
                    h_coefficient=20.0)
        g0 = heat_sink_conductance(n_fins=0, **base)
        g10 = heat_sink_conductance(n_fins=10, **base)
        assert g10 > 2.5 * g0

    def test_heat_sink_invalid_fin_count(self):
        with pytest.raises(InputError):
            heat_sink_conductance(0.01, -1, 0.02, 0.001, 0.05, 200.0, 20.0)


class TestNetworkCallables:
    def test_natural_callable_positive(self):
        g = natural_convection_conductance(0.1, 0.2)
        assert g(330.0, 300.0) > 0.0

    def test_natural_callable_grows_with_dt(self):
        g = natural_convection_conductance(0.1, 0.2)
        assert g(350.0, 300.0) > g(310.0, 300.0)

    def test_natural_callable_orientations(self):
        for orientation in ("vertical", "horizontal_up",
                            "horizontal_down", "cylinder"):
            g = natural_convection_conductance(0.1, 0.05,
                                               orientation=orientation)
            assert g(330.0, 300.0) > 0.0

    def test_natural_callable_bad_orientation(self):
        with pytest.raises(InputError):
            natural_convection_conductance(0.1, 0.2, orientation="sideways")

    def test_altitude_derates_natural_convection(self):
        sea = natural_convection_conductance(0.1, 0.2)
        cruise = natural_convection_conductance(0.1, 0.2,
                                                pressure=30_000.0)
        assert cruise(330.0, 300.0) < sea(330.0, 300.0)

    def test_forced_callable(self):
        g = forced_convection_conductance(0.05, 5.0, 0.2)
        assert g(330.0, 310.0) > 0.0

    def test_forced_duct_callable(self):
        g = forced_convection_conductance(0.05, 5.0, 0.005, duct=True)
        assert g(330.0, 310.0) > 0.0
