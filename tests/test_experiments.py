"""Tests for the canned experiment builders (paper figures and claims)."""

import pytest

from avipack.experiments.cosee import (
    fig10_configurations,
    fig10_curves,
    measure_claims,
    measure_composite_claims,
)
from avipack.experiments.nanopack import (
    TARGETS,
    characterize_material,
    design_nanopack_adhesives,
    electrical_campaign,
    hnc_interface_study,
)


class TestFig10:
    def test_three_configurations(self):
        assert set(fig10_configurations()) == {
            "without_lhp", "with_lhp_horizontal", "with_lhp_tilt22"}

    def test_curves_monotone(self):
        curves = fig10_curves(powers=(20.0, 40.0, 60.0))
        for name, curve in curves.items():
            deltas = [d for _p, d in curve]
            assert deltas == sorted(deltas), name

    def test_without_lhp_curve_truncated(self):
        curves = fig10_curves(powers=(20.0, 40.0, 60.0, 80.0, 100.0))
        assert len(curves["without_lhp"]) \
            < len(curves["with_lhp_horizontal"])

    def test_lhp_always_cooler(self):
        curves = fig10_curves(powers=(20.0, 40.0))
        for (p1, d_without), (p2, d_with) in zip(
                curves["without_lhp"], curves["with_lhp_horizontal"]):
            assert d_with < d_without

    def test_tilt_between_curves(self):
        curves = fig10_curves(powers=(40.0, 80.0))
        for (_p, d_h), (_p2, d_t) in zip(
                curves["with_lhp_horizontal"], curves["with_lhp_tilt22"]):
            assert d_t >= d_h


class TestClaims:
    def test_aluminum_claims_shape(self):
        claims = measure_claims()
        assert claims.capability_increase_pct \
            == pytest.approx(150.0, abs=40.0)
        assert claims.temperature_drop_at_40w \
            == pytest.approx(32.0, abs=8.0)
        assert claims.lhp_heat_at_capability \
            == pytest.approx(58.0, rel=0.15)

    def test_composite_claims_shape(self):
        claims = measure_composite_claims()
        assert claims.capability_increase_pct \
            == pytest.approx(80.0, abs=30.0)
        assert claims.temperature_drop_at_40w \
            == pytest.approx(20.0, abs=8.0)

    def test_composite_below_aluminum(self):
        alu = measure_claims()
        composite = measure_composite_claims()
        assert composite.capability_with_lhp < alu.capability_with_lhp
        assert composite.temperature_drop_at_40w \
            < alu.temperature_drop_at_40w


class TestNanopackDesign:
    def test_three_adhesives_designed(self):
        designs = design_nanopack_adhesives()
        assert len(designs) == 3
        for design in designs:
            assert design.achieved_conductivity == pytest.approx(
                design.target_conductivity, rel=1e-3)

    def test_targets_match_paper(self):
        assert TARGETS["silver_flake_mono_epoxy"] == pytest.approx(6.0)
        assert TARGETS["silver_sphere_multi_epoxy"] == pytest.approx(9.5)
        assert TARGETS["metal_polymer_composite"] == pytest.approx(20.0)

    def test_designs_electrically_conductive(self):
        # All three load silver past percolation.
        for design in design_nanopack_adhesives():
            assert design.electrically_conductive

    def test_loadings_physically_plausible(self):
        for design in design_nanopack_adhesives():
            assert 0.2 < design.filler_loading < 0.64


class TestHncStudy:
    def test_majority_exceed_20pct_blt_reduction(self):
        # "reduce the final bond line thickness by > 20% for the majority
        # of TIMs on cm2 interfaces".
        studies = hnc_interface_study()
        reductions = [s.blt_reduction_pct for s in studies]
        majority = sum(1 for r in reductions if r > 20.0)
        assert majority > len(reductions) / 2

    def test_hnc_never_hurts(self):
        for study in hnc_interface_study():
            assert study.resistance_hnc_kmm2 <= study.resistance_flat_kmm2

    def test_some_material_meets_project_target(self):
        studies = hnc_interface_study()
        assert any(s.meets_target_hnc for s in studies)

    def test_baseline_grease_misses_target(self):
        studies = {s.material_name: s for s in hnc_interface_study()}
        assert not studies["standard_grease"].meets_target_flat


class TestD5470Campaign:
    def test_characterization_recovers_9p5(self):
        result = characterize_material("nanopack_silver_sphere_epoxy",
                                       seed=11)
        assert result.conductivity == pytest.approx(9.5, rel=0.25)

    def test_characterization_recovers_20(self):
        result = characterize_material("nanopack_metal_polymer_composite",
                                       seed=11)
        assert result.conductivity == pytest.approx(20.0, rel=0.35)

    def test_electrical_campaign_covers_conductive_tims(self):
        results = electrical_campaign()
        assert "nanopack_silver_flake_epoxy" in results
        assert "standard_grease" not in results
        for resistance in results.values():
            assert resistance >= 50e-6  # instrument floor
