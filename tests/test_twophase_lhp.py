"""Tests for the loop heat pipe model."""

from dataclasses import replace

import pytest

from avipack.errors import InputError, OperatingLimitError
from avipack.twophase.loopheatpipe import (
    LoopHeatPipe,
    TransportLine,
    cosee_ammonia_lhp,
)

T_OP = 320.0


class TestTransportLine:
    def test_laminar_drop_linear_in_flow(self):
        line = TransportLine(3e-3, 0.5)
        dp1 = line.laminar_pressure_drop(1e-5, 600.0, 2e-4)
        dp2 = line.laminar_pressure_drop(2e-5, 600.0, 2e-4)
        assert dp2 == pytest.approx(2.0 * dp1)

    def test_zero_flow(self):
        line = TransportLine(3e-3, 0.5)
        assert line.laminar_pressure_drop(0.0, 600.0, 2e-4) == 0.0

    def test_narrow_line_drops_more(self):
        wide = TransportLine(4e-3, 0.5)
        narrow = TransportLine(2e-3, 0.5)
        assert narrow.laminar_pressure_drop(1e-5, 600.0, 2e-4) \
            > wide.laminar_pressure_drop(1e-5, 600.0, 2e-4)

    def test_invalid_geometry(self):
        with pytest.raises(InputError):
            TransportLine(-3e-3, 0.5)


class TestPressureBalance:
    def test_margin_decreases_with_power(self, cosee_lhp):
        m10 = cosee_lhp.capillary_margin(10.0, T_OP)
        m60 = cosee_lhp.capillary_margin(60.0, T_OP)
        assert m60 < m10

    def test_drops_dictionary_complete(self, cosee_lhp):
        drops = cosee_lhp.pressure_drops(30.0, T_OP)
        for key in ("vapor", "liquid", "wick", "gravity",
                    "capillary_max"):
            assert key in drops

    def test_tilt_adds_gravity_head(self, cosee_lhp):
        flat = cosee_lhp.pressure_drops(30.0, T_OP, tilt_deg=0.0)
        tilted = cosee_lhp.pressure_drops(30.0, T_OP, tilt_deg=22.0)
        assert tilted["gravity"] > flat["gravity"]

    def test_downhill_gravity_assists(self, cosee_lhp):
        assisted = cosee_lhp.pressure_drops(30.0, T_OP, tilt_deg=-22.0)
        assert assisted["gravity"] < 0.0


class TestLimits:
    def test_cosee_unit_carries_30w_with_margin(self, cosee_lhp):
        # Each COSEE LHP moved ~29 W; the unit must hold that with margin.
        assert cosee_lhp.max_transport(T_OP) > 50.0

    def test_boiling_limit_binds_for_cosee(self, cosee_lhp):
        assert cosee_lhp.boiling_limit() \
            < cosee_lhp.capillary_limit(T_OP)

    def test_tilt_reduces_capillary_limit(self, cosee_lhp):
        assert cosee_lhp.capillary_limit(T_OP, 22.0) \
            < cosee_lhp.capillary_limit(T_OP, 0.0)

    def test_overload_raises_with_limit_name(self, cosee_lhp):
        q_max = cosee_lhp.max_transport(T_OP)
        with pytest.raises(OperatingLimitError) as excinfo:
            cosee_lhp.temperature_drop(q_max * 1.2, T_OP)
        assert excinfo.value.limit_name in ("capillary", "boiling")

    def test_extreme_elevation_kills_transport(self):
        lhp = cosee_ammonia_lhp(elevation=80.0)
        assert lhp.max_transport(T_OP) == 0.0


class TestThermalModel:
    def test_resistance_magnitude(self, cosee_lhp):
        # Miniature LHPs: 0.05-0.5 K/W saddle to saddle.
        r = cosee_lhp.thermal_resistance(30.0, T_OP)
        assert 0.05 < r < 0.5

    def test_small_delta_t_over_long_distance(self, cosee_lhp):
        # The LHP selling point: 30 W over 0.6 m at < 10 K.
        assert cosee_lhp.temperature_drop(30.0, T_OP) < 10.0

    def test_tilt_raises_resistance(self, cosee_lhp):
        assert cosee_lhp.thermal_resistance(30.0, T_OP, 22.0) \
            > cosee_lhp.thermal_resistance(30.0, T_OP, 0.0)

    def test_conductance_inverse(self, cosee_lhp):
        r = cosee_lhp.thermal_resistance(30.0, T_OP)
        assert cosee_lhp.conductance(30.0, T_OP) == pytest.approx(1.0 / r)

    def test_network_conductance_positive(self, cosee_lhp):
        g = cosee_lhp.network_conductance(power_hint=30.0)
        assert g(T_OP, 300.0) > 0.0

    def test_network_conductance_collapses_out_of_range(self, cosee_lhp):
        g = cosee_lhp.network_conductance(power_hint=30.0)
        # 600 K is far beyond ammonia validity: loop "shuts down".
        assert g(600.0, 300.0) == pytest.approx(1e-4)

    def test_network_conductance_invalid_hint(self, cosee_lhp):
        with pytest.raises(InputError):
            cosee_lhp.network_conductance(power_hint=-1.0)


class TestValidation:
    def test_invalid_areas(self, cosee_lhp):
        with pytest.raises(InputError):
            replace(cosee_lhp, evaporator_area=-1.0)

    def test_invalid_wick_participation(self, cosee_lhp):
        with pytest.raises(InputError):
            replace(cosee_lhp, wick_participation=1.5)

    def test_invalid_tilt(self, cosee_lhp):
        with pytest.raises(InputError):
            cosee_lhp.adverse_head(100.0)

    def test_negative_power(self, cosee_lhp):
        with pytest.raises(InputError):
            cosee_lhp.pressure_drops(-5.0, T_OP)
