"""Tests for component and PCB equipment models."""

import pytest

from avipack.errors import InputError
from avipack.packaging.component import (
    Component,
    get_package,
    make_component,
)
from avipack.packaging.pcb import Pcb, dummy_resistive_pcb
from avipack.units import celsius_to_kelvin


class TestComponent:
    def test_junction_from_case(self):
        comp = make_component("U1", "bga_35mm", 10.0)
        # Rjc = 0.4: Tj = Tcase + 4 K.
        assert comp.junction_temperature(350.0) == pytest.approx(354.0)

    def test_junction_from_board(self):
        comp = make_component("U1", "bga_35mm", 10.0)
        assert comp.junction_temperature_from_board(350.0) \
            == pytest.approx(350.0 + 10.0 * 6.0)

    def test_heat_flux_w_cm2(self):
        # 30 W on 35x35 mm: ~2.45 W/cm2.
        comp = make_component("U1", "bga_35mm", 30.0)
        assert comp.heat_flux_w_cm2 == pytest.approx(30.0 / 12.25,
                                                     rel=1e-6)

    def test_paper_hotspot_class(self):
        # 50 W in a small package: tens of W/cm2 (the paper's crisis).
        comp = make_component("U1", "bga_23mm", 50.0)
        assert comp.heat_flux_w_cm2 > 9.0

    def test_junction_margin_sign(self):
        comp = make_component("U1", "qfp_20mm", 2.0)
        assert comp.junction_margin(celsius_to_kelvin(100.0)) > 0.0
        assert comp.junction_margin(celsius_to_kelvin(130.0)) < 0.0

    def test_unknown_package(self):
        with pytest.raises(InputError):
            make_component("U1", "mystery", 1.0)

    def test_negative_power(self):
        with pytest.raises(InputError):
            Component("U1", get_package("soic_8"), -1.0)


class TestPcb:
    def test_total_power_sums(self):
        board = Pcb(0.2, 0.15)
        board.place(make_component("U1", "bga_35mm", 10.0, (0.05, 0.05)))
        board.place(make_component("U2", "qfp_20mm", 5.0, (0.15, 0.10)))
        assert board.total_power == pytest.approx(15.0)

    def test_off_board_placement_rejected(self):
        board = Pcb(0.2, 0.15)
        with pytest.raises(InputError):
            board.place(make_component("U1", "bga_35mm", 10.0,
                                       (0.5, 0.05)))

    def test_effective_conductivity_anisotropic(self):
        board = Pcb(0.2, 0.15, n_copper_layers=6, copper_coverage=0.6)
        k_xy, k_z = board.effective_conductivity()
        assert k_xy > 10.0 * k_z

    def test_plate_includes_component_mass(self):
        board = Pcb(0.2, 0.15)
        board.place(make_component("U1", "bga_35mm", 10.0, (0.1, 0.07)))
        plate = board.as_plate()
        assert plate.component_mass == pytest.approx(8.0e-3)

    def test_detail_solve_junctions_above_ambient(self):
        board = Pcb(0.16, 0.1)
        board.place(make_component("U1", "bga_23mm", 8.0, (0.08, 0.05)))
        board.place(make_component("U2", "to_220", 3.0, (0.03, 0.03)))
        result = board.solve_detail(h_top=20.0, h_bottom=20.0,
                                    ambient=313.15, nx=20, ny=14)
        assert result.junction_temperatures["U1"] > 313.15
        assert result.junction_temperatures["U2"] > 313.15

    def test_hottest_component_identified(self):
        board = Pcb(0.16, 0.1)
        board.place(make_component("U1", "bga_23mm", 1.0, (0.08, 0.05)))
        board.place(make_component("U2", "to_220", 12.0, (0.04, 0.05)))
        result = board.solve_detail(h_top=20.0, h_bottom=20.0,
                                    ambient=313.15, nx=20, ny=14)
        name, t_j = result.hottest_component()
        assert name == "U2"
        assert t_j == max(result.junction_temperatures.values())

    def test_better_cooling_lowers_junctions(self):
        board = Pcb(0.16, 0.1)
        board.place(make_component("U1", "bga_23mm", 8.0, (0.08, 0.05)))
        weak = board.solve_detail(10.0, 10.0, 313.15, nx=16, ny=10)
        strong = board.solve_detail(100.0, 100.0, 313.15, nx=16, ny=10)
        assert strong.junction_temperatures["U1"] \
            < weak.junction_temperatures["U1"]

    def test_invalid_dimensions(self):
        with pytest.raises(InputError):
            Pcb(-0.1, 0.1)


class TestDummyPcb:
    def test_power_split_equally(self):
        board = dummy_resistive_pcb(0.26, 0.16, 60.0, n_resistors=6)
        assert board.total_power == pytest.approx(60.0)
        powers = {c.power for c in board.components}
        assert len(powers) == 1  # all equal

    def test_resistor_count(self):
        board = dummy_resistive_pcb(0.26, 0.16, 60.0, n_resistors=7)
        assert len(board.components) == 7

    def test_all_on_board(self):
        board = dummy_resistive_pcb(0.26, 0.16, 60.0, n_resistors=9)
        for comp in board.components:
            x, y = comp.position
            assert 0.0 < x < 0.26
            assert 0.0 < y < 0.16

    def test_zero_power_allowed(self):
        board = dummy_resistive_pcb(0.26, 0.16, 0.0)
        assert board.total_power == 0.0

    def test_invalid_resistor_count(self):
        with pytest.raises(InputError):
            dummy_resistive_pcb(0.26, 0.16, 60.0, n_resistors=0)


class TestCopperOptimizer:
    def _board(self, coverage, power=3.0):
        from avipack.packaging.pcb import Pcb

        board = Pcb(0.16, 0.1, n_copper_layers=8,
                    copper_coverage=coverage)
        board.place(make_component("u1", "bga_35mm", power,
                                   (0.08, 0.05)))
        return board

    def test_already_compliant_returns_current(self):
        from avipack.packaging.pcb import optimize_copper_coverage

        board = self._board(0.7, power=1.0)
        coverage = optimize_copper_coverage(
            board, celsius_to_kelvin(40.0), celsius_to_kelvin(125.0))
        assert coverage == pytest.approx(0.7)

    def test_finds_intermediate_coverage(self):
        from avipack.packaging.pcb import Pcb, optimize_copper_coverage

        board = self._board(0.2, power=7.0)
        coverage = optimize_copper_coverage(
            board, celsius_to_kelvin(45.0), celsius_to_kelvin(125.0))
        assert 0.2 < coverage <= 1.0
        # The found coverage actually works.
        fixed = Pcb(0.16, 0.1, n_copper_layers=8,
                    copper_coverage=min(coverage * 1.01, 1.0),
                    components=list(board.components))
        result = fixed.solve_detail(15.0, 15.0,
                                    celsius_to_kelvin(45.0),
                                    nx=20, ny=14)
        assert max(result.junction_temperatures.values()) \
            <= celsius_to_kelvin(125.0) + 0.5

    def test_impossible_case_escalates(self):
        from avipack.packaging.pcb import optimize_copper_coverage
        from avipack.errors import InputError

        board = self._board(0.2, power=40.0)
        with pytest.raises(InputError):
            optimize_copper_coverage(board, celsius_to_kelvin(70.0),
                                     celsius_to_kelvin(125.0))

    def test_empty_board_rejected(self):
        from avipack.packaging.pcb import Pcb, optimize_copper_coverage
        from avipack.errors import InputError

        with pytest.raises(InputError):
            optimize_copper_coverage(Pcb(0.1, 0.1),
                                     celsius_to_kelvin(40.0),
                                     celsius_to_kelvin(125.0))
