"""Tests for PSD handling and Miles' equation."""

import math

import pytest

from avipack.errors import InputError
from avipack.mechanical.random_vibration import (
    PowerSpectralDensity,
    default_q_factor,
    miles_rms_acceleration,
    positive_crossings_per_second,
    rms_displacement_from_acceleration,
    three_sigma,
)


class TestPsd:
    def test_flat_psd_rms(self, flat_psd):
        # grms = sqrt(W * bandwidth) for a flat PSD.
        expected = math.sqrt(0.01 * (2000.0 - 10.0))
        assert flat_psd.rms_g() == pytest.approx(expected, rel=1e-9)

    def test_level_inside_band(self, flat_psd):
        assert flat_psd.level(100.0) == pytest.approx(0.01)

    def test_level_outside_band_zero(self, flat_psd):
        assert flat_psd.level(5.0) == 0.0
        assert flat_psd.level(5000.0) == 0.0

    def test_sloped_segment_interpolation(self):
        psd = PowerSpectralDensity(((10.0, 0.001), (40.0, 0.016)))
        # +6 dB/oct slope: W ~ f^2.
        assert psd.level(20.0) == pytest.approx(0.004, rel=1e-9)

    def test_slope_db_per_octave(self):
        psd = PowerSpectralDensity(((10.0, 0.001), (40.0, 0.016)))
        assert psd.slope_db_per_octave(0) == pytest.approx(6.02, rel=1e-3)

    def test_rms_with_slopes_matches_quadrature(self):
        # Piecewise integral cross-check against numerical quadrature.
        import numpy as np

        psd = PowerSpectralDensity(((10.0, 0.001), (40.0, 0.016),
                                    (500.0, 0.016), (2000.0, 0.001)))
        freqs = np.geomspace(10.0, 2000.0, 200_000)
        numeric = math.sqrt(np.trapezoid([psd.level(float(f)) for f in freqs],
                                     freqs))
        assert psd.rms_g() == pytest.approx(numeric, rel=1e-3)

    def test_scaled(self, flat_psd):
        doubled = flat_psd.scaled(4.0)
        assert doubled.rms_g() == pytest.approx(2.0 * flat_psd.rms_g())

    def test_through_transmissibility_identity(self, flat_psd):
        passed = flat_psd.through_transmissibility(lambda f: 1.0)
        assert passed.rms_g() == pytest.approx(flat_psd.rms_g(), rel=0.01)

    def test_through_transmissibility_attenuation(self, flat_psd):
        halved = flat_psd.through_transmissibility(lambda f: 0.5)
        assert halved.rms_g() == pytest.approx(0.5 * flat_psd.rms_g(),
                                               rel=0.01)

    def test_non_monotonic_frequencies_rejected(self):
        with pytest.raises(InputError):
            PowerSpectralDensity(((100.0, 0.01), (10.0, 0.01)))

    def test_single_point_rejected(self):
        with pytest.raises(InputError):
            PowerSpectralDensity(((100.0, 0.01),))

    def test_negative_level_rejected(self):
        with pytest.raises(InputError):
            PowerSpectralDensity(((10.0, -0.01), (100.0, 0.01)))


class TestMiles:
    def test_formula(self, flat_psd):
        # g_rms = sqrt(pi/2 f Q W).
        expected = math.sqrt(math.pi / 2.0 * 100.0 * 10.0 * 0.01)
        assert miles_rms_acceleration(100.0, 10.0, flat_psd) \
            == pytest.approx(expected, rel=1e-9)

    def test_zero_outside_band(self, flat_psd):
        assert miles_rms_acceleration(5000.0, 10.0, flat_psd) == 0.0

    def test_response_grows_with_q(self, flat_psd):
        assert miles_rms_acceleration(100.0, 25.0, flat_psd) \
            > miles_rms_acceleration(100.0, 10.0, flat_psd)

    def test_invalid_frequency(self, flat_psd):
        with pytest.raises(InputError):
            miles_rms_acceleration(-100.0, 10.0, flat_psd)


class TestDerived:
    def test_displacement_from_acceleration(self):
        # z = a/omega^2: 1 g at 100 Hz -> 24.8 um.
        z = rms_displacement_from_acceleration(1.0, 100.0)
        assert z == pytest.approx(9.80665 / (2 * math.pi * 100.0) ** 2)

    def test_displacement_falls_with_frequency(self):
        assert rms_displacement_from_acceleration(1.0, 400.0) \
            < rms_displacement_from_acceleration(1.0, 100.0)

    def test_three_sigma(self):
        assert three_sigma(2.0) == pytest.approx(6.0)

    def test_three_sigma_negative_rejected(self):
        with pytest.raises(InputError):
            three_sigma(-1.0)

    def test_crossings_equal_frequency(self):
        assert positive_crossings_per_second(123.0) == pytest.approx(123.0)

    def test_default_q_is_sqrt_f(self):
        assert default_q_factor(400.0) == pytest.approx(20.0)
