"""The service's ``results`` op: zero-unpickle analytics per job."""

import os
import shutil
import tempfile

import pytest

from avipack.errors import ServiceError
from avipack.service import (
    ServiceClient,
    ServiceConfig,
    ThreadedService,
)
from avipack.service.protocol import ERROR_CODES, validate_request
from avipack.sweep import DesignSpace, SweepRunner

AXES = {
    "power_per_module": [8.0, 12.0, 16.0, 20.0, 24.0, 28.0],
    "cooling": ["direct_air_flow", "air_flow_through"],
}


def expected_signature(k=None):
    space = DesignSpace(axes={name: tuple(values)
                              for name, values in AXES.items()})
    report = SweepRunner(parallel=False).run(space)
    ranked = report.ranked() if k is None else report.top(k)
    return [(o.fingerprint, o.cost_rank, o.worst_board_c)
            for o in ranked]


@pytest.fixture()
def sockets():
    sock_dir = tempfile.mkdtemp(prefix="avisvc", dir="/tmp")
    yield sock_dir
    shutil.rmtree(sock_dir, ignore_errors=True)


def make_config(sockets, tmp_path, **overrides):
    defaults = dict(
        socket_path=os.path.join(sockets, "r.sock"),
        journal_dir=str(tmp_path / "jobs"),
        parallel=False,
        heartbeat_s=0.1,
        stall_timeout_s=60.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def test_results_op_serves_store_backed_ranking(sockets, tmp_path):
    config = make_config(sockets, tmp_path)
    with ThreadedService(config):
        client = ServiceClient(config.socket_path)
        job_id = client.submit(axes=AXES)["job_id"]
        final = client.wait(job_id, timeout_s=120.0)
        assert final["state"] == "completed"
        assert final["result_store"] is True
        results = client.results(job_id, k=5)
    assert results["n_rows"] == 12
    assert results["n_live"] == 12
    assert results["n_compliant"] == 8
    assert results["quarantined_shards"] == []
    served = [(entry["fingerprint"], entry["cost_rank"],
               entry["worst_board_c"]) for entry in results["top"]]
    assert served == expected_signature(5)
    assert [entry["position"] for entry in results["top"]] == [1, 2, 3,
                                                               4, 5]
    histogram = results["headroom_histogram"]
    assert sum(histogram["counts"]) == 8
    assert len(histogram["edges"]) == len(histogram["counts"]) + 1
    # The per-job store lives beside the journal, named after the job.
    assert os.path.isdir(os.path.join(config.journal_dir,
                                      job_id + ".results"))


def test_results_op_structured_errors(sockets, tmp_path):
    config = make_config(sockets, tmp_path, result_store=False)
    with ThreadedService(config):
        client = ServiceClient(config.socket_path)
        with pytest.raises(ServiceError) as unknown:
            client.results("job-nope")
        assert unknown.value.code == "unknown_job"
        job_id = client.submit(axes=AXES)["job_id"]
        final = client.wait(job_id, timeout_s=120.0)
        assert final["state"] == "completed"
        # Stores disabled: ranking still served via the manifest path,
        # but the results op reports no store, with a structured code.
        assert final["result_store"] is False
        with pytest.raises(ServiceError) as missing:
            client.results(job_id)
        assert missing.value.code == "no_results"
    assert "no_results" in ERROR_CODES


def test_results_request_validation():
    op, _ = validate_request({"op": "results", "job_id": "j1", "k": 3})
    assert op == "results"
    for bad in ({"op": "results"},
                {"op": "results", "job_id": "j1", "k": 0},
                {"op": "results", "job_id": "j1", "k": True},
                {"op": "results", "job_id": "j1", "k": "five"}):
        with pytest.raises(ServiceError):
            validate_request(bad)
