"""Tests for the thermosyphon model and working-fluid selection."""

from dataclasses import replace

import pytest

from avipack.errors import InputError, OperatingLimitError
from avipack.twophase.thermosyphon import Thermosyphon
from avipack.twophase.workingfluid import WorkingFluid, select_fluid

T_OP = 333.15


@pytest.fixture
def syphon():
    return Thermosyphon(
        inner_diameter=8e-3, evaporator_length=0.1,
        adiabatic_length=0.1, condenser_length=0.1,
        fluid=WorkingFluid("water"))


class TestLimits:
    def test_flooding_limit_magnitude(self, syphon):
        # An 8 mm water thermosyphon floods in the hundreds of watts.
        q, name = syphon.max_heat_transport(T_OP)
        assert 100.0 < q < 3000.0

    def test_wider_tube_carries_more(self, syphon):
        wide = replace(syphon, inner_diameter=16e-3)
        assert wide.flooding_limit(T_OP) > syphon.flooding_limit(T_OP)

    def test_underfill_dries_first(self, syphon):
        starved = replace(syphon, fill_ratio=0.1)
        q, name = starved.max_heat_transport(T_OP)
        assert name == "dryout"
        assert q < syphon.flooding_limit(T_OP)

    def test_inclination_reduces_limit(self, syphon):
        tilted = replace(syphon, inclination_deg=60.0)
        assert tilted.flooding_limit(T_OP) < syphon.flooding_limit(T_OP)

    def test_inverted_orientation_fails(self, syphon):
        upside_down = replace(syphon, inclination_deg=85.0)
        with pytest.raises(OperatingLimitError) as excinfo:
            upside_down.flooding_limit(T_OP)
        assert excinfo.value.limit_name == "orientation"


class TestResistances:
    def test_total_resistance_positive(self, syphon):
        assert syphon.thermal_resistance(50.0, T_OP) > 0.0

    def test_delta_t_reasonable(self, syphon):
        # 50 W through a small water thermosyphon: a few K to ~15 K.
        dt = syphon.temperature_drop(50.0, T_OP)
        assert 1.0 < dt < 25.0

    def test_boiling_resistance_falls_with_power(self, syphon):
        # Nucleate boiling improves with flux (dT ~ q^1/3 -> R ~ q^-2/3).
        assert syphon.boiling_resistance(100.0, T_OP) \
            < syphon.boiling_resistance(10.0, T_OP)

    def test_longer_condenser_helps(self, syphon):
        long_cond = replace(syphon, condenser_length=0.3)
        assert long_cond.condensation_resistance(50.0, T_OP) \
            < syphon.condensation_resistance(50.0, T_OP)

    def test_overload_raises(self, syphon):
        q_max, _name = syphon.max_heat_transport(T_OP)
        with pytest.raises(OperatingLimitError):
            syphon.temperature_drop(q_max * 1.5, T_OP)

    def test_zero_power_boiling_rejected(self, syphon):
        with pytest.raises(InputError):
            syphon.boiling_resistance(0.0, T_OP)


class TestValidation:
    def test_invalid_fill(self, syphon):
        with pytest.raises(InputError):
            replace(syphon, fill_ratio=0.01)

    def test_invalid_diameter(self, syphon):
        with pytest.raises(InputError):
            replace(syphon, inner_diameter=-1.0)


class TestWorkingFluidSelection:
    def test_fluid_wrapper_rejects_unknown(self):
        with pytest.raises(InputError):
            WorkingFluid("kerosene")

    def test_operating_range_brackets_validity(self):
        lo, hi = WorkingFluid("ammonia").operating_range()
        assert lo == pytest.approx(200.0, abs=2.0)
        assert hi == pytest.approx(380.0, abs=2.0)

    def test_select_fluid_room_temperature(self):
        # At cabin temperatures with the -55 degC survival rule, water is
        # excluded (frozen) and ammonia's merit wins.
        name, merit = select_fluid(t_operating=320.0)
        assert name == "ammonia"
        assert merit > 0.0

    def test_select_fluid_relaxed_survival_prefers_water(self):
        name, _merit = select_fluid(t_operating=330.0,
                                    t_min_survival=285.0)
        assert name == "water"

    def test_pressure_ceiling_excludes_ammonia(self):
        # Ammonia at 350 K is ~37 bar; capping at 10 bar forces another
        # fluid even with a cold (-18 degC) survival requirement.
        name, _merit = select_fluid(t_operating=350.0,
                                    t_min_survival=255.0,
                                    max_pressure=1.0e6)
        assert name != "ammonia"

    def test_impossible_requirement(self):
        with pytest.raises(InputError):
            select_fluid(t_operating=320.0, t_min_survival=150.0,
                         max_pressure=100.0)

    def test_merit_number_consistency(self):
        fluid = WorkingFluid("water")
        state = fluid.saturation(350.0)
        assert fluid.merit_number(350.0) == pytest.approx(
            state.merit_number())
