"""Tests for the sensitivity (tornado) and Monte-Carlo uncertainty tools."""

import math

import numpy as np
import pytest

from avipack.core.sensitivity import (
    SensitivityStudy,
    one_at_a_time,
    tornado_rows,
)
from avipack.core.uncertainty import (
    Distribution,
    propagate,
)
from avipack.errors import InputError


def quadratic(params):
    """M = 3a + b^2 - analytic elasticities available."""
    return 3.0 * params["a"] + params["b"] ** 2


class TestOneAtATime:
    def test_linear_elasticity_exact(self):
        # M = 3a at b=0-ish: elasticity of a is a*3/M.
        study = one_at_a_time(quadratic, {"a": 2.0, "b": 1.0},
                              relative_step=0.01)
        m0 = 3.0 * 2.0 + 1.0
        expected_a = (3.0 * 2.0) / m0      # dM/da * a / M
        assert study.entry("a").elasticity == pytest.approx(expected_a,
                                                            rel=1e-6)

    def test_quadratic_elasticity(self):
        study = one_at_a_time(quadratic, {"a": 2.0, "b": 2.0},
                              relative_step=0.01)
        m0 = 6.0 + 4.0
        expected_b = (2.0 * 2.0 * 2.0) / m0   # dM/db * b / M = 2b*b/M
        assert study.entry("b").elasticity == pytest.approx(expected_b,
                                                            rel=1e-4)

    def test_ranking(self):
        study = one_at_a_time(quadratic, {"a": 0.1, "b": 10.0},
                              relative_step=0.01)
        assert study.dominant().parameter == "b"

    def test_subset_selection(self):
        study = one_at_a_time(quadratic, {"a": 2.0, "b": 1.0},
                              parameters=("a",))
        assert len(study.entries) == 1

    def test_zero_valued_parameter_skipped(self):
        study = one_at_a_time(quadratic, {"a": 0.0, "b": 1.0})
        names = [e.parameter for e in study.entries]
        assert "a" not in names

    def test_unknown_parameter_rejected(self):
        with pytest.raises(InputError):
            one_at_a_time(quadratic, {"a": 1.0, "b": 1.0},
                          parameters=("c",))

    def test_invalid_step(self):
        with pytest.raises(InputError):
            one_at_a_time(quadratic, {"a": 1.0, "b": 1.0},
                          relative_step=1.5)

    def test_nonfinite_baseline_rejected(self):
        with pytest.raises(InputError):
            one_at_a_time(lambda p: float("nan"), {"a": 1.0})

    def test_tornado_rows(self):
        study = one_at_a_time(quadratic, {"a": 2.0, "b": 3.0})
        rows = tornado_rows(study, top_n=1)
        assert len(rows) == 1
        assert rows[0][0] == study.dominant().parameter

    def test_swing_property(self):
        study = one_at_a_time(quadratic, {"a": 2.0, "b": 3.0})
        entry = study.entry("b")
        assert entry.swing == pytest.approx(abs(entry.high - entry.low))

    def test_empty_study_dominant_rejected(self):
        empty = SensitivityStudy(metric_baseline=1.0, entries=())
        with pytest.raises(InputError):
            empty.dominant()


class TestDistributions:
    def test_normal_moments(self):
        rng = np.random.default_rng(1)
        samples = Distribution("normal", 10.0, 2.0).sample(rng, 50_000)
        assert samples.mean() == pytest.approx(10.0, abs=0.05)
        assert samples.std() == pytest.approx(2.0, abs=0.05)

    def test_uniform_bounds(self):
        rng = np.random.default_rng(1)
        samples = Distribution("uniform", 1.0, 3.0).sample(rng, 10_000)
        assert samples.min() >= 1.0
        assert samples.max() <= 3.0

    def test_lognormal_median(self):
        rng = np.random.default_rng(1)
        samples = Distribution("lognormal", 5.0, 1.5).sample(rng,
                                                             50_000)
        assert np.median(samples) == pytest.approx(5.0, rel=0.02)
        assert samples.min() > 0.0

    def test_invalid_kinds(self):
        with pytest.raises(InputError):
            Distribution("triangular", 0.0, 1.0)
        with pytest.raises(InputError):
            Distribution("uniform", 3.0, 1.0)
        with pytest.raises(InputError):
            Distribution("lognormal", -1.0, 1.5)


class TestPropagate:
    def test_linear_model_exact_statistics(self):
        # M = a + b with independent normals: mean/std combine exactly.
        result = propagate(
            lambda p: p["a"] + p["b"],
            {"a": Distribution("normal", 10.0, 3.0),
             "b": Distribution("normal", 5.0, 4.0)},
            n_samples=20_000, seed=7)
        assert result.mean == pytest.approx(15.0, abs=0.1)
        assert result.std == pytest.approx(5.0, abs=0.1)

    def test_reproducible_with_seed(self):
        dists = {"a": Distribution("normal", 10.0, 3.0)}
        r1 = propagate(lambda p: p["a"], dists, n_samples=100, seed=3)
        r2 = propagate(lambda p: p["a"], dists, n_samples=100, seed=3)
        assert np.array_equal(r1.samples, r2.samples)

    def test_percentiles_ordered(self):
        result = propagate(
            lambda p: p["a"],
            {"a": Distribution("lognormal", 1.0, 2.0)},
            n_samples=2000)
        summary = result.margin_summary()
        assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_probability_above(self):
        result = propagate(
            lambda p: p["a"],
            {"a": Distribution("uniform", 0.0, 1.0)},
            n_samples=10_000)
        assert result.probability_above(0.5) == pytest.approx(0.5,
                                                              abs=0.02)

    def test_failures_counted_not_fatal(self):
        def flaky(params):
            if params["a"] > 0.8:
                raise RuntimeError("limit tripped")
            return params["a"]

        result = propagate(flaky,
                           {"a": Distribution("uniform", 0.0, 1.0)},
                           n_samples=1000)
        assert result.failures == pytest.approx(200, abs=60)
        assert result.samples.max() <= 0.8

    def test_too_many_failures_rejected(self):
        with pytest.raises(InputError):
            propagate(lambda p: 1.0 / 0.0,
                      {"a": Distribution("uniform", 0.0, 1.0)},
                      n_samples=100)

    def test_fixed_parameters_merged(self):
        result = propagate(
            lambda p: p["a"] + p["offset"],
            {"a": Distribution("uniform", 0.0, 1.0)},
            n_samples=100, fixed={"offset": 100.0})
        assert result.samples.min() >= 100.0


class TestSebMargins:
    """End-to-end: the margin numbers for the COSEE chain."""

    def test_delta_t_uncertainty_at_40w(self, seb, seb_lhp):
        from avipack.packaging.seb import (
            SeatElectronicsBox,
            SebConfiguration,
        )

        def delta_t(params):
            box = SeatElectronicsBox(
                internal_conductance=params["internal_g"])
            return box.solve(40.0, seb_lhp).delta_t_pcb_air

        result = propagate(
            delta_t,
            {"internal_g": Distribution("normal", 1.2, 0.12)},
            n_samples=60, seed=5)
        # Nominal ~25.6 K; P95 must stay within the paper's ~28 K band
        # plus margin.
        assert 20.0 < result.percentile(50.0) < 30.0
        assert result.percentile(95.0) < 35.0
