"""Tests for fatigue models: Steinberg, three-band, Coffin-Manson."""

import pytest

from avipack.errors import InputError
from avipack.mechanical.fatigue import (
    CYCLES_TO_FAIL_RANDOM,
    fatigue_life_hours,
    margin_of_safety,
    sn_cycles_to_failure,
    steinberg_allowable_deflection,
    thermal_cycling_life_coffin_manson,
    three_band_damage_rate,
)


class TestSteinberg:
    def test_textbook_value(self):
        # Steinberg example: B=8in, L=2in, h=0.08in, C=1, r=1:
        # Z = 0.00022*8/(1*0.08*1*sqrt(2)) = 0.01556 in = 395 um.
        z = steinberg_allowable_deflection(
            board_length=8 * 25.4e-3, component_length=2 * 25.4e-3,
            component_type="dip_axial", relative_position=1.0,
            board_thickness=0.08 * 25.4e-3)
        assert z == pytest.approx(0.01556 * 25.4e-3, rel=0.01)

    def test_bigger_component_less_allowable(self):
        small = steinberg_allowable_deflection(0.2, 0.01, "smt_leadless")
        large = steinberg_allowable_deflection(0.2, 0.04, "smt_leadless")
        assert large < small

    def test_leadless_stricter_than_gullwing(self):
        leadless = steinberg_allowable_deflection(0.2, 0.02,
                                                  "smt_leadless")
        gullwing = steinberg_allowable_deflection(0.2, 0.02,
                                                  "smt_gullwing")
        assert leadless < gullwing

    def test_edge_position_relaxes(self):
        center = steinberg_allowable_deflection(0.2, 0.02, "dip_axial",
                                                relative_position=1.0)
        edge = steinberg_allowable_deflection(0.2, 0.02, "dip_axial",
                                              relative_position=0.5)
        assert edge > center

    def test_unknown_type_rejected(self):
        with pytest.raises(InputError):
            steinberg_allowable_deflection(0.2, 0.02, "mystery_package")


class TestSnCurve:
    def test_reference_point(self):
        assert sn_cycles_to_failure(100e6, 100e6, 1e3) \
            == pytest.approx(1e3)

    def test_half_stress_much_longer_life(self):
        n_full = sn_cycles_to_failure(100e6, 100e6)
        n_half = sn_cycles_to_failure(50e6, 100e6)
        assert n_half == pytest.approx(n_full * 2 ** 6.4, rel=1e-9)

    def test_invalid_stress(self):
        with pytest.raises(InputError):
            sn_cycles_to_failure(-1.0, 100e6)


class TestThreeBand:
    def test_at_allowable_life_near_reference(self):
        # Response exactly at the allowable (3 sigma = Z_allow) must give
        # a life in the vicinity of the 2e7-cycle reference.
        f_n = 100.0
        z_allow = 300e-6
        rate = three_band_damage_rate(z_allow / 3.0, z_allow, f_n)
        life_cycles = f_n / rate
        # The 3-sigma band alone would give exactly the 2e7 reference;
        # the gentler 1/2-sigma bands stretch the blended life ~15x.
        assert CYCLES_TO_FAIL_RANDOM < life_cycles \
            < 20.0 * CYCLES_TO_FAIL_RANDOM

    def test_zero_response_infinite_life(self):
        assert fatigue_life_hours(0.0, 300e-6, 100.0) == float("inf")

    def test_life_decreases_steeply_with_response(self):
        life_low = fatigue_life_hours(50e-6, 300e-6, 100.0)
        life_high = fatigue_life_hours(100e-6, 300e-6, 100.0)
        # b = 6.4: doubling the response cuts life by ~84x.
        assert life_low / life_high == pytest.approx(2 ** 6.4, rel=0.01)

    def test_higher_frequency_accumulates_faster(self):
        assert fatigue_life_hours(100e-6, 300e-6, 400.0) \
            < fatigue_life_hours(100e-6, 300e-6, 100.0)

    def test_invalid_allowable(self):
        with pytest.raises(InputError):
            three_band_damage_rate(1e-6, -1.0, 100.0)


class TestMargins:
    def test_positive_margin(self):
        assert margin_of_safety(50.0, 100.0) == pytest.approx(1.0)

    def test_negative_margin(self):
        assert margin_of_safety(200.0, 100.0) == pytest.approx(-0.5)

    def test_zero_demand_infinite(self):
        assert margin_of_safety(0.0, 100.0) == float("inf")

    def test_invalid_allowable(self):
        with pytest.raises(InputError):
            margin_of_safety(10.0, -1.0)


class TestCoffinManson:
    def test_reference(self):
        assert thermal_cycling_life_coffin_manson(75.0) \
            == pytest.approx(10_000.0)

    def test_paper_shock_swing(self):
        # -45/+55 degC = 100 K swing: fewer cycles than the 75 K reference.
        assert thermal_cycling_life_coffin_manson(100.0) < 10_000.0

    def test_quadratic_exponent(self):
        assert thermal_cycling_life_coffin_manson(37.5) \
            == pytest.approx(40_000.0)

    def test_invalid_swing(self):
        with pytest.raises(InputError):
            thermal_cycling_life_coffin_manson(-10.0)
