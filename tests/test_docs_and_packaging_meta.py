"""Meta tests: documentation and packaging stay consistent with the code.

These keep the repo honest as it evolves: every bench DESIGN.md points
at must exist, every documented example must run as a file, and the
public namespaces must resolve completely.
"""

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocumentsExist:
    def test_required_documents(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "pyproject.toml"):
            assert (ROOT / name).is_file(), name

    def test_design_mentions_paper_identity_check(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "identity check" in text.lower()

    def test_experiments_covers_headline_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "Fig. 10" in text
        assert "58 W" in text


class TestDesignIndexHonest:
    def test_every_indexed_bench_exists(self):
        text = (ROOT / "DESIGN.md").read_text()
        benches = set(re.findall(r"benchmarks/([\w]+\.py)", text))
        assert benches, "DESIGN.md lists no benches?"
        for bench in benches:
            assert (ROOT / "benchmarks" / bench).is_file(), bench

    def test_every_bench_file_is_indexed_or_perf(self):
        text = (ROOT / "DESIGN.md").read_text()
        for path in (ROOT / "benchmarks").glob("test_*.py"):
            name = path.name
            if name in ("test_solver_performance.py",
                        "test_ife_fleet.py"):
                continue  # perf suite / indexed by EXPERIMENTS.md
            indexed = name in text \
                or name in (ROOT / "EXPERIMENTS.md").read_text()
            assert indexed, f"{name} not referenced by the docs"


class TestExamplesDocumented:
    def test_readme_lists_every_example(self):
        readme = (ROOT / "README.md").read_text()
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in readme, path.name

    def test_every_example_has_module_docstring(self):
        import ast

        for path in (ROOT / "examples").glob("*.py"):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), path.name

    def test_every_example_has_main_guard(self):
        for path in (ROOT / "examples").glob("*.py"):
            assert '__name__ == "__main__"' in path.read_text(), \
                path.name


class TestNamespaces:
    SUBPACKAGES = ("materials", "thermal", "twophase", "mechanical",
                   "tim", "environments", "reliability", "packaging",
                   "core", "experiments", "sweep")

    @pytest.mark.parametrize("subpackage", SUBPACKAGES)
    def test_all_exports_resolve(self, subpackage):
        module = importlib.import_module(f"avipack.{subpackage}")
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{subpackage}.{name}"

    @pytest.mark.parametrize("subpackage", SUBPACKAGES)
    def test_all_lists_unique(self, subpackage):
        module = importlib.import_module(f"avipack.{subpackage}")
        exported = list(getattr(module, "__all__", ()))
        assert len(exported) == len(set(exported)), subpackage

    def test_public_functions_documented(self):
        # Every public callable reachable from avipack.* __all__ must
        # carry a docstring - the (e) deliverable, enforced.
        undocumented = []
        for subpackage in self.SUBPACKAGES:
            module = importlib.import_module(f"avipack.{subpackage}")
            for name in getattr(module, "__all__", ()):
                obj = getattr(module, name)
                if callable(obj) and not (obj.__doc__ or "").strip():
                    undocumented.append(f"{subpackage}.{name}")
        assert not undocumented, undocumented
