"""Crash-safe resume: replay, invariant audit, ranking parity.

Every test compares a resumed campaign against the uninterrupted run of
the same space: restored candidates must carry the *original* metric
values (bit-identical floats — they were computed once) and the merged
report must rank identically.
"""

import dataclasses
import json
import math

import pytest

from avipack.durability import (
    audit_headroom_monotonicity,
    audit_outcomes,
    audit_result,
    energy_balance_residual_c,
    replay_journal,
)
from avipack.durability.journal import _canonical, _decode_payload, \
    _encode_payload
from avipack.errors import JournalError
from avipack.fingerprint import content_crc32, content_digest
from avipack.sweep import Candidate, DesignSpace, SweepRunner

SPACE = DesignSpace(axes={
    "power_per_module": (10.0, 20.0, 30.0),
    "cooling": ("direct_air_flow", "air_flow_through"),
})


def ranking_signature(report):
    return [(o.fingerprint, o.cost_rank, o.worst_board_c)
            for o in report.ranked()]


def metric_signature(report):
    return [(o.fingerprint, getattr(o, "worst_board_c", None),
             getattr(o, "error_type", None)) for o in report.outcomes]


@pytest.fixture()
def journalled(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    report = SweepRunner(parallel=False).run(SPACE, journal_path=path)
    return path, report


def damage_lines(path, predicate, mutate):
    """Rewrite journal lines whose decoded body matches ``predicate``."""
    with open(path, "rb") as stream:
        lines = stream.read().splitlines(keepends=True)
    out = []
    for line in lines:
        envelope = json.loads(line)
        if predicate(envelope["body"]):
            line = mutate(envelope)
        if line is not None:
            out.append(line)
    with open(path, "wb") as stream:
        stream.write(b"".join(out))


def reseal(envelope):
    """Recompute both checksums after a body edit (tampering helper)."""
    canonical = _canonical(envelope["body"])
    envelope["crc32"] = content_crc32(canonical)
    envelope["sha256"] = content_digest(canonical)
    return (json.dumps(envelope, sort_keys=True) + "\n").encode()


class TestResume:
    def test_complete_journal_restores_everything(self, journalled):
        path, fresh = journalled
        resumed = SweepRunner(parallel=False).resume(path)
        stats = resumed.durability
        assert stats.n_resumed == fresh.n_candidates
        assert stats.n_recomputed == 0
        assert stats.n_quarantined == 0
        assert stats.n_audit_failures == 0
        assert metric_signature(resumed) == metric_signature(fresh)
        assert ranking_signature(resumed) == ranking_signature(fresh)

    def test_truncated_journal_recomputes_tail(self, journalled):
        path, fresh = journalled
        with open(path, "rb") as stream:
            lines = stream.read().splitlines(keepends=True)
        with open(path, "wb") as stream:
            stream.write(b"".join(lines[:-2]))

        resumed = SweepRunner(parallel=False).resume(path)
        assert resumed.durability.n_resumed == fresh.n_candidates - 2
        assert resumed.durability.n_recomputed == 2
        assert ranking_signature(resumed) == ranking_signature(fresh)
        # Restored outcomes are the original objects, not recomputes:
        # their wall-clock fields match the fresh run exactly.
        fresh_elapsed = {o.fingerprint: o.elapsed_s for o in fresh.outcomes}
        resumed_count = sum(
            1 for o in resumed.outcomes
            if fresh_elapsed[o.fingerprint] == o.elapsed_s)
        assert resumed_count >= fresh.n_candidates - 2

    def test_resumed_run_is_itself_resumable(self, journalled):
        path, fresh = journalled
        with open(path, "rb") as stream:
            lines = stream.read().splitlines(keepends=True)
        with open(path, "wb") as stream:
            stream.write(b"".join(lines[:-1]))
        first = SweepRunner(parallel=False).resume(path)
        second = SweepRunner(parallel=False).resume(path)
        assert second.durability.n_resumed == fresh.n_candidates
        assert second.durability.n_recomputed == 0
        assert ranking_signature(second) == ranking_signature(fresh)

    def test_resume_survives_reordered_space(self, journalled):
        path, fresh = journalled
        reordered = list(reversed(list(SPACE.grid())))
        resumed = SweepRunner(parallel=False).resume(path, space=reordered)
        assert resumed.durability.n_resumed == fresh.n_candidates
        # Indices follow the *new* ordering; fingerprints match by
        # content, so the ranked view is identical.
        assert [o.candidate for o in resumed.outcomes] == reordered
        assert [o.index for o in resumed.outcomes] == list(
            range(len(reordered)))
        assert ranking_signature(resumed) == ranking_signature(fresh)

    def test_resume_survives_extended_space(self, journalled):
        path, fresh = journalled
        extended = list(SPACE.grid()) + [
            Candidate(power_per_module=40.0, cooling="air_flow_through")]
        resumed = SweepRunner(parallel=False).resume(path, space=extended)
        assert resumed.durability.n_resumed == fresh.n_candidates
        assert resumed.durability.n_recomputed == 1
        assert resumed.n_candidates == fresh.n_candidates + 1

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            SweepRunner(parallel=False).resume(
                str(tmp_path / "absent.jsonl"))

    def test_journal_without_plan_needs_explicit_space(self, journalled):
        path, fresh = journalled
        damage_lines(path, lambda body: body["kind"] == "plan",
                     lambda envelope: None)
        with pytest.raises(JournalError):
            SweepRunner(parallel=False).resume(path)
        resumed = SweepRunner(parallel=False).resume(path, space=SPACE)
        assert ranking_signature(resumed) == ranking_signature(fresh)


class TestTamperAudit:
    def test_tampered_metric_with_valid_checksums_is_recomputed(
            self, journalled):
        # Rewrite one completed record's board temperature and reseal
        # the checksums: integrity passes, physics does not.
        path, fresh = journalled

        def tamper(envelope):
            outcome = _decode_payload(envelope["body"]["payload"])
            outcome = dataclasses.replace(outcome, worst_board_c=-5.0)
            envelope["body"]["payload"] = _encode_payload(outcome)
            return reseal(envelope)

        seen = []

        def first_completed(body):
            if body["kind"] == "completed" and not seen:
                seen.append(body["fingerprint"])
                return True
            return False

        damage_lines(path, first_completed, tamper)
        resumed = SweepRunner(parallel=False).resume(path)
        stats = resumed.durability
        assert stats.n_quarantined == 0
        assert stats.n_audit_failures == 1
        assert stats.n_recomputed == 1
        assert dict(stats.audit_issues)  # detail carried in the report
        assert ranking_signature(resumed) == ranking_signature(fresh)

    def test_swapped_candidate_fingerprint_is_caught(self, journalled):
        # Replay a record against a different design point: candidate
        # payload swapped, journal fingerprint key left alone.
        path, fresh = journalled
        candidates = list(SPACE.grid())

        def tamper(envelope):
            outcome = _decode_payload(envelope["body"]["payload"])
            other = next(c for c in candidates
                         if c.fingerprint != outcome.fingerprint)
            outcome = dataclasses.replace(outcome, candidate=other)
            envelope["body"]["payload"] = _encode_payload(outcome)
            return reseal(envelope)

        seen = []

        def first_completed(body):
            if body["kind"] == "completed" and not seen:
                seen.append(body["fingerprint"])
                return True
            return False

        damage_lines(path, first_completed, tamper)
        resumed = SweepRunner(parallel=False).resume(path)
        assert resumed.durability.n_audit_failures >= 1
        assert ranking_signature(resumed) == ranking_signature(fresh)


class TestAuditBattery:
    @pytest.fixture(scope="class")
    def results(self):
        report = SweepRunner(parallel=False).run(SPACE)
        return [o for o in report.outcomes if hasattr(o, "margins")]

    def test_genuine_results_pass(self, results):
        for result in results:
            assert audit_result(result) == ()
        assert audit_outcomes(results) == {}

    def test_energy_balance_residual_zero_for_genuine(self, results):
        for result in results:
            assert energy_balance_residual_c(result) <= 0.05

    def test_first_law_violation_flagged(self, results):
        bad = dataclasses.replace(results[0], worst_board_c=-5.0)
        issues = audit_result(bad)
        assert any("first-law" in issue or "supply" in issue
                   for issue in issues)

    def test_non_finite_temperature_flagged(self, results):
        bad = dataclasses.replace(results[0],
                                  worst_board_c=float("nan"))
        assert any("finite" in issue for issue in audit_result(bad))

    def test_nan_margin_flagged(self, results):
        margins = dict(results[0].margins)
        margins["fatigue_margin"] = float("nan")
        bad = dataclasses.replace(results[0], margins=margins)
        assert any("NaN" in issue for issue in audit_result(bad))

    def test_margin_disagreement_flagged(self, results):
        margins = dict(results[0].margins)
        margins["worst_board_c"] = margins["worst_board_c"] + 3.0
        bad = dataclasses.replace(results[0], margins=margins)
        assert any("disagrees" in issue for issue in audit_result(bad))

    def test_compliant_above_limit_flagged(self, results):
        margins = dict(results[0].margins)
        margins["worst_board_c"] = 90.0
        bad = dataclasses.replace(results[0], worst_board_c=90.0,
                                  margins=margins, compliant=True)
        issues = audit_result(bad, recompute_level2=False)
        assert any("85" in issue for issue in issues)

    def test_energy_balance_catches_shifted_temperature(self, results):
        # Shift field and margin together so every cheaper consistency
        # check passes and only re-solving the rack can notice.  Start
        # from the coolest record so the shift stays under the 85 degC
        # compliance gate.
        coolest = min(results, key=lambda r: r.worst_board_c)
        margins = dict(coolest.margins)
        margins["worst_board_c"] = coolest.worst_board_c + 2.0
        bad = dataclasses.replace(coolest,
                                  worst_board_c=coolest.worst_board_c
                                  + 2.0, margins=margins)
        assert any("energy-balance" in issue for issue in
                   audit_result(bad))

    def test_headroom_monotonicity_flags_inverted_pair(self, results):
        by_power = sorted(
            (r for r in results
             if str(getattr(r.candidate.cooling, "value",
                            r.candidate.cooling)) == "direct_air_flow"),
            key=lambda r: r.candidate.power_per_module)
        assert len(by_power) >= 2
        # Genuine physics: monotone, nothing flagged.
        assert audit_headroom_monotonicity(by_power) == {}
        # Cool down the *hottest* budget below the coolest: impossible.
        lowest = by_power[0]
        highest = by_power[-1]
        forged = dataclasses.replace(
            highest, worst_board_c=lowest.worst_board_c - 10.0)
        flagged = audit_headroom_monotonicity(
            [r for r in by_power[:-1]] + [forged])
        assert forged.fingerprint in flagged
        assert any("monotonicity" in issue
                   for issues in flagged.values() for issue in issues)

    def test_failures_only_need_fingerprint_integrity(self, results):
        from tests.test_durability_journal import make_failure
        failure = make_failure(0, results[0].candidate)
        assert audit_outcomes([failure]) == {}
        forged = dataclasses.replace(
            failure, fingerprint="0" * len(failure.fingerprint))
        assert forged.fingerprint in audit_outcomes([forged])


class TestReplayOfRealJournal:
    def test_dispatched_markers_visible(self, journalled):
        path, fresh = journalled
        replay = replay_journal(str(path))
        assert len(replay.dispatched) == fresh.n_candidates
        assert replay.space_fingerprint
        assert math.isfinite(replay.next_seq)
