"""Unit tests for the project graph (:mod:`avipack.analysis.project`)
and the path-enumeration primitives (:mod:`avipack.analysis.flow`).
"""

from __future__ import annotations

import ast
import textwrap

from avipack.analysis import FileContext
from avipack.analysis.flow import (
    enumerate_paths,
    event_after,
    must_precede,
    name_escapes,
)
from avipack.analysis.project import (
    ModuleSummary,
    ProjectGraph,
    graph_of,
    summarize,
)
from avipack.fingerprint import stable_fingerprint


def ctx_of(rel_path, source):
    return FileContext.parse(rel_path, textwrap.dedent(source))


def graph_from(sources, fps=None):
    """Build a ProjectGraph from {rel_path: source}."""
    summaries = [summarize(ctx_of(path, src))
                 for path, src in sources.items()]
    fps = fps or {path: stable_fingerprint(src)
                  for path, src in sources.items()}
    return ProjectGraph(summaries, fps)


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------

class TestSummarize:
    def test_module_name_and_imports(self):
        summary = summarize(ctx_of("src/avipack/sweep/runner.py", """
            import os
            import numpy as np
            from ..durability import SweepJournal
            from avipack.results import ResultStore
        """))
        assert summary.module == "avipack.sweep.runner"
        assert "os" in summary.imports
        assert "numpy" in summary.imports
        assert "avipack.durability" in summary.imports  # relative resolved
        assert "avipack.results" in summary.imports
        assert summary.bindings["SweepJournal"] \
            == "avipack.durability:SweepJournal"
        assert summary.bindings["np"] == "numpy"

    def test_blocking_ops_and_async_flag(self):
        summary = summarize(ctx_of("src/avipack/mod.py", """
            import time

            async def tick():
                time.sleep(0.1)

            def pace():
                time.sleep(0.1)
        """))
        tick = summary.functions["tick"]
        assert tick.is_async
        assert len(tick.blocking) == 1
        assert "time.sleep" in tick.blocking[0].description
        assert not summary.functions["pace"].is_async

    def test_method_calls_resolved_through_attr_types(self):
        summary = summarize(ctx_of("src/avipack/svc.py", """
            from avipack.jobs import JobStore

            class Service:
                def __init__(self, path):
                    self.store = JobStore(path)

                def persist(self, job):
                    self.store.save(job)
        """))
        assert summary.attr_types["Service.store"] == "avipack.jobs:JobStore"
        calls = summary.functions["Service.persist"].calls
        assert [c.ref for c in calls] == ["avipack.jobs:JobStore.save"]
        assert calls[0].display == "self.store.save"

    def test_unresolvable_calls_are_dropped(self):
        summary = summarize(ctx_of("src/avipack/mod.py", """
            def run(thing):
                thing.spin()
                mystery()
        """))
        assert summary.functions["run"].calls == ()

    def test_round_trip_through_dict(self):
        summary = summarize(ctx_of("src/avipack/mod.py", """
            import time

            LABEL = "analysis.files"

            class Widget:
                def __init__(self):
                    self.t = Widget()

                async def wait(self):
                    time.sleep(1)
        """))
        payload = summary.to_dict()
        rebuilt = ModuleSummary.from_dict(payload)
        assert rebuilt is not None
        assert rebuilt.to_dict() == payload

    def test_version_mismatch_rejected(self):
        payload = summarize(ctx_of("src/avipack/mod.py", "x = 1\n")).to_dict()
        payload["version"] = 999
        assert ModuleSummary.from_dict(payload) is None


# ---------------------------------------------------------------------------
# Import graph and dependency fingerprints
# ---------------------------------------------------------------------------

TREE = {
    "src/avipack/a.py": "from avipack.b import helper\n",
    "src/avipack/b.py": "from avipack import c\n\ndef helper():\n"
                        "    return c.leaf()\n",
    "src/avipack/c.py": "def leaf():\n    return 1\n",
    "src/avipack/lone.py": "X = 1\n",
}


class TestImportGraph:
    def test_direct_edges(self):
        graph = graph_from(TREE)
        assert graph.imports_of("avipack.a") == ("avipack.b",)
        assert graph.imports_of("avipack.b") == ("avipack.c",)
        assert graph.imports_of("avipack.lone") == ()

    def test_transitive_closure(self):
        graph = graph_from(TREE)
        assert graph.import_closure("avipack.a") \
            == ("avipack.b", "avipack.c")
        assert graph.import_closure("avipack.c") == ()

    def test_closure_survives_cycles(self):
        graph = graph_from({
            "src/avipack/x.py": "from avipack import y\n",
            "src/avipack/y.py": "from avipack import x\n",
        })
        assert graph.import_closure("avipack.x") \
            == ("avipack.x", "avipack.y") or \
            graph.import_closure("avipack.x") == ("avipack.y",)

    def test_dependency_fingerprint_tracks_the_closure(self):
        fps = {path: stable_fingerprint(src) for path, src in TREE.items()}
        before = graph_from(TREE, fps)

        changed = dict(fps)
        changed["src/avipack/c.py"] = stable_fingerprint("def leaf():\n"
                                                         "    return 2\n")
        after = graph_from(TREE, changed)

        # a and b see c through imports: their dep fingerprints move.
        for path in ("src/avipack/a.py", "src/avipack/b.py"):
            assert before.dependency_fingerprint(path) \
                != after.dependency_fingerprint(path)
        # lone imports nothing: untouched.
        assert before.dependency_fingerprint("src/avipack/lone.py") \
            == after.dependency_fingerprint("src/avipack/lone.py")

    def test_edge_counts(self):
        graph = graph_from(TREE)
        assert graph.n_import_edges == 2
        assert graph.n_call_edges == 1  # b.helper -> c.leaf


# ---------------------------------------------------------------------------
# Call graph / blocking chains
# ---------------------------------------------------------------------------

class TestBlockingChain:
    def test_cross_module_chain_with_witness(self):
        graph = graph_from({
            "src/avipack/store.py": """
import os

def save(path):
    os.fsync(3)
""",
            "src/avipack/svc.py": """
from avipack.store import save

async def run(path):
    save(path)
""",
        })
        chain = graph.blocking_chain("avipack.store:save")
        assert chain is not None
        assert chain[0] == "avipack.store:save"
        assert "os.fsync" in chain[-1]

    def test_async_callee_breaks_the_chain(self):
        graph = graph_from({
            "src/avipack/mod.py": """
import os

async def inner(path):
    os.fsync(3)

def outer(path):
    return inner(path)
""",
        })
        # outer only creates the coroutine; it never blocks itself.
        assert graph.blocking_chain("avipack.mod:outer") is None

    def test_recursion_terminates(self):
        graph = graph_from({
            "src/avipack/mod.py": """
def ping(n):
    return pong(n)

def pong(n):
    return ping(n)
""",
        })
        assert graph.blocking_chain("avipack.mod:ping") is None

    def test_graph_of_falls_back_to_single_file(self):
        ctx = ctx_of("src/avipack/mod.py", """
            import time

            def pace():
                time.sleep(1)
        """)
        graph, summary = graph_of(ctx)
        assert summary.module == "avipack.mod"
        assert graph.blocking_chain("avipack.mod:pace") is not None

    def test_counter_ref_resolution(self):
        graph = graph_from({
            "src/avipack/names.py": 'ROWS = "results.rows"\n',
            "src/avipack/mod.py": "from avipack.names import ROWS\n",
        })
        summary = graph.files["src/avipack/mod.py"]
        assert graph.resolve_counter_name(
            summary, "@avipack.names:ROWS") == "results.rows"
        assert graph.resolve_counter_name(summary, "plain.name") \
            == "plain.name"
        assert graph.resolve_counter_name(summary, "@gone:MISSING") == ""


# ---------------------------------------------------------------------------
# Flow primitives
# ---------------------------------------------------------------------------

def paths_of(source):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]

    def events_of(node):
        for child in ast.walk(node):
            if isinstance(child, ast.Call) \
                    and isinstance(child.func, ast.Name):
                yield child.func.id
    return enumerate_paths(func.body, events_of)


class TestFlow:
    def test_if_explores_both_branches(self):
        paths = paths_of("""
            def f(x):
                if x:
                    a()
                else:
                    b()
                c()
        """)
        assert sorted(paths) == [("a", "c"), ("b", "c")]

    def test_return_terminates_a_path(self):
        paths = paths_of("""
            def f(x):
                if x:
                    return a()
                b()
        """)
        assert sorted(paths) == [("a",), ("b",)]

    def test_try_handler_entered_with_empty_prefix(self):
        paths = paths_of("""
            def f(x):
                try:
                    a()
                except ValueError:
                    b()
                finally:
                    c()
        """)
        assert ("a", "c") in paths
        assert ("b", "c") in paths  # handler path: a() may never run

    def test_loop_runs_zero_and_one_times(self):
        paths = paths_of("""
            def f(xs):
                for x in xs:
                    a()
                b()
        """)
        assert ("b",) in paths
        assert ("a", "b") in paths

    def test_overflow_returns_none(self):
        branches = "\n".join(
            f"    if x{i}:\n        a()\n    else:\n        b()"
            for i in range(12))
        source = "def f(**kw):\n" + branches + "\n    c()\n"
        tree = ast.parse(source)

        def events_of(node):
            return ()
        assert enumerate_paths(tree.body[0].body, events_of,
                               max_paths=16) is None

    def test_must_precede(self):
        paths = (("w", "f", "r"), ("w", "r"))
        violation = must_precede(paths,
                                 lambda e: e == "f", lambda e: e == "r")
        assert violation == "r"
        assert must_precede((("f", "r"),), lambda e: e == "f",
                            lambda e: e == "r") is None

    def test_event_after_with_reset(self):
        paths = (("close", "rebind", "use"),)
        assert event_after(
            paths, is_marker=lambda e: e == "close",
            is_use=lambda e: e == "use",
            is_reset=lambda e: e == "rebind") is None
        assert event_after(
            (("close", "use"),), is_marker=lambda e: e == "close",
            is_use=lambda e: e == "use") == "use"

    def test_name_escapes(self):
        func = ast.parse(textwrap.dedent("""
            def f(path):
                stream = open(path)
                return stream
        """)).body[0]
        assert name_escapes(func, "stream")

        func = ast.parse(textwrap.dedent("""
            def f(path):
                stream = open(path)
                stream.close()
        """)).body[0]
        assert not name_escapes(func, "stream")

        func = ast.parse(textwrap.dedent("""
            import fcntl

            def f(path):
                stream = open(path)
                fcntl.flock(stream, fcntl.LOCK_EX)
        """)).body[1]
        assert name_escapes(func, "stream")
        assert not name_escapes(func, "stream",
                                ignore_calls=("fcntl.flock",))
