"""Engine, cache, baseline, JSON schema and CLI tests for avipack.analysis."""

from __future__ import annotations

import json

import pytest

from avipack.analysis import (
    AnalysisCache,
    AnalysisEngine,
    AnalysisResult,
    Baseline,
    Finding,
    Severity,
    all_rules,
    rule_range,
    rules_signature,
)
from avipack.analysis.cli import main
from avipack.errors import InputError

VIOLATION = (
    "def f(x):\n"
    "    raise ValueError('bad')\n"
)
CLEAN = (
    "from avipack.errors import InputError\n"
    "\n"
    "def f(x):\n"
    "    raise InputError('bad')\n"
)


def make_pkg(tmp_path, name_to_source):
    """Lay out sources under <tmp>/src/avipack/ and return the src dir."""
    pkg = tmp_path / "src" / "avipack"
    pkg.mkdir(parents=True)
    for name, source in name_to_source.items():
        (pkg / name).write_text(source)
    return tmp_path / "src"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_all_rules_registered():
    ids = [rule.rule_id for rule in all_rules()]
    assert ids == ["AVI001", "AVI002", "AVI003", "AVI004", "AVI005",
                   "AVI006", "AVI007", "AVI008", "AVI009", "AVI010",
                   "AVI011", "AVI012"]


def test_rule_range_is_derived_from_registry():
    assert rule_range() == "AVI001-AVI012"


def test_rules_signature_stable():
    assert rules_signature() == rules_signature()


# ---------------------------------------------------------------------------
# Engine + cache
# ---------------------------------------------------------------------------

def test_engine_finds_violation(tmp_path, monkeypatch):
    src = make_pkg(tmp_path, {"bad.py": VIOLATION, "good.py": CLEAN})
    monkeypatch.chdir(tmp_path)
    result = AnalysisEngine().analyze_paths([str(src)])
    assert result.files_analyzed == 2
    assert [f.rule_id for f in result.findings] == ["AVI002"]
    assert result.findings[0].path == "src/avipack/bad.py"
    assert not result.clean


def test_cache_hit_on_unchanged_file(tmp_path, monkeypatch):
    src = make_pkg(tmp_path, {"bad.py": VIOLATION, "good.py": CLEAN})
    monkeypatch.chdir(tmp_path)
    cache = AnalysisCache(rules_signature())
    engine = AnalysisEngine(cache=cache)

    first = engine.analyze_paths([str(src)])
    assert first.cache_hits == 0
    assert cache.hits == 0 and cache.misses == 2

    second = engine.analyze_paths([str(src)])
    assert second.cache_hits == 2
    # Cached raw findings survive intact (same active set).
    assert [f.to_dict() for f in second.findings] \
        == [f.to_dict() for f in first.findings]

    # Touching one file invalidates exactly that entry.
    (src / "avipack" / "bad.py").write_text(CLEAN)
    third = engine.analyze_paths([str(src)])
    assert third.cache_hits == 1
    assert third.findings == []


def test_cache_round_trips_through_disk(tmp_path, monkeypatch):
    src = make_pkg(tmp_path, {"bad.py": VIOLATION})
    monkeypatch.chdir(tmp_path)
    cache_file = tmp_path / "cache.json"

    cache = AnalysisCache(rules_signature())
    engine = AnalysisEngine(cache=cache)
    first = engine.analyze_paths([str(src)])
    cache.save(str(cache_file))

    reloaded = AnalysisCache.load(str(cache_file), rules_signature())
    assert len(reloaded) == 1
    engine = AnalysisEngine(cache=reloaded)
    second = engine.analyze_paths([str(src)])
    assert second.cache_hits == 1
    assert [f.to_dict() for f in second.findings] \
        == [f.to_dict() for f in first.findings]


def test_cache_discarded_on_rules_signature_change(tmp_path, monkeypatch):
    src = make_pkg(tmp_path, {"bad.py": VIOLATION})
    monkeypatch.chdir(tmp_path)
    cache_file = tmp_path / "cache.json"

    cache = AnalysisCache(rules_signature())
    AnalysisEngine(cache=cache).analyze_paths([str(src)])
    cache.save(str(cache_file))

    stale = AnalysisCache.load(str(cache_file), "different-signature")
    assert len(stale) == 0


def test_damaged_cache_file_starts_cold(tmp_path):
    cache_file = tmp_path / "cache.json"
    cache_file.write_text("{ not json !")
    cache = AnalysisCache.load(str(cache_file), rules_signature())
    assert len(cache) == 0


def test_parse_error_reported_and_gates(tmp_path, monkeypatch):
    make_pkg(tmp_path, {"broken.py": "def f(:\n"})
    monkeypatch.chdir(tmp_path)
    result = AnalysisEngine().analyze_paths([str(tmp_path / "src")])
    assert result.errors and "broken.py" in result.errors[0]
    assert not result.clean


def test_discover_skips_pycache_and_non_python(tmp_path, monkeypatch):
    src = make_pkg(tmp_path, {"good.py": CLEAN})
    cache_dir = src / "avipack" / "__pycache__"
    cache_dir.mkdir()
    (cache_dir / "good.cpython-311.py").write_text(VIOLATION)
    (src / "avipack" / "notes.txt").write_text("not python")
    monkeypatch.chdir(tmp_path)
    files = AnalysisEngine.discover([str(src)])
    assert files == ["src/avipack/good.py"]


def test_discover_missing_path_raises():
    with pytest.raises(InputError):
        AnalysisEngine.discover(["no/such/path"])


# ---------------------------------------------------------------------------
# Dependency-hash invalidation
# ---------------------------------------------------------------------------

CALLER = (
    "from avipack.helper import save\n"
    "\n"
    "async def persist(path):\n"
    "    save(path)\n"
)
HELPER_V1 = (
    "def save(path):\n"
    "    return path\n"
)
HELPER_V2 = (
    "import os\n"
    "\n"
    "def save(path):\n"
    "    os.replace(path, path)\n"
)


def test_changed_import_invalidates_dependents(tmp_path, monkeypatch):
    """Editing helper.py must re-check caller.py even though caller.py's
    own bytes are unchanged — the cached verdict keys on the dependency
    fingerprint, not just the content hash."""
    src = make_pkg(tmp_path, {"caller.py": CALLER, "helper.py": HELPER_V1,
                              "other.py": CLEAN})
    monkeypatch.chdir(tmp_path)
    cache = AnalysisCache(rules_signature())
    engine = AnalysisEngine(cache=cache)

    first = engine.analyze_paths([str(src)])
    assert first.findings == []

    warm = engine.analyze_paths([str(src)])
    assert warm.cache_hits == 3

    # helper.save now blocks; the async caller becomes a finding even
    # though caller.py itself did not change.
    (src / "avipack" / "helper.py").write_text(HELPER_V2)
    third = engine.analyze_paths([str(src)])
    assert [f.rule_id for f in third.findings] == ["AVI008"]
    assert third.findings[0].path == "src/avipack/caller.py"
    # other.py imports nothing that changed: still served from cache.
    assert third.cache_hits == 1


def test_unrelated_edit_keeps_dependents_cached(tmp_path, monkeypatch):
    src = make_pkg(tmp_path, {"caller.py": CALLER, "helper.py": HELPER_V1,
                              "other.py": CLEAN})
    monkeypatch.chdir(tmp_path)
    cache = AnalysisCache(rules_signature())
    engine = AnalysisEngine(cache=cache)
    engine.analyze_paths([str(src)])

    (src / "avipack" / "other.py").write_text(CLEAN + "\nX = 1\n")
    warm = engine.analyze_paths([str(src)])
    # caller + helper untouched and not importing other: both cached.
    assert warm.cache_hits == 2


# ---------------------------------------------------------------------------
# Parallel execution
# ---------------------------------------------------------------------------

def test_parallel_matches_serial(tmp_path, monkeypatch):
    src = make_pkg(tmp_path, {
        "caller.py": CALLER,
        "helper.py": HELPER_V2,
        "bad.py": VIOLATION,
        "good.py": CLEAN,
        "broken.py": "def f(:\n",
    })
    monkeypatch.chdir(tmp_path)
    serial = AnalysisEngine(jobs=1).analyze_paths([str(src)])
    parallel = AnalysisEngine(jobs=2).analyze_paths([str(src)])
    assert parallel.to_payload() == serial.to_payload()
    assert not serial.clean  # the comparison covers real findings


def test_negative_jobs_rejected():
    with pytest.raises(InputError):
        AnalysisEngine(jobs=-1)


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def make_finding(**overrides):
    base = dict(rule_id="AVI002", severity=Severity.ERROR,
                path="src/avipack/bad.py", line=2, column=4,
                message="bare builtin raise", suggestion="", symbol="f")
    base.update(overrides)
    return Finding(**base)


def test_baseline_multiset_semantics():
    one = make_finding()
    twin = make_finding(line=9)  # same key: line numbers are ignored
    baseline = Baseline((one,))
    active, baselined = baseline.partition([one, twin])
    assert baselined == [one]
    assert active == [twin]


def test_baseline_round_trips_through_disk(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    Baseline((make_finding(),)).save(str(baseline_file))
    reloaded = Baseline.load(str(baseline_file))
    assert len(reloaded) == 1
    active, baselined = reloaded.partition([make_finding(line=30)])
    assert active == [] and len(baselined) == 1


def test_baseline_damage_is_an_error(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    baseline_file.write_text('{"version": 99}')
    with pytest.raises(InputError):
        Baseline.load(str(baseline_file))
    with pytest.raises(InputError):
        Baseline.load(str(tmp_path / "missing.json"))


# ---------------------------------------------------------------------------
# JSON schema round-trip
# ---------------------------------------------------------------------------

def test_result_payload_round_trip(tmp_path, monkeypatch):
    src = make_pkg(tmp_path, {"bad.py": VIOLATION})
    monkeypatch.chdir(tmp_path)
    result = AnalysisEngine().analyze_paths([str(src)])

    payload = json.loads(json.dumps(result.to_payload()))
    assert set(payload) == {"version", "rules_signature", "files_analyzed",
                            "cache_hits", "import_edges", "call_edges",
                            "clean", "errors", "findings",
                            "baselined", "suppressed"}
    for record in payload["findings"]:
        assert set(record) == {"rule_id", "severity", "path", "line",
                               "column", "message", "suggestion", "symbol"}

    rebuilt = AnalysisResult.from_payload(payload)
    assert [f.to_dict() for f in rebuilt.findings] \
        == [f.to_dict() for f in result.findings]
    assert rebuilt.files_analyzed == result.files_analyzed
    assert rebuilt.clean == result.clean


def test_finding_round_trip_preserves_severity():
    finding = make_finding(severity=Severity.WARNING)
    assert Finding.from_dict(finding.to_dict()) == finding


def test_malformed_payloads_raise():
    with pytest.raises(InputError):
        Finding.from_dict({"rule_id": "AVI001"})
    with pytest.raises(InputError):
        AnalysisResult.from_payload({"version": 99})


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_exits_nonzero_on_violation(tmp_path, monkeypatch, capsys):
    src = make_pkg(tmp_path, {"bad.py": VIOLATION})
    monkeypatch.chdir(tmp_path)
    code = main(["--no-cache", str(src)])
    out = capsys.readouterr().out
    assert code == 1
    assert "AVI002" in out


def test_cli_exits_zero_on_clean_tree(tmp_path, monkeypatch, capsys):
    src = make_pkg(tmp_path, {"good.py": CLEAN})
    monkeypatch.chdir(tmp_path)
    code = main(["--no-cache", str(src)])
    assert code == 0
    assert "0 active" in capsys.readouterr().out


def test_cli_json_output_parses(tmp_path, monkeypatch, capsys):
    src = make_pkg(tmp_path, {"bad.py": VIOLATION})
    monkeypatch.chdir(tmp_path)
    code = main(["--no-cache", "--format", "json", str(src)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["clean"] is False
    assert payload["findings"][0]["rule_id"] == "AVI002"


def test_cli_write_baseline_then_gate_passes(tmp_path, monkeypatch, capsys):
    src = make_pkg(tmp_path, {"bad.py": VIOLATION})
    monkeypatch.chdir(tmp_path)
    baseline = tmp_path / "baseline.json"

    assert main(["--no-cache", "--write-baseline",
                 "--baseline", str(baseline), str(src)]) == 0
    capsys.readouterr()

    # Grandfathered finding no longer gates...
    assert main(["--no-cache", "--baseline", str(baseline), str(src)]) == 0
    assert "1 baselined" in capsys.readouterr().out

    # ...but a new violation in another symbol still does.
    (src / "avipack" / "bad.py").write_text(
        VIOLATION + "\ndef g(x):\n    raise ValueError('new')\n")
    assert main(["--no-cache", "--baseline", str(baseline), str(src)]) == 1


def test_cli_cache_file_round_trip(tmp_path, monkeypatch, capsys):
    src = make_pkg(tmp_path, {"good.py": CLEAN})
    monkeypatch.chdir(tmp_path)
    cache_file = tmp_path / "lint-cache.json"

    assert main(["--cache", str(cache_file), str(src)]) == 0
    assert cache_file.exists()
    capsys.readouterr()
    assert main(["--cache", str(cache_file), str(src)]) == 0
    assert "(1 cached," in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("AVI001", "AVI002", "AVI003", "AVI004", "AVI005",
                    "AVI006"):
        assert rule_id in out


def test_cli_damaged_baseline_is_usage_error(tmp_path, monkeypatch, capsys):
    src = make_pkg(tmp_path, {"good.py": CLEAN})
    monkeypatch.chdir(tmp_path)
    baseline = tmp_path / "baseline.json"
    baseline.write_text("{ damaged")
    code = main(["--no-cache", "--baseline", str(baseline), str(src)])
    assert code == 2
    assert "error:" in capsys.readouterr().err
