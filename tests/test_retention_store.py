"""Result-store compaction: dead rows gone, ranking byte-identical.

Superseded rows (hidden by ``live_mask``) and orphaned blob pools are
the only things compaction may remove; ``ranking_signature`` — the
store's externally observable contract — must be byte-identical before
and after, including after a simulated crash at every phase seam.
"""

import os
import shutil

import numpy as np
import pytest

from avipack import perf
from avipack.errors import ResultStoreError
from avipack.results import ResultStore, ResultStoreWriter, \
    ranking_signature
from avipack.retention import compact_store
from avipack.sweep.runner import CandidateResult
from avipack.sweep.space import Candidate


def make_result(index, *, power=20.0, modules=4, compliant=True,
                cost_rank=1.0, worst_board_c=70.0):
    candidate = Candidate(power_per_module=power, n_modules=modules)
    return CandidateResult(
        index=index, candidate=candidate,
        fingerprint=candidate.fingerprint, compliant=compliant,
        violations=() if compliant else ("thermal",),
        margins={"fundamental_hz": 120.0, "fatigue_margin": 1.4,
                 "deflection_margin": 2.0, "mtbf_hours": 9.0e4},
        worst_board_c=worst_board_c,
        recommended_cooling=candidate.cooling,
        declared_cooling_feasible=True, cost_rank=cost_rank,
        elapsed_s=0.01, worker_pid=os.getpid(),
        cache_hits=2, cache_misses=1)


def build_superseded_store(directory, n=12, shard_rows=4):
    """``n`` originals then corrected rows for every third fingerprint
    — the exact shape a resumed campaign leaves behind."""
    originals = [make_result(i, power=10.0 + i, cost_rank=float(i % 5),
                             worst_board_c=55.0 + (i * 7919 % 25))
                 for i in range(n)]
    corrections = [make_result(i, power=10.0 + i, cost_rank=float(i % 5),
                               worst_board_c=50.0 + (i * 104729 % 20))
                   for i in range(0, n, 3)]
    with ResultStoreWriter(directory, shard_rows=shard_rows) as writer:
        writer.add_many(originals)
        writer.add_many(corrections)
    return len(corrections)


def live_view(store):
    """Fingerprint -> live row metrics, the queryable end state."""
    mask = store.live_mask()
    fingerprints = store.column("fingerprint")[mask]
    worst = store.column("worst_board_c")[mask]
    cost = store.column("cost_rank")[mask]
    return {fp: (w, c) for fp, w, c
            in zip(fingerprints.tolist(), worst.tolist(), cost.tolist())}


class TestCompaction:
    def test_drops_superseded_rows_and_preserves_ranking(self, tmp_path):
        directory = str(tmp_path / "store")
        n_dead = build_superseded_store(directory)
        before = ResultStore.open(directory)
        signature = ranking_signature(before)
        view = live_view(before)
        n_live = int(before.live_mask().sum())

        compaction = compact_store(directory)
        assert compaction.rows_dropped == n_dead
        assert compaction.shards_rewritten > 0
        assert compaction.bytes_reclaimed > 0

        after = ResultStore.open(directory)
        assert after.n_rows == n_live
        assert bool(after.live_mask().all())
        assert ranking_signature(after) == signature
        assert live_view(after) == view

    def test_blobs_survive_the_rewrite_byte_for_byte(self, tmp_path):
        directory = str(tmp_path / "store")
        originals = [make_result(i, power=10.0 + i) for i in range(6)]
        corrected = make_result(0, power=10.0, worst_board_c=48.0)
        with ResultStoreWriter(directory, shard_rows=4) as writer:
            writer.add_many(originals + [corrected])
        compact_store(directory)
        store = ResultStore.open(directory)
        restored = {store.fetch_outcome(i).fingerprint:
                    store.fetch_outcome(i) for i in range(store.n_rows)}
        # Unsuperseded originals come back equal; the corrected
        # fingerprint carries the correction, not the original.
        for outcome in originals[1:]:
            assert restored[outcome.fingerprint] == outcome
        assert restored[corrected.fingerprint] == corrected

    def test_fully_dead_shard_is_deleted_without_replacement(
            self, tmp_path):
        directory = str(tmp_path / "store")
        first = [make_result(i, power=10.0 + i) for i in range(4)]
        rewritten = [make_result(i, power=10.0 + i, worst_board_c=45.0)
                     for i in range(4)]
        with ResultStoreWriter(directory, shard_rows=4) as writer:
            writer.add_many(first)      # shard 0: all superseded below
            writer.add_many(rewritten)  # shard 1: all live
        compaction = compact_store(directory)
        assert compaction.shards_rewritten == 1
        assert compaction.shards_published == 0
        assert not os.path.exists(
            os.path.join(directory, "shard-000000.rows"))
        assert not os.path.exists(
            os.path.join(directory, "shard-000000.blobs"))
        store = ResultStore.open(directory)
        assert store.n_rows == 4

    def test_all_live_store_is_untouched(self, tmp_path):
        directory = str(tmp_path / "store")
        with ResultStoreWriter(directory, shard_rows=4) as writer:
            writer.add_many(make_result(i, power=10.0 + i)
                            for i in range(8))
        listing = sorted(os.listdir(directory))
        perf.reset()
        compaction = compact_store(directory)
        assert compaction.changed is False
        assert compaction.rows_dropped == 0
        assert sorted(os.listdir(directory)) == listing
        assert perf.counter("retention.store_compactions") == 0

    def test_orphan_blob_pools_are_swept(self, tmp_path):
        directory = str(tmp_path / "store")
        with ResultStoreWriter(directory, shard_rows=4) as writer:
            writer.add_many(make_result(i, power=10.0 + i)
                            for i in range(4))
        orphan = os.path.join(directory, "shard-000099.blobs")
        with open(orphan, "wb") as stream:
            stream.write(b"abandoned mid-publish")
        compaction = compact_store(directory)
        assert compaction.orphan_blobs_removed == 1
        assert compaction.changed is True
        assert not os.path.exists(orphan)

    def test_quarantined_shards_are_left_as_evidence(self, tmp_path):
        directory = str(tmp_path / "store")
        build_superseded_store(directory)
        victim = os.path.join(directory, "shard-000001.rows")
        payload = bytearray(open(victim, "rb").read())
        payload[-10] ^= 0xFF
        with open(victim, "wb") as stream:
            stream.write(payload)
        ResultStore.open(directory)  # quarantines shard 1
        quarantined = sorted(name for name in os.listdir(directory)
                             if ".quarantine" in name)
        assert quarantined
        compact_store(directory)
        survivors = sorted(name for name in os.listdir(directory)
                           if ".quarantine" in name)
        assert survivors == quarantined

    def test_blob_quarantined_shard_is_not_rewritten(self, tmp_path):
        # Rows whose blob pool is damaged stay queryable; rewriting
        # them would discard the last chance of re-pairing with
        # recovered blobs, so compaction must skip the shard even when
        # it holds superseded rows.
        directory = str(tmp_path / "store")
        build_superseded_store(directory, n=8, shard_rows=4)
        victim = os.path.join(directory, "shard-000000.blobs")
        payload = bytearray(open(victim, "rb").read())
        payload[-3] ^= 0xFF
        with open(victim, "wb") as stream:
            stream.write(payload)
        ResultStore.open(directory)
        rows_before = open(
            os.path.join(directory, "shard-000000.rows"), "rb").read()
        compact_store(directory)
        assert open(os.path.join(directory, "shard-000000.rows"),
                    "rb").read() == rows_before

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ResultStoreError):
            compact_store(str(tmp_path / "absent"))

    def test_writer_lock_contention_raises(self, tmp_path):
        directory = str(tmp_path / "store")
        writer = ResultStoreWriter(directory)
        try:
            writer.add(make_result(0))
            with pytest.raises(ResultStoreError):
                compact_store(directory)
        finally:
            writer.close()
        compact_store(directory)  # released lock admits the compactor


class TestCrashSeams:
    """Abort at every phase; signature parity and convergence after."""

    PHASES = ("open", "plan", "publish", "delete", "done")

    @pytest.mark.parametrize("target", PHASES)
    def test_abort_at_phase_preserves_signature_then_converges(
            self, tmp_path, target):
        pristine = str(tmp_path / "pristine")
        build_superseded_store(pristine)
        signature = ranking_signature(ResultStore.open(pristine))
        view = live_view(ResultStore.open(pristine))

        directory = str(tmp_path / f"crash-{target}")
        shutil.copytree(pristine, directory)

        class Abort(Exception):
            pass

        def hook(phase):
            if phase == target:
                raise Abort(phase)

        with pytest.raises(Abort):
            compact_store(directory, phase_hook=hook)

        # Whatever the abort left behind — originals, duplicates, or
        # the finished state — the store answers identically.
        store = ResultStore.open(directory)
        assert ranking_signature(store) == signature
        assert live_view(store) == view

        # And a retried pass converges to the fully compacted state.
        compact_store(directory)
        final = ResultStore.open(directory)
        assert ranking_signature(final) == signature
        assert bool(final.live_mask().all())
        assert compact_store(directory).changed is False

    def test_duplicates_after_publish_crash_resolve_latest_wins(
            self, tmp_path):
        directory = str(tmp_path / "store")
        n_dead = build_superseded_store(directory)
        n_total = ResultStore.open(directory).n_rows

        class Abort(Exception):
            pass

        def hook(phase):
            if phase == "delete":
                raise Abort(phase)

        with pytest.raises(Abort):
            compact_store(directory, phase_hook=hook)
        # Replacements are published, originals not yet deleted: the
        # live rows exist twice, and the mask keeps exactly one copy.
        store = ResultStore.open(directory)
        assert store.n_rows > n_total - n_dead
        live = store.live_mask()
        fingerprints = store.column("fingerprint")[live]
        assert len(set(fingerprints.tolist())) == int(live.sum())
        assert int(live.sum()) == n_total - n_dead
