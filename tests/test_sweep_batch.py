"""SweepRunner batch scheduling (:class:`avipack.sweep.NetworkSweepEvaluator`).

A batch-capable evaluator routes whole task lists through the
vectorized solver core; these tests pin the contract around it: a
batched sweep and the forced-scalar sweep of the same grid must agree
on every outcome (temperatures to rel 1e-10, identical rankings, the
same structured failures for non-converging candidates), while
journaling, resume and cache semantics stay exactly as on the classic
paths.
"""

import pytest

from avipack.errors import InputError
from avipack.sweep import (
    Candidate,
    CandidateFailure,
    NetworkSweepEvaluator,
    SweepRunner,
    render_sweep_document,
)
from avipack.thermal import ThermalNetwork

REL = 1e-10

#: Conductance variant per TIM choice — two topology-sharing variants,
#: so a grid over (tim, power) exercises both the stacked-assembly axis
#: and the multi-RHS axis of the batch core.
_G_TIM = {"standard_grease": 3.0, "silicone_pad": 1.5}


def build_candidate_network(candidate):
    """Realise a candidate as a small board-stack network (picklable)."""
    power = candidate.power_per_module
    net = ThermalNetwork()
    net.add_node("chip", heat_load=power)
    net.add_node("case", heat_load=0.1 * power)
    net.add_node("board")
    net.add_node("sink", fixed_temperature=300.0)
    net.add_conductance("chip", "case", _G_TIM[candidate.tim_name])
    net.add_conductance("case", "board", 2.0)
    net.add_conductance("board", "sink", 1.5)
    return net


def build_sometimes_oscillating(candidate):
    """Networks where ``series_fraction >= 0.9`` never converge."""
    net = build_candidate_network(candidate)
    if candidate.series_fraction >= 0.9:
        net.add_conductance(
            "case", "sink",
            lambda a, b: 0.02 if int(a * 1e6) % 2 == 0 else 8.0)
    else:
        net.add_conductance("case", "sink",
                            lambda a, b: 0.05 + 1e-4 * (a - b))
    return net


def make_grid(n_powers=6):
    # Powers chosen so every board runs hotter than the 40 degC rack
    # supply: restored outcomes must pass the resume-time first-law
    # audit (avipack.durability.audit), not get flagged and recomputed.
    return [Candidate(power_per_module=12.0 + 2.0 * k, tim_name=tim)
            for tim in sorted(_G_TIM) for k in range(n_powers)]


def run_pair(candidates, tmp_path=None, **evaluator_kwargs):
    """The same grid via the batch scheduler and the scalar baseline."""
    batched = SweepRunner(
        parallel=False,
        evaluator=NetworkSweepEvaluator(build_candidate_network,
                                        **evaluator_kwargs),
    ).run(candidates)
    scalar = SweepRunner(
        parallel=False, batch=False,
        evaluator=NetworkSweepEvaluator(build_candidate_network,
                                        **evaluator_kwargs),
    ).run(candidates)
    return batched, scalar


class TestBatchedVsScalarParity:
    def test_modes_and_flags(self):
        batched, scalar = run_pair(make_grid())
        assert batched.mode == "batched"
        assert scalar.mode == "serial"
        assert batched.n_batched == len(batched.outcomes)
        assert scalar.n_batched == 0
        assert all(o.batched for o in batched.results)
        assert not any(o.batched for o in scalar.results)

    def test_temperature_and_compliance_parity(self):
        batched, scalar = run_pair(make_grid())
        for a, b in zip(batched.outcomes, scalar.outcomes):
            assert a.index == b.index
            assert a.compliant == b.compliant
            assert abs(a.worst_board_c - b.worst_board_c) <= \
                REL * max(1.0, abs(b.worst_board_c))
            assert a.margins["network_board_margin_c"] == pytest.approx(
                b.margins["network_board_margin_c"], abs=1e-8)

    def test_identical_rankings(self):
        batched, scalar = run_pair(make_grid())
        assert [o.index for o in batched.ranked()] == \
            [o.index for o in scalar.ranked()]
        assert batched.best().fingerprint == scalar.best().fingerprint

    def test_board_limit_violations_match(self):
        batched, scalar = run_pair(make_grid(), board_limit_c=55.0)
        assert batched.n_compliant == scalar.n_compliant
        assert batched.n_compliant < len(batched.outcomes)
        for a, b in zip(batched.outcomes, scalar.outcomes):
            assert a.violations == b.violations

    def test_perf_counters_record_the_batch(self):
        batched, _ = run_pair(make_grid())
        by_kernel = {stats.kernel: stats for stats in batched.perf}
        stats = by_kernel["network.batched"]
        assert stats.batched_solves >= 1
        assert stats.batch_width == len(batched.outcomes)
        assert stats.factorization_reuses > 0


class TestMixedConvergenceGroups:
    def grids(self):
        good = [Candidate(power_per_module=4.0 + 2.0 * k,
                          series_fraction=0.3) for k in range(4)]
        bad = [Candidate(power_per_module=9.0, series_fraction=0.9)]
        return good + bad

    def run_pair(self):
        results = []
        for batch in (None, False):
            runner = SweepRunner(
                parallel=False, batch=batch,
                evaluator=NetworkSweepEvaluator(
                    build_sometimes_oscillating, max_iterations=40))
            results.append(runner.run(self.grids()))
        return results

    def test_stragglers_fail_identically(self):
        batched, scalar = self.run_pair()
        assert len(batched.failures) == len(scalar.failures) == 1
        a, b = batched.failures[0], scalar.failures[0]
        assert a.index == b.index
        assert a.stage == b.stage == "solve"
        assert a.error_type == b.error_type == "ConvergenceError"
        assert a.message == b.message

    def test_survivors_keep_parity_and_ranking(self):
        batched, scalar = self.run_pair()
        assert len(batched.results) == len(scalar.results) == 4
        assert all(o.batched for o in batched.results)
        for a, b in zip(batched.results, scalar.results):
            assert abs(a.worst_board_c - b.worst_board_c) <= \
                REL * max(1.0, abs(b.worst_board_c))
        assert [o.index for o in batched.ranked()] == \
            [o.index for o in scalar.ranked()]

    def test_build_failures_stay_isolated(self):
        def fragile(candidate):
            if candidate.n_components == 13:
                raise InputError("unbuildable candidate")
            return build_candidate_network(candidate)

        candidates = [Candidate(power_per_module=5.0),
                      Candidate(power_per_module=6.0, n_components=13),
                      Candidate(power_per_module=7.0)]
        report = SweepRunner(
            parallel=False,
            evaluator=NetworkSweepEvaluator(fragile)).run(candidates)
        assert report.mode == "batched"
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert isinstance(failure, CandidateFailure)
        assert failure.stage == "build"
        assert failure.message == "unbuildable candidate"
        assert len(report.results) == 2


class TestReportAndJournal:
    def test_report_renders_batched_line(self):
        batched, scalar = run_pair(make_grid(3))
        document = render_sweep_document(batched)
        assert "batched" in document
        assert f"{batched.n_batched} candidates via topology-group" \
            in document
        assert "batched" not in render_sweep_document(scalar)

    def test_journalled_batch_sweep_resumes(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        evaluator = NetworkSweepEvaluator(build_candidate_network)
        fresh = SweepRunner(parallel=False, evaluator=evaluator).run(
            make_grid(3), journal_path=path)
        assert fresh.mode == "batched"
        resumed = SweepRunner(parallel=False,
                              evaluator=evaluator).resume(path)
        assert resumed.durability.n_resumed == len(fresh.outcomes)
        assert resumed.durability.n_recomputed == 0
        # The batched flag survives the journal round-trip.
        assert resumed.n_batched == fresh.n_batched
        assert [o.index for o in resumed.ranked()] == \
            [o.index for o in fresh.ranked()]


class TestCacheSharing:
    def test_scalar_run_hits_batch_written_entries(self, tmp_path):
        candidates = make_grid(3)
        cache_dir = str(tmp_path / "cache")
        evaluator = NetworkSweepEvaluator(build_candidate_network)
        first = SweepRunner(parallel=False, evaluator=evaluator,
                            cache_dir=cache_dir).run(candidates)
        assert first.mode == "batched"
        assert first.cache.misses >= len(candidates)
        second = SweepRunner(parallel=False, batch=False,
                             evaluator=evaluator,
                             cache_dir=cache_dir).run(candidates)
        assert second.cache.hits == len(candidates)
        assert second.cache.misses == 0

    def test_second_batched_run_is_all_hits(self, tmp_path):
        candidates = make_grid(3)
        cache_dir = str(tmp_path / "cache")
        evaluator = NetworkSweepEvaluator(build_candidate_network)
        SweepRunner(parallel=False, evaluator=evaluator,
                    cache_dir=cache_dir).run(candidates)
        again = SweepRunner(parallel=False, evaluator=evaluator,
                            cache_dir=cache_dir).run(candidates)
        assert again.cache.hits == len(candidates)
        # Cache answers are not batch answers: nothing reached the core.
        assert again.n_batched == 0
        assert [o.index for o in again.ranked()] == \
            [o.index for o in SweepRunner(
                parallel=False, batch=False, evaluator=evaluator,
            ).run(candidates).ranked()]


class TestProtocolAndValidation:
    def test_batch_true_requires_capable_evaluator(self):
        with pytest.raises(InputError, match="batch support"):
            SweepRunner(batch=True, evaluator=lambda task: None)
        runner = SweepRunner(
            parallel=False, batch=True,
            evaluator=NetworkSweepEvaluator(build_candidate_network))
        report = runner.run(make_grid(2))
        assert report.mode == "batched"

    def test_default_evaluator_never_batches(self):
        report = SweepRunner(parallel=False).run(
            [Candidate(power_per_module=10.0)])
        assert report.mode == "serial"
        assert report.n_batched == 0

    def test_evaluator_validates_settings(self):
        with pytest.raises(InputError, match="callable"):
            NetworkSweepEvaluator("not-a-function")
        with pytest.raises(InputError, match="relaxation"):
            NetworkSweepEvaluator(build_candidate_network,
                                  relaxation=1.5)

    def test_scalar_call_protocol_on_parallel_path(self):
        """batch=False + parallel exercises the picklable __call__ path."""
        report = SweepRunner(
            max_workers=2, batch=False,
            evaluator=NetworkSweepEvaluator(build_candidate_network),
        ).run(make_grid(2))
        assert len(report.outcomes) == 4
        assert not report.failures
        assert report.n_batched == 0
        reference = SweepRunner(
            parallel=False, batch=False,
            evaluator=NetworkSweepEvaluator(build_candidate_network),
        ).run(make_grid(2))
        for a, b in zip(report.outcomes, reference.outcomes):
            assert a.worst_board_c == pytest.approx(b.worst_board_c,
                                                    abs=1e-9)
