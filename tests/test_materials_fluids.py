"""Tests for fluid property correlations, checked against handbook values."""

import pytest

from avipack.errors import InputError, ModelRangeError
from avipack.materials.fluids import (
    air_properties,
    list_working_fluids,
    rank_working_fluids,
    saturation_properties,
    water_properties,
)


class TestAir:
    def test_density_at_300k(self):
        # Ideal gas: 1.177 kg/m3 at 300 K, 1 atm.
        assert air_properties(300.0).density == pytest.approx(1.177,
                                                              rel=0.01)

    def test_viscosity_at_300k(self):
        # Sutherland: ~1.85e-5 Pa.s.
        assert air_properties(300.0).viscosity \
            == pytest.approx(1.85e-5, rel=0.02)

    def test_prandtl_near_0p7(self):
        assert air_properties(300.0).prandtl == pytest.approx(0.71,
                                                              abs=0.03)

    def test_expansion_is_ideal_gas(self):
        assert air_properties(350.0).expansion_coeff \
            == pytest.approx(1.0 / 350.0)

    def test_density_scales_with_pressure(self):
        sea = air_properties(300.0, 101_325.0)
        altitude = air_properties(300.0, 50_000.0)
        assert altitude.density == pytest.approx(
            sea.density * 50_000.0 / 101_325.0, rel=1e-9)

    def test_out_of_range(self):
        with pytest.raises(ModelRangeError):
            air_properties(100.0)

    def test_negative_pressure(self):
        with pytest.raises(InputError):
            air_properties(300.0, -1.0)


class TestWater:
    def test_density_at_20c(self):
        assert water_properties(293.15).density == pytest.approx(998.2,
                                                                 rel=0.005)

    def test_viscosity_at_20c(self):
        assert water_properties(293.15).viscosity \
            == pytest.approx(1.0e-3, rel=0.05)

    def test_conductivity_at_20c(self):
        assert water_properties(293.15).conductivity \
            == pytest.approx(0.60, rel=0.03)

    def test_prandtl_at_20c(self):
        assert water_properties(293.15).prandtl == pytest.approx(7.0,
                                                                 rel=0.1)

    def test_out_of_range(self):
        with pytest.raises(ModelRangeError):
            water_properties(400.0)


class TestSaturation:
    def test_water_boiling_point(self):
        state = saturation_properties("water", 373.15)
        assert state.pressure == pytest.approx(101_325.0, rel=0.01)
        assert state.latent_heat == pytest.approx(2.257e6, rel=0.01)

    def test_water_at_60c(self):
        # Steam tables: 19.95 kPa at 60 degC.
        state = saturation_properties("water", 333.15)
        assert state.pressure == pytest.approx(19_950.0, rel=0.03)

    def test_ammonia_at_25c(self):
        # NIST: ~10.0 bar at 25 degC.
        state = saturation_properties("ammonia", 298.15)
        assert state.pressure == pytest.approx(1.0e6, rel=0.1)

    def test_latent_heat_decreases_towards_critical(self):
        low = saturation_properties("water", 300.0)
        high = saturation_properties("water", 450.0)
        assert high.latent_heat < low.latent_heat

    def test_surface_tension_decreases_with_temperature(self):
        low = saturation_properties("acetone", 280.0)
        high = saturation_properties("acetone", 400.0)
        assert high.surface_tension < low.surface_tension

    def test_vapor_density_increases_with_temperature(self):
        low = saturation_properties("methanol", 300.0)
        high = saturation_properties("methanol", 400.0)
        assert high.vapor_density > low.vapor_density

    def test_liquid_denser_than_vapor(self):
        for fluid in list_working_fluids():
            state = saturation_properties(fluid, 320.0)
            assert state.liquid_density > state.vapor_density

    def test_unknown_fluid(self):
        with pytest.raises(InputError):
            saturation_properties("mercury", 400.0)

    def test_out_of_range(self):
        with pytest.raises(ModelRangeError):
            saturation_properties("ammonia", 500.0)

    def test_all_fluids_evaluate_mid_range(self):
        for fluid in list_working_fluids():
            state = saturation_properties(fluid, 320.0)
            assert state.pressure > 0.0
            assert state.latent_heat > 0.0
            assert state.merit_number() > 0.0


class TestMeritRanking:
    def test_water_wins_at_electronics_temperatures(self):
        # Water has the highest figure of merit in the 300-450 K band.
        ranking = rank_working_fluids(330.0)
        assert ranking[0][0] == "water"

    def test_ranking_sorted_descending(self):
        ranking = rank_working_fluids(330.0)
        merits = [merit for _name, merit in ranking]
        assert merits == sorted(merits, reverse=True)

    def test_cold_ranking_excludes_water(self):
        # Water correlation does not reach 220 K (frozen anyway).
        names = [name for name, _merit in rank_working_fluids(220.0)]
        assert "water" not in names
        assert "ammonia" in names

    def test_water_merit_magnitude(self):
        # Literature: water merit ~ 3-5e11 W/m2 near 330-370 K.
        ranking = dict(rank_working_fluids(350.0))
        assert ranking["water"] == pytest.approx(4.0e11, rel=0.5)
