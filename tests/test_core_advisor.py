"""Tests for the design-closure advisor."""

import pytest

from avipack.core.advisor import (
    DesignMove,
    advise,
    advise_cooling_escalation,
    advise_mode_placement,
    junction_drop_for_mtbf,
)
from avipack.core.design_flow import (
    FrequencyAllocation,
    PackagingSpecification,
    run_design_procedure,
)
from avipack.core.selector import Architecture
from avipack.errors import InputError
from avipack.mechanical.plate import PlateSpec, fundamental_frequency
from avipack.packaging.component import make_component
from avipack.packaging.module import Module
from avipack.packaging.pcb import Pcb
from avipack.packaging.rack import Rack
from avipack.reliability.mtbf import PartReliability


def build_rack(power=6.0):
    rack = Rack("advised_rack")
    board = Pcb(0.16, 0.1, n_copper_layers=8, copper_coverage=0.7)
    board.place(make_component("u1", "bga_35mm", power * 0.6,
                               (0.08, 0.05)))
    board.place(make_component("u2", "to_220", power * 0.4,
                               (0.04, 0.03)))
    rack.add_module(Module("m1", pcb=board))
    return rack


@pytest.fixture
def soft_board():
    return PlateSpec(0.17, 0.13, 1.2e-3, 22e9, 0.28, 1850.0,
                     component_mass=0.3)


class TestModePlacement:
    def test_proposes_stiffening_and_thickness(self, soft_board):
        moves = advise_mode_placement(soft_board, 500.0)
        parameters = {move.parameter for move in moves}
        assert "stiffener_rigidity" in parameters

    def test_recommendation_actually_works(self, soft_board):
        from dataclasses import replace

        moves = advise_mode_placement(soft_board, 500.0)
        rigidity = next(m.value for m in moves
                        if m.parameter == "stiffener_rigidity")
        fixed = replace(soft_board, stiffener_rigidity=rigidity)
        assert fundamental_frequency(fixed) >= 499.0

    def test_no_moves_when_already_stiff(self):
        stiff = PlateSpec(0.1, 0.08, 4e-3, 70e9, 0.3, 2700.0)
        assert advise_mode_placement(stiff, 100.0) == []

    def test_invalid_target(self, soft_board):
        with pytest.raises(InputError):
            advise_mode_placement(soft_board, -100.0)


class TestCoolingEscalation:
    def test_hotspot_case_escalates_to_two_phase(self):
        move = advise_cooling_escalation(120.0, 40.0)
        assert "heat_pipe" in move.action or "thermosyphon" in move.action
        assert move.intrusiveness >= 3

    def test_mild_case_stays_simple(self):
        move = advise_cooling_escalation(15.0, 1.0)
        assert move.intrusiveness <= 2


class TestJunctionDrop:
    def test_zero_when_target_met(self):
        assert junction_drop_for_mtbf(50_000.0, 40_000.0, 370.0) == 0.0

    def test_positive_drop_for_gap(self):
        drop = junction_drop_for_mtbf(20_000.0, 40_000.0, 370.0)
        assert drop > 0.0

    def test_drop_closes_the_gap(self):
        # Verify against the forward Arrhenius model.
        import math

        from avipack.units import BOLTZMANN_EV

        t_j = 380.0
        drop = junction_drop_for_mtbf(20_000.0, 40_000.0, t_j,
                                      activation_energy_ev=0.45)
        accel = math.exp(0.45 / BOLTZMANN_EV
                         * (1.0 / (t_j - drop) - 1.0 / t_j))
        assert 1.0 / accel == pytest.approx(0.5, rel=1e-6)

    def test_bigger_gap_bigger_drop(self):
        small = junction_drop_for_mtbf(30_000.0, 40_000.0, 370.0)
        large = junction_drop_for_mtbf(10_000.0, 40_000.0, 370.0)
        assert large > small

    def test_invalid_inputs(self):
        with pytest.raises(InputError):
            junction_drop_for_mtbf(-1.0, 40_000.0, 370.0)


class TestFullAdvise:
    def test_compliant_review_no_moves(self):
        review = run_design_procedure(build_rack(6.0),
                                      PackagingSpecification("ok"))
        assert advise(review) == []

    def test_frequency_violation_gets_mechanical_move(self):
        spec = PackagingSpecification(
            "freq", frequency_allocation=FrequencyAllocation(2000.0,
                                                             3000.0))
        review = run_design_procedure(build_rack(6.0), spec)
        moves = advise(review)
        assert any(move.category == "mechanical" for move in moves)

    def test_thermal_violation_gets_escalation(self):
        review = run_design_procedure(build_rack(120.0),
                                      PackagingSpecification("hot"))
        moves = advise(review, module_power=120.0, peak_flux_w_cm2=12.0)
        assert any(move.category == "thermal" for move in moves)

    def test_mtbf_violation_quantifies_junction_drop(self):
        parts = [PartReliability("u1", 3000.0, 0.5),
                 PartReliability("u2", 2000.0)]
        review = run_design_procedure(build_rack(8.0),
                                      PackagingSpecification("rel"),
                                      parts=parts)
        if review.compliant:
            pytest.skip("fixture unexpectedly compliant")
        moves = advise(review)
        reliability_moves = [m for m in moves
                             if m.category == "reliability"]
        assert reliability_moves
        assert reliability_moves[0].value > 0.0

    def test_moves_sorted_by_intrusiveness(self):
        review = run_design_procedure(build_rack(120.0),
                                      PackagingSpecification("multi"))
        moves = advise(review, module_power=120.0)
        levels = [move.intrusiveness for move in moves]
        assert levels == sorted(levels)

    def test_invalid_move_construction(self):
        with pytest.raises(InputError):
            DesignMove("x", "y", "z", 1.0, intrusiveness=9)
