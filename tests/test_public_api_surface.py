"""Direct tests of public result types, constants and the error family."""

import math

import pytest

from avipack import errors
from avipack.mechanical.fatigue import BAND_FRACTIONS, COMPONENT_CONSTANTS
from avipack.mechanical.plate import PlateMode
from avipack.reliability.mtbf import (
    ENVIRONMENT_FACTORS,
    MAX_AMBIENT,
    MAX_JUNCTION,
    QUALITY_FACTORS,
    REFERENCE_JUNCTION,
)
from avipack.tim.models import LEWIS_NIELSEN_SHAPES
from avipack.units import ATM, R_UNIVERSAL, ZERO_CELSIUS


class TestErrorHierarchy:
    def test_all_derive_from_base(self):
        for name in ("InputError", "ConvergenceError", "ModelRangeError",
                     "OperatingLimitError", "SpecificationError",
                     "MaterialNotFoundError"):
            assert issubclass(getattr(errors, name), errors.AvipackError)

    def test_input_error_is_value_error(self):
        # Callers using stdlib idioms still catch our input errors.
        assert issubclass(errors.InputError, ValueError)

    def test_convergence_error_attributes(self):
        exc = errors.ConvergenceError("failed", iterations=17,
                                      residual=0.5)
        assert exc.iterations == 17
        assert exc.residual == pytest.approx(0.5)

    def test_convergence_error_defaults(self):
        exc = errors.ConvergenceError("failed")
        assert math.isnan(exc.residual)

    def test_operating_limit_attributes(self):
        exc = errors.OperatingLimitError("over", limit_name="capillary",
                                         limit_value=42.0)
        assert exc.limit_name == "capillary"
        assert exc.limit_value == pytest.approx(42.0)

    def test_specification_error_violations(self):
        exc = errors.SpecificationError("bad", violations=("a", "b"))
        assert exc.violations == ("a", "b")

    def test_catch_all_with_base(self):
        with pytest.raises(errors.AvipackError):
            raise errors.ModelRangeError("out of range")


class TestConstants:
    def test_atm(self):
        assert ATM == pytest.approx(101_325.0)

    def test_gas_constant(self):
        assert R_UNIVERSAL == pytest.approx(8.31446, rel=1e-5)

    def test_zero_celsius(self):
        assert ZERO_CELSIUS == pytest.approx(273.15)

    def test_band_fractions_cover_three_sigma(self):
        # 68.3 + 27.1 + 4.33 ~ 99.7 % of a Gaussian.
        assert sum(BAND_FRACTIONS) == pytest.approx(0.997, abs=0.003)

    def test_component_constants_ordered_by_fragility(self):
        # Leadless parts are the most deflection-sensitive (largest C).
        assert COMPONENT_CONSTANTS["smt_leadless"] \
            > COMPONENT_CONSTANTS["dip_axial"]
        assert COMPONENT_CONSTANTS["to_can"] \
            < COMPONENT_CONSTANTS["dip_axial"]

    def test_lewis_nielsen_shapes_physical(self):
        for shape, (a, phi_max) in LEWIS_NIELSEN_SHAPES.items():
            assert a > 0.0, shape
            assert 0.0 < phi_max < 1.0, shape
        # Elongated fillers have larger shape factors than spheres.
        assert LEWIS_NIELSEN_SHAPES["long_fibers"][0] \
            > LEWIS_NIELSEN_SHAPES["spheres"][0]

    def test_reliability_rule_constants(self):
        assert MAX_JUNCTION == pytest.approx(398.15)   # 125 degC
        assert MAX_AMBIENT == pytest.approx(358.15)    # 85 degC
        assert REFERENCE_JUNCTION < MAX_JUNCTION

    def test_environment_factors_ordering(self):
        # Fighter uninhabited harsher than cargo inhabited; ground
        # benign mildest of the airborne/ground set.
        assert ENVIRONMENT_FACTORS["airborne_uninhabited_fighter"] \
            > ENVIRONMENT_FACTORS["airborne_inhabited_cargo"]
        assert ENVIRONMENT_FACTORS["ground_benign"] \
            <= min(v for k, v in ENVIRONMENT_FACTORS.items()
                   if k != "space_flight")

    def test_quality_factors_cots_worst(self):
        assert QUALITY_FACTORS["commercial_cots"] \
            == max(QUALITY_FACTORS.values())


class TestResultTypes:
    def test_plate_mode_omega(self):
        mode = PlateMode(frequency_hz=100.0, indices=(1, 1))
        assert mode.omega == pytest.approx(2.0 * math.pi * 100.0)

    def test_network_solution_accessors(self):
        from avipack.thermal.network import ThermalNetwork

        net = ThermalNetwork()
        net.add_node("a", heat_load=4.0)
        net.add_node("s", fixed_temperature=300.0)
        net.add_resistance("a", "s", 0.5, label="leg")
        sol = net.solve()
        assert sol.iterations >= 1
        assert sol.heat_flows["leg"] == pytest.approx(4.0)
        assert sol.delta("a", "s") == pytest.approx(2.0)

    def test_d5470_measurement_units(self):
        from avipack.tim.interface import ThermalInterface
        from avipack.tim.tester import D5470Tester

        iface = ThermalInterface(10.0, 50e-6, 1e-6, 6.45e-4)
        reading = D5470Tester(resistance_accuracy_kmm2=0.0,
                              thickness_accuracy=0.0).measure(iface)
        assert reading.specific_resistance_kmm2 == pytest.approx(
            reading.specific_resistance * 1e6)

    def test_solder_assessment_fields(self):
        from avipack.mechanical.thermomechanical import \
            solder_joint_assessment

        assessment = solder_joint_assessment(10e-3, 0.2e-3, 7e-6,
                                             16e-6, 80.0)
        assert assessment.shear_strain > 0.0
        assert assessment.life_years_at_daily_cycles == pytest.approx(
            assessment.cycles_to_failure / (2.0 * 365.0))

    def test_cooling_evaluation_rise(self):
        from avipack.packaging.cooling import (
            CoolingTechnique,
            evaluate_cooling,
        )

        evaluation = evaluate_cooling(CoolingTechnique.FREE_CONVECTION,
                                      10.0)
        assert evaluation.rise == pytest.approx(
            evaluation.board_temperature
            - evaluation.ambient_temperature)

    def test_ceiling_structure_builder(self):
        from avipack.experiments.cosee import ceiling_structure

        structure = ceiling_structure()
        assert structure.total_area > 0.2
        assert structure.fin_efficiency(10.0) > 0.5
