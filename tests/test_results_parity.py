"""Store/journal parity: ingesting a replayed journal reproduces the
in-memory ranking exactly — recovered, degraded and timed-out candidates
included, quarantined-record gaps and all."""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from avipack.durability.journal import SweepJournal, replay_journal
from avipack.fingerprint import stable_fingerprint
from avipack.resilience.policy import RecoveryTrail
from avipack.results import ResultStore, ingest_journal, ranking_signature
from avipack.sweep.runner import CandidateFailure, CandidateResult
from avipack.sweep.space import Candidate

_LIMIT_C = 85.0


def build_outcome(index, spec):
    """One outcome from a hypothesis-drawn ``spec`` dict."""
    candidate = Candidate(power_per_module=10.0 + index * 0.5,
                          n_modules=2 + index % 7)
    if spec["kind"] == "timeout":
        return CandidateFailure(
            index=index, candidate=candidate,
            fingerprint=candidate.fingerprint, stage="watchdog",
            error_type="WatchdogTimeout", message="hung",
            elapsed_s=1.0, worker_pid=0)
    if spec["kind"] == "failed":
        return CandidateFailure(
            index=index, candidate=candidate,
            fingerprint=candidate.fingerprint, stage="level3",
            error_type="ConvergenceError", message="diverged",
            elapsed_s=0.2, worker_pid=1)
    trails = ()
    if spec["recovered"]:
        trails = (RecoveryTrail(site="level3.solve", attempts=(),
                                recovered=True, degraded=False),)
    return CandidateResult(
        index=index, candidate=candidate,
        fingerprint=candidate.fingerprint,
        compliant=spec["compliant"], violations=(),
        margins={"fundamental_hz": 100.0, "fatigue_margin": 1.0,
                 "deflection_margin": 1.0, "mtbf_hours": 5.0e4},
        worst_board_c=float(spec["worst_decidegrees"]) / 10.0,
        recommended_cooling=candidate.cooling,
        declared_cooling_feasible=True,
        cost_rank=float(spec["cost_class"]),
        elapsed_s=0.01, worker_pid=1, cache_hits=0, cache_misses=1,
        degraded=spec["degraded"], recovery=trails)


def write_journal(path, outcomes):
    candidates = tuple(outcome.candidate for outcome in outcomes)
    journal = SweepJournal.create(
        path, candidates,
        space_fingerprint=stable_fingerprint(candidates))
    for outcome in outcomes:
        journal.record_dispatched(outcome.index, outcome.candidate)
        journal.record_outcome(outcome)
    journal.close()


def corrupt_outcome_records(path, victims):
    """Flip a byte in the ``victims``-th outcome records of a journal."""
    with open(path, "rb") as stream:
        lines = stream.readlines()
    outcome_positions = [
        position for position, line in enumerate(lines)
        if json.loads(line)["body"]["kind"] in
        ("completed", "failed", "timeout")]
    corrupted = 0
    for victim in victims:
        if victim >= len(outcome_positions):
            continue
        position = outcome_positions[victim]
        flipped = bytearray(lines[position])
        flipped[len(flipped) // 2] ^= 0x10
        lines[position] = bytes(flipped)
        corrupted += 1
    with open(path, "wb") as stream:
        stream.writelines(lines)
    return corrupted


def reference_signature(path):
    """The in-memory ranking a resume of this journal would produce."""
    replay = replay_journal(path, write_quarantine=False)
    survivors = [o for o in replay.outcomes.values() if o.compliant]
    ranked = sorted(survivors, key=lambda o: (o.cost_rank,
                                              -o.thermal_headroom_c,
                                              o.index))
    return [(o.fingerprint, o.cost_rank, o.worst_board_c) for o in ranked]


outcome_specs = st.fixed_dictionaries({
    "kind": st.sampled_from(["completed", "completed", "completed",
                             "failed", "timeout"]),
    "compliant": st.booleans(),
    "cost_class": st.integers(min_value=0, max_value=2),
    # Deci-degree grid forces headroom ties across candidates.
    "worst_decidegrees": st.integers(min_value=500, max_value=840),
    "degraded": st.booleans(),
    "recovered": st.booleans(),
})


@settings(max_examples=25, deadline=None)
@given(specs=st.lists(outcome_specs, min_size=1, max_size=40),
       victims=st.sets(st.integers(min_value=0, max_value=39),
                       max_size=5))
def test_ingested_store_ranks_identically(tmp_path_factory, specs,
                                          victims):
    base = tmp_path_factory.mktemp("parity")
    journal_path = str(base / "sweep.journal.jsonl")
    store_dir = str(base / "store")
    outcomes = [build_outcome(index, spec)
                for index, spec in enumerate(specs)]
    write_journal(journal_path, outcomes)
    corrupt_outcome_records(journal_path, victims)

    expected = reference_signature(journal_path)
    summary = ingest_journal(journal_path, store_dir,
                             write_quarantine=False)
    store = ResultStore.open(store_dir)
    assert ranking_signature(store) == expected
    for k in (1, 3, len(expected) or 1):
        assert ranking_signature(store, k) == expected[:k]
    # Quarantined records are gaps, not rows.
    survivors = len(replay_outcomes(journal_path))
    assert summary.n_rows == survivors
    assert store.n_rows == survivors


def replay_outcomes(path):
    return replay_journal(path, write_quarantine=False).outcomes


def test_status_flags_survive_the_columnar_trip(tmp_path):
    journal_path = str(tmp_path / "sweep.journal.jsonl")
    store_dir = str(tmp_path / "store")
    specs = [
        {"kind": "completed", "compliant": True, "cost_class": 0,
         "worst_decidegrees": 700, "degraded": False, "recovered": True},
        {"kind": "completed", "compliant": True, "cost_class": 0,
         "worst_decidegrees": 700, "degraded": True, "recovered": False},
        {"kind": "failed", "compliant": False, "cost_class": 0,
         "worst_decidegrees": 700, "degraded": False, "recovered": False},
        {"kind": "timeout", "compliant": False, "cost_class": 0,
         "worst_decidegrees": 700, "degraded": False, "recovered": False},
    ]
    outcomes = [build_outcome(i, spec) for i, spec in enumerate(specs)]
    write_journal(journal_path, outcomes)
    ingest_journal(journal_path, store_dir)
    store = ResultStore.open(store_dir)
    assert store.column("recovered").tolist() == [True, False, False,
                                                  False]
    assert store.column("degraded").tolist() == [False, True, False,
                                                 False]
    assert store.column("kind").tolist() == [0, 0, 1, 2]
    assert (store.column("error_type")[3].decode("ascii")
            == "WatchdogTimeout")
    # Identical headroom + cost: index breaks the tie deterministically.
    assert ranking_signature(store) == reference_signature(journal_path)


def test_every_record_quarantined_yields_empty_store(tmp_path):
    journal_path = str(tmp_path / "sweep.journal.jsonl")
    store_dir = str(tmp_path / "store")
    outcomes = [build_outcome(0, {"kind": "completed", "compliant": True,
                                  "cost_class": 0,
                                  "worst_decidegrees": 600,
                                  "degraded": False,
                                  "recovered": False})]
    write_journal(journal_path, outcomes)
    assert corrupt_outcome_records(journal_path, {0}) == 1
    summary = ingest_journal(journal_path, store_dir,
                             write_quarantine=False)
    assert summary.n_rows == 0
    assert summary.n_quarantined_records >= 1
    store = ResultStore.open(store_dir)
    assert store.n_rows == 0
    assert ranking_signature(store) == []
    assert os.path.isdir(store_dir)


def test_reingesting_same_journal_is_idempotent_via_live_mask(tmp_path):
    journal_path = str(tmp_path / "sweep.journal.jsonl")
    store_dir = str(tmp_path / "store")
    specs = [{"kind": "completed", "compliant": True, "cost_class": i % 2,
              "worst_decidegrees": 600 + 10 * i, "degraded": False,
              "recovered": False} for i in range(9)]
    outcomes = [build_outcome(i, spec) for i, spec in enumerate(specs)]
    write_journal(journal_path, outcomes)
    ingest_journal(journal_path, store_dir)
    ingest_journal(journal_path, store_dir)  # twice: rows duplicate...
    store = ResultStore.open(store_dir)
    assert store.n_rows == 18
    # ...but the live mask keeps one row per fingerprint, so the
    # ranking is unchanged.
    assert ranking_signature(store) == reference_signature(journal_path)


@pytest.mark.parametrize("shard_rows", [1, 4, 1000])
def test_parity_holds_across_shard_sizes(tmp_path, shard_rows):
    journal_path = str(tmp_path / "sweep.journal.jsonl")
    store_dir = str(tmp_path / f"store-{shard_rows}")
    specs = [{"kind": "completed", "compliant": True, "cost_class": i % 3,
              "worst_decidegrees": 840 - i, "degraded": False,
              "recovered": False} for i in range(25)]
    outcomes = [build_outcome(i, spec) for i, spec in enumerate(specs)]
    write_journal(journal_path, outcomes)
    ingest_journal(journal_path, store_dir, shard_rows=shard_rows)
    store = ResultStore.open(store_dir)
    assert ranking_signature(store) == reference_signature(journal_path)
