"""Property-based tests (hypothesis) on core solvers and invariants."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from avipack.mechanical.isolation import Isolator
from avipack.mechanical.plate import PlateSpec, fundamental_frequency
from avipack.mechanical.random_vibration import PowerSpectralDensity
from avipack.materials.fluids import air_properties, saturation_properties
from avipack.thermal.network import (
    ThermalNetwork,
    parallel_resistance,
    series_resistance,
)
from avipack.tim.models import bruggeman, lewis_nielsen, maxwell_garnett
from avipack.units import celsius_to_kelvin, kelvin_to_celsius

positive = st.floats(min_value=1e-3, max_value=1e3,
                     allow_nan=False, allow_infinity=False)


class TestUnitsProperties:
    @given(st.floats(min_value=-200.0, max_value=1000.0))
    def test_temperature_roundtrip(self, t_c):
        assert kelvin_to_celsius(celsius_to_kelvin(t_c)) \
            == pytest.approx(t_c, abs=1e-9)


class TestResistanceAlgebra:
    @given(st.lists(positive, min_size=1, max_size=6))
    def test_series_at_least_max(self, resistances):
        assert series_resistance(*resistances) \
            >= max(resistances) - 1e-12

    @given(st.lists(positive, min_size=1, max_size=6))
    def test_parallel_at_most_min(self, resistances):
        assert parallel_resistance(*resistances) \
            <= min(resistances) + 1e-12

    @given(positive, positive)
    def test_parallel_symmetric(self, r1, r2):
        assert parallel_resistance(r1, r2) \
            == pytest.approx(parallel_resistance(r2, r1))


class TestNetworkProperties:
    @given(load=st.floats(min_value=0.0, max_value=500.0),
           resistance=st.floats(min_value=0.01, max_value=100.0),
           sink=st.floats(min_value=200.0, max_value=400.0))
    def test_two_node_exact(self, load, resistance, sink):
        net = ThermalNetwork()
        net.add_node("hot", heat_load=load)
        net.add_node("sink", fixed_temperature=sink)
        net.add_resistance("hot", "sink", resistance)
        sol = net.solve()
        assert sol.temperature("hot") \
            == pytest.approx(sink + load * resistance, rel=1e-9)

    @given(loads=st.lists(st.floats(min_value=0.0, max_value=100.0),
                          min_size=2, max_size=5),
           sink=st.floats(min_value=250.0, max_value=350.0))
    @settings(max_examples=30)
    def test_chain_energy_conservation(self, loads, sink):
        net = ThermalNetwork()
        previous = "sink"
        net.add_node("sink", fixed_temperature=sink)
        for index, load in enumerate(loads):
            name = f"n{index}"
            net.add_node(name, heat_load=load)
            net.add_resistance(name, previous, 0.5 + 0.1 * index)
            previous = name
        sol = net.solve()
        assert sol.residual < 1e-6
        # Heat flowing into the sink equals the sum of all loads.
        total_in = sum(q for label, q in sol.heat_flows.items()
                       if label.endswith("->sink") or "n0->sink" in label)
        assert sol.heat_flows["n0->sink"] == pytest.approx(sum(loads),
                                                           rel=1e-6)

    @given(loads=st.lists(st.floats(min_value=0.1, max_value=100.0),
                          min_size=1, max_size=4))
    @settings(max_examples=30)
    def test_monotone_in_load(self, loads):
        def solve(scale):
            net = ThermalNetwork()
            net.add_node("sink", fixed_temperature=300.0)
            for index, load in enumerate(loads):
                net.add_node(f"n{index}", heat_load=load * scale)
                net.add_resistance(f"n{index}", "sink", 1.0)
            return net.solve()

        base = solve(1.0)
        double = solve(2.0)
        for index in range(len(loads)):
            assert double.temperature(f"n{index}") \
                >= base.temperature(f"n{index}")


class TestEffectiveMediumProperties:
    k_pair = st.tuples(st.floats(min_value=0.05, max_value=2.0),
                       st.floats(min_value=5.0, max_value=500.0))

    @given(k_pair, st.floats(min_value=0.0, max_value=0.6))
    def test_mg_between_phases(self, ks, phi):
        k_m, k_f = ks
        k = maxwell_garnett(k_m, k_f, phi)
        assert k_m - 1e-9 <= k <= k_f + 1e-9

    @given(k_pair, st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=50)
    def test_bruggeman_between_phases(self, ks, phi):
        k_m, k_f = ks
        k = bruggeman(k_m, k_f, phi)
        assert k_m - 1e-6 <= k <= k_f + 1e-6

    @given(k_pair,
           st.floats(min_value=0.01, max_value=0.45),
           st.floats(min_value=0.01, max_value=0.45))
    @settings(max_examples=50)
    def test_lewis_nielsen_monotone(self, ks, phi1, phi2):
        k_m, k_f = ks
        lo, hi = sorted((phi1, phi2))
        assert lewis_nielsen(k_m, k_f, lo, "spheres") \
            <= lewis_nielsen(k_m, k_f, hi, "spheres") + 1e-9

    @given(k_pair, st.floats(min_value=0.0, max_value=0.45))
    def test_bruggeman_above_mg(self, ks, phi):
        # For conductive fillers Bruggeman >= Maxwell-Garnett (it lets
        # filler particles touch).
        k_m, k_f = ks
        assume(k_f > k_m)
        assert bruggeman(k_m, k_f, phi) \
            >= maxwell_garnett(k_m, k_f, phi) - 1e-6


class TestFluidProperties:
    @given(st.floats(min_value=160.0, max_value=900.0))
    def test_air_positive_and_finite(self, temperature):
        state = air_properties(temperature)
        for value in (state.density, state.viscosity, state.conductivity,
                      state.specific_heat, state.prandtl):
            assert value > 0.0
            assert math.isfinite(value)

    @given(st.floats(min_value=285.0, max_value=490.0))
    @settings(max_examples=50)
    def test_water_saturation_consistent(self, temperature):
        state = saturation_properties("water", temperature)
        assert state.pressure > 0.0
        assert state.liquid_density > state.vapor_density
        assert 0.0 < state.surface_tension < 0.1
        assert state.latent_heat > 1e5

    @given(st.floats(min_value=285.0, max_value=480.0),
           st.floats(min_value=285.0, max_value=480.0))
    @settings(max_examples=50)
    def test_water_vapor_pressure_monotone(self, t1, t2):
        lo, hi = sorted((t1, t2))
        assume(hi - lo > 0.5)
        assert saturation_properties("water", hi).pressure \
            > saturation_properties("water", lo).pressure


class TestPsdProperties:
    break_points = st.lists(
        st.tuples(st.floats(min_value=1.0, max_value=3000.0),
                  st.floats(min_value=1e-5, max_value=1.0)),
        min_size=2, max_size=6,
        unique_by=lambda point: round(point[0], 3))

    @given(break_points)
    @settings(max_examples=50)
    def test_rms_positive(self, points):
        points = sorted(points)
        assume(all(p2[0] / p1[0] > 1.01
                   for p1, p2 in zip(points, points[1:])))
        psd = PowerSpectralDensity(tuple(points))
        assert psd.rms_g() > 0.0

    @given(break_points, st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50)
    def test_scaling_law(self, points, factor):
        points = sorted(points)
        assume(all(p2[0] / p1[0] > 1.01
                   for p1, p2 in zip(points, points[1:])))
        psd = PowerSpectralDensity(tuple(points))
        assert psd.scaled(factor).rms_g() \
            == pytest.approx(math.sqrt(factor) * psd.rms_g(), rel=1e-6)


class TestIsolatorProperties:
    @given(st.floats(min_value=5.0, max_value=100.0),
           st.floats(min_value=0.02, max_value=0.5),
           st.floats(min_value=1.0, max_value=2000.0))
    @settings(max_examples=100)
    def test_transmissibility_positive(self, f_n, zeta, f):
        assert Isolator(f_n, zeta).transmissibility(f) > 0.0

    @given(st.floats(min_value=5.0, max_value=100.0),
           st.floats(min_value=0.02, max_value=0.5))
    def test_high_frequency_always_isolates(self, f_n, zeta):
        iso = Isolator(f_n, zeta)
        assert iso.transmissibility(50.0 * f_n) < 1.0


class TestPlateProperties:
    @given(st.floats(min_value=0.05, max_value=0.5),
           st.floats(min_value=0.05, max_value=0.5),
           st.floats(min_value=0.5e-3, max_value=5e-3))
    @settings(max_examples=50)
    def test_frequency_positive_and_scales(self, length, width, thickness):
        plate = PlateSpec(length, width, thickness, 22e9, 0.28, 1850.0)
        f_1 = fundamental_frequency(plate)
        assert f_1 > 0.0
        # Doubling the thickness doubles every frequency (D ~ h^3, m ~ h).
        from dataclasses import replace

        doubled = replace(plate, thickness=2.0 * thickness)
        assert fundamental_frequency(doubled) \
            == pytest.approx(2.0 * f_1, rel=1e-6)
