"""Tests for the solid material library."""

import pytest

from avipack.errors import InputError, MaterialNotFoundError
from avipack.materials.library import (
    CARBON_COMPOSITE,
    DEFAULT_LIBRARY,
    FR4_LAMINATE,
    Material,
    MaterialLibrary,
    OrthotropicMaterial,
    get_material,
    pcb_effective_conductivity,
)


class TestMaterial:
    def test_aluminum_properties(self):
        alu = get_material("aluminum_6061")
        assert alu.conductivity == pytest.approx(167.0)
        assert alu.density == pytest.approx(2700.0)
        assert alu.youngs_modulus == pytest.approx(68.9e9)

    def test_copper_beats_aluminum(self):
        assert get_material("copper").conductivity \
            > get_material("aluminum_6061").conductivity

    def test_diffusivity_positive(self):
        for name in DEFAULT_LIBRARY:
            assert get_material(name).thermal_diffusivity() > 0.0

    def test_copper_diffusivity_magnitude(self):
        # Copper alpha ~ 1.1e-4 m2/s.
        assert get_material("copper").thermal_diffusivity() \
            == pytest.approx(1.15e-4, rel=0.05)

    def test_conductivity_at_temperature(self):
        copper = get_material("copper")
        assert copper.conductivity_at(373.15) < copper.conductivity_at(293.15)

    def test_conductivity_never_negative(self):
        silicon = get_material("silicon")
        assert silicon.conductivity_at(900.0) > 0.0

    def test_conductivity_at_zero_kelvin_rejected(self):
        with pytest.raises(InputError):
            get_material("copper").conductivity_at(0.0)

    def test_with_conductivity(self):
        derated = get_material("copper").with_conductivity(200.0)
        assert derated.conductivity == pytest.approx(200.0)
        assert derated.density == get_material("copper").density

    def test_with_conductivity_invalid(self):
        with pytest.raises(InputError):
            get_material("copper").with_conductivity(-1.0)

    def test_invalid_density(self):
        with pytest.raises(InputError):
            Material("bad", density=-1.0, conductivity=1.0,
                     specific_heat=1.0)

    def test_invalid_emissivity(self):
        with pytest.raises(InputError):
            Material("bad", density=1.0, conductivity=1.0,
                     specific_heat=1.0, emissivity=1.5)

    def test_invalid_poisson(self):
        with pytest.raises(InputError):
            Material("bad", density=1.0, conductivity=1.0,
                     specific_heat=1.0, poisson_ratio=0.6)


class TestOrthotropic:
    def test_fr4_anisotropy(self):
        assert FR4_LAMINATE.conductivity_xy > 10 * FR4_LAMINATE.conductivity_z

    def test_carbon_composite_poor_conductor(self):
        # The paper: "rather poor thermal conductivity" vs aluminium.
        alu = get_material("aluminum_6061")
        assert CARBON_COMPOSITE.conductivity_xy < alu.conductivity / 10.0

    def test_isotropic_equivalent_between_bounds(self):
        iso = FR4_LAMINATE.isotropic_equivalent()
        assert FR4_LAMINATE.conductivity_z < iso.conductivity \
            < FR4_LAMINATE.conductivity_xy

    def test_invalid_conductivity(self):
        with pytest.raises(InputError):
            OrthotropicMaterial("bad", 1000.0, -1.0, 1.0, 1000.0)


class TestLibrary:
    def test_unknown_material(self):
        with pytest.raises(MaterialNotFoundError):
            get_material("unobtainium")

    def test_duplicate_registration_rejected(self):
        lib = MaterialLibrary()
        mat = Material("m", 1.0, 1.0, 1.0)
        lib.register(mat)
        with pytest.raises(InputError):
            lib.register(mat)

    def test_overwrite_allowed(self):
        lib = MaterialLibrary()
        lib.register(Material("m", 1.0, 1.0, 1.0))
        lib.register(Material("m", 2.0, 2.0, 2.0), overwrite=True)
        assert lib.get("m").density == pytest.approx(2.0)

    def test_contains_and_len(self):
        assert "copper" in DEFAULT_LIBRARY
        assert len(DEFAULT_LIBRARY) >= 15

    def test_iteration_sorted(self):
        names = list(DEFAULT_LIBRARY)
        assert names == sorted(names)


class TestPcbEffectiveConductivity:
    def test_inplane_dominated_by_copper(self):
        k_xy, k_z = pcb_effective_conductivity(0.5, 4, 35e-6, 1.6e-3)
        assert k_xy > 10.0
        assert k_z < 1.0
        assert k_xy > k_z

    def test_no_copper_gives_resin(self):
        k_xy, k_z = pcb_effective_conductivity(0.0, 0, 35e-6, 1.6e-3)
        assert k_xy == pytest.approx(0.35)
        assert k_z == pytest.approx(0.35)

    def test_more_layers_more_conductive(self):
        k4, _ = pcb_effective_conductivity(0.5, 4, 35e-6, 1.6e-3)
        k8, _ = pcb_effective_conductivity(0.5, 8, 35e-6, 1.6e-3)
        assert k8 > k4

    def test_copper_exceeding_board_rejected(self):
        with pytest.raises(InputError):
            pcb_effective_conductivity(1.0, 100, 35e-6, 1.6e-3)

    def test_invalid_fraction(self):
        with pytest.raises(InputError):
            pcb_effective_conductivity(1.5, 4, 35e-6, 1.6e-3)
