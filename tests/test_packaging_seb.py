"""Tests for the COSEE seat-electronics-box model — the Fig. 10 physics."""

import pytest

from avipack.errors import InputError
from avipack.packaging.seb import (
    SeatElectronicsBox,
    SeatStructure,
    SebConfiguration,
    aluminum_seat_structure,
    carbon_composite_seat_structure,
)


class TestSeatStructure:
    def test_aluminum_fin_efficiency_high(self):
        eta = aluminum_seat_structure().fin_efficiency(10.0)
        assert eta > 0.6

    def test_carbon_fin_efficiency_low(self):
        alu = aluminum_seat_structure().fin_efficiency(10.0)
        carbon = carbon_composite_seat_structure().fin_efficiency(10.0)
        assert carbon < 0.5 * alu

    def test_sink_conductance_positive_and_nonlinear(self):
        structure = aluminum_seat_structure()
        g_small = structure.sink_conductance(305.0, 293.0)
        g_large = structure.sink_conductance(353.0, 293.0)
        assert 0.0 < g_small < g_large

    def test_invalid_wall(self):
        with pytest.raises(InputError):
            SeatStructure(wall_thickness=0.02, rod_diameter=0.03)


class TestSolve:
    def test_natural_cooling_hotter_than_assisted(self, seb, seb_natural,
                                                  seb_lhp):
        passive = seb.solve(40.0, seb_natural)
        assisted = seb.solve(40.0, seb_lhp)
        assert assisted.delta_t_pcb_air < passive.delta_t_pcb_air

    def test_zero_power_at_ambient(self, seb, seb_natural):
        solution = seb.solve(0.0, seb_natural)
        assert solution.delta_t_pcb_air == pytest.approx(0.0, abs=0.2)

    def test_delta_t_monotone_in_power(self, seb, seb_lhp):
        deltas = [seb.solve(p, seb_lhp).delta_t_pcb_air
                  for p in (20.0, 50.0, 80.0)]
        assert deltas == sorted(deltas)

    def test_lhp_carries_most_heat(self, seb, seb_lhp):
        solution = seb.solve(80.0, seb_lhp)
        assert solution.lhp_heat > solution.box_heat

    def test_energy_split_sums_to_power(self, seb, seb_lhp):
        solution = seb.solve(60.0, seb_lhp)
        assert solution.lhp_heat + solution.box_heat \
            == pytest.approx(60.0, rel=1e-4)

    def test_tilt_slightly_worse(self, seb, seb_lhp, seb_tilted):
        horizontal = seb.solve(80.0, seb_lhp).delta_t_pcb_air
        tilted = seb.solve(80.0, seb_tilted).delta_t_pcb_air
        assert tilted > horizontal
        assert tilted - horizontal < 5.0  # small penalty, as in Fig. 10

    def test_carbon_structure_worse_than_aluminum(self, seb, seb_lhp,
                                                  seb_carbon):
        alu = seb.solve(60.0, seb_lhp).delta_t_pcb_air
        carbon = seb.solve(60.0, seb_carbon).delta_t_pcb_air
        assert carbon > alu

    def test_hot_cabin_shifts_absolute_temperature(self, seb):
        cold = SebConfiguration(cooling="hp_lhp", ambient=288.15)
        hot = SebConfiguration(cooling="hp_lhp", ambient=308.15)
        t_cold = seb.solve(40.0, cold).pcb_temperature
        t_hot = seb.solve(40.0, hot).pcb_temperature
        assert t_hot > t_cold

    def test_negative_power_rejected(self, seb, seb_natural):
        with pytest.raises(InputError):
            seb.solve(-5.0, seb_natural)


class TestPaperNumbers:
    """The quantitative §IV.A results, at the tolerance of a reproduction."""

    def test_capability_without_lhp_near_40w(self, seb, seb_natural):
        assert seb.max_power_for_delta_t(60.0, seb_natural) \
            == pytest.approx(40.0, rel=0.15)

    def test_capability_with_lhp_near_100w(self, seb, seb_lhp):
        assert seb.max_power_for_delta_t(60.0, seb_lhp) \
            == pytest.approx(100.0, rel=0.15)

    def test_capability_increase_around_150pct(self, seb, seb_natural,
                                               seb_lhp):
        without = seb.max_power_for_delta_t(60.0, seb_natural)
        with_lhp = seb.max_power_for_delta_t(60.0, seb_lhp)
        increase = (with_lhp / without - 1.0) * 100.0
        assert 100.0 < increase < 200.0

    def test_32c_drop_at_40w(self, seb, seb_natural, seb_lhp):
        drop = (seb.solve(40.0, seb_natural).delta_t_pcb_air
                - seb.solve(40.0, seb_lhp).delta_t_pcb_air)
        assert drop == pytest.approx(32.0, abs=8.0)

    def test_lhp_heat_near_58w_at_capability(self, seb, seb_lhp):
        cap = seb.max_power_for_delta_t(60.0, seb_lhp)
        solution = seb.solve(cap, seb_lhp)
        assert solution.lhp_heat == pytest.approx(58.0, rel=0.15)

    def test_composite_capability_near_70w(self, seb, seb_carbon):
        assert seb.max_power_for_delta_t(60.0, seb_carbon) \
            == pytest.approx(70.0, rel=0.15)

    def test_composite_increase_around_80pct(self, seb, seb_natural,
                                             seb_carbon):
        without = seb.max_power_for_delta_t(60.0, seb_natural)
        with_composite = seb.max_power_for_delta_t(60.0, seb_carbon)
        increase = (with_composite / without - 1.0) * 100.0
        assert 40.0 < increase < 120.0


class TestConfiguration:
    def test_invalid_cooling(self):
        with pytest.raises(InputError):
            SebConfiguration(cooling="magic")

    def test_invalid_tilt(self):
        with pytest.raises(InputError):
            SebConfiguration(cooling="hp_lhp", tilt_deg=120.0)

    def test_invalid_box(self):
        with pytest.raises(InputError):
            SeatElectronicsBox(box_length=-0.3)

    def test_network_nodes_for_lhp_config(self, seb, seb_lhp):
        net = seb.build_network(40.0, seb_lhp)
        for node in ("pcb", "wall", "edge", "structure", "ambient"):
            assert node in net.node_names

    def test_network_nodes_for_natural_config(self, seb, seb_natural):
        net = seb.build_network(40.0, seb_natural)
        assert "edge" not in net.node_names
