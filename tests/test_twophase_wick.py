"""Tests for capillary wick structures."""

import pytest

from avipack.errors import InputError
from avipack.twophase.wick import (
    Wick,
    axial_groove_wick,
    screen_mesh_wick,
    sintered_powder_wick,
)


class TestSinteredPowder:
    def test_finer_powder_pumps_harder(self):
        coarse = sintered_powder_wick(100e-6, 0.5, 398.0, 0.63)
        fine = sintered_powder_wick(10e-6, 0.5, 398.0, 0.63)
        assert fine.max_capillary_pressure(0.06) \
            > coarse.max_capillary_pressure(0.06)

    def test_finer_powder_less_permeable(self):
        coarse = sintered_powder_wick(100e-6, 0.5, 398.0, 0.63)
        fine = sintered_powder_wick(10e-6, 0.5, 398.0, 0.63)
        assert fine.permeability < coarse.permeability

    def test_permeability_magnitude(self):
        # 50 um copper powder at 50% porosity: K ~ 3e-11 m2.
        wick = sintered_powder_wick(50e-6, 0.5, 398.0, 0.63)
        assert wick.permeability == pytest.approx(3.3e-11, rel=0.3)

    def test_pore_radius_fraction_of_particle(self):
        wick = sintered_powder_wick(50e-6, 0.5, 398.0, 0.63)
        assert wick.effective_pore_radius == pytest.approx(0.41 * 50e-6)

    def test_saturated_conductivity_between_phases(self):
        wick = sintered_powder_wick(50e-6, 0.5, 398.0, 0.63)
        assert 0.63 < wick.conductivity_saturated < 398.0

    def test_invalid_porosity(self):
        with pytest.raises(InputError):
            sintered_powder_wick(50e-6, 1.2, 398.0, 0.63)


class TestScreenMesh:
    def test_standard_mesh(self):
        # 100 mesh/inch ~ 3937 /m, 0.1 mm wire.
        wick = screen_mesh_wick(3937.0, 1.0e-4, 4, 398.0, 0.63)
        assert 0.0 < wick.porosity < 1.0
        assert wick.effective_pore_radius == pytest.approx(
            1.0 / (2.0 * 3937.0))

    def test_too_dense_mesh_rejected(self):
        # Mesh x wire too large -> negative porosity.
        with pytest.raises(InputError):
            screen_mesh_wick(10_000.0, 2.0e-4, 4, 398.0, 0.63)

    def test_invalid_layers(self):
        with pytest.raises(InputError):
            screen_mesh_wick(3937.0, 1.0e-4, 0, 398.0, 0.63)


class TestAxialGroove:
    def test_groove_highly_permeable(self):
        groove = axial_groove_wick(0.4e-3, 0.8e-3, 20, 167.0, 0.63)
        sintered = sintered_powder_wick(50e-6, 0.5, 398.0, 0.63)
        assert groove.permeability > 100.0 * sintered.permeability

    def test_groove_weak_pump(self):
        groove = axial_groove_wick(0.4e-3, 0.8e-3, 20, 167.0, 0.63)
        sintered = sintered_powder_wick(50e-6, 0.5, 398.0, 0.63)
        assert groove.max_capillary_pressure(0.06) \
            < sintered.max_capillary_pressure(0.06)

    def test_invalid_groove(self):
        with pytest.raises(InputError):
            axial_groove_wick(-0.4e-3, 0.8e-3, 20, 167.0, 0.63)


class TestWickBase:
    def test_darcy_pressure_drop_scales_linearly(self):
        wick = sintered_powder_wick(50e-6, 0.5, 398.0, 0.63)
        dp1 = wick.liquid_pressure_drop(1e-5, 3e-4, 960.0, 0.1, 1e-5)
        dp2 = wick.liquid_pressure_drop(2e-5, 3e-4, 960.0, 0.1, 1e-5)
        assert dp2 == pytest.approx(2.0 * dp1)

    def test_zero_flow_zero_drop(self):
        wick = sintered_powder_wick(50e-6, 0.5, 398.0, 0.63)
        assert wick.liquid_pressure_drop(0.0, 3e-4, 960.0, 0.1, 1e-5) == 0.0

    def test_capillary_pressure_formula(self):
        wick = Wick(1e-6, 1e-13, 0.6, 5.0)
        assert wick.max_capillary_pressure(0.02) \
            == pytest.approx(2.0 * 0.02 / 1e-6)

    def test_invalid_surface_tension(self):
        wick = Wick(1e-6, 1e-13, 0.6, 5.0)
        with pytest.raises(InputError):
            wick.max_capillary_pressure(-0.01)

    def test_invalid_construction(self):
        with pytest.raises(InputError):
            Wick(-1e-6, 1e-13, 0.6, 5.0)
        with pytest.raises(InputError):
            Wick(1e-6, 1e-13, 1.5, 5.0)
