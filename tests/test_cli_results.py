"""CLI contract of ``sweep --report-json/--store-dir`` and ``results``."""

import json
import os

from avipack.__main__ import main
from avipack.results import ResultStore, ranking_signature
from avipack.sweep import DesignSpace, SweepRunner


def run_sweep_cli(tmp_path, *extra):
    args = ["sweep", "--serial", "--sample", "12", "--seed", "3",
            "--top", "4", *extra]
    return main(args)


def expected_report():
    space = DesignSpace.standard_tradeoff()
    return SweepRunner(parallel=False).run(space.sample(12, seed=3))


def test_report_json_is_atomic_machine_readable_and_ranked(tmp_path,
                                                           capsys):
    report_path = tmp_path / "report.json"
    rc = run_sweep_cli(tmp_path, "--report-json", str(report_path))
    capsys.readouterr()
    assert rc in (0, 1)
    payload = json.loads(report_path.read_text())
    baseline = expected_report()
    assert payload["n_candidates"] == baseline.n_candidates
    assert payload["n_compliant"] == baseline.n_compliant
    served = [(entry["fingerprint"], entry["cost_rank"],
               entry["worst_board_c"]) for entry in payload["ranking"]]
    assert served == [(o.fingerprint, o.cost_rank, o.worst_board_c)
                      for o in baseline.top(4)]
    assert [entry["position"] for entry in payload["ranking"]] \
        == list(range(1, len(served) + 1))
    # Atomic publish: no temp residue beside the report.
    residue = [name for name in os.listdir(tmp_path)
               if name.startswith("report.json.tmp")]
    assert residue == []


def test_store_dir_then_results_subcommand(tmp_path, capsys):
    store_dir = tmp_path / "store"
    rc = run_sweep_cli(tmp_path, "--store-dir", str(store_dir))
    capsys.readouterr()
    assert rc in (0, 1)
    store = ResultStore.open(str(store_dir))
    assert store.n_rows == 12
    baseline = expected_report()
    assert ranking_signature(store) == [
        (o.fingerprint, o.cost_rank, o.worst_board_c)
        for o in baseline.ranked()]

    rc = main(["results", "--store", str(store_dir), "--top", "3"])
    out = capsys.readouterr().out
    assert rc in (0, 1)
    assert "CAMPAIGN RESULT STORE" in out
    assert "TOP 3 BY COST RANK" in out
    assert "AXIS MARGINALS" in out


def test_results_missing_store_exits_2(tmp_path, capsys):
    rc = main(["results", "--store", str(tmp_path / "absent")])
    assert rc == 2
    err = capsys.readouterr().err
    assert "error:" in err
    assert "absent" in err


def test_sweep_mentions_store_in_document(tmp_path, capsys):
    store_dir = tmp_path / "store"
    rc = run_sweep_cli(tmp_path, "--store-dir", str(store_dir))
    out = capsys.readouterr().out
    assert rc in (0, 1)
    assert "result store" in out
