"""Tests for thermo-mechanical stress models (CTE mismatch, solder)."""

import pytest

from avipack.errors import InputError
from avipack.mechanical.thermomechanical import (
    Layer,
    bimaterial_bow,
    bimaterial_curvature,
    bimaterial_interface_stress,
    constrained_thermal_stress,
    qualification_shock_joint_life,
    solder_joint_assessment,
    underfill_benefit_factor,
)


@pytest.fixture
def copper():
    return Layer(thickness=0.5e-3, youngs_modulus=117e9, cte=16.5e-6)


@pytest.fixture
def fr4():
    return Layer(thickness=1.6e-3, youngs_modulus=22e9, cte=16e-6)


@pytest.fixture
def alumina():
    return Layer(thickness=0.6e-3, youngs_modulus=310e9, cte=7.2e-6)


class TestBimaterial:
    def test_equal_cte_no_curvature(self):
        a = Layer(1e-3, 100e9, 10e-6)
        b = Layer(1e-3, 50e9, 10e-6)
        assert bimaterial_curvature(a, b, 80.0) == pytest.approx(0.0)

    def test_symmetric_bimetal_textbook(self):
        # Equal thickness, equal modulus: kappa = 3/2 * dA * dT / h
        # (Timoshenko: denominator term = 16/... check the classic
        # kappa = 6 dA dT (1+m)^2 / (h K) with m=n=1 -> K = 3*4 + 2*(1+1/1)
        # Wait: K = 3(1+1)^2 + (1+1)(1+1) = 12 + 4 = 16.
        # kappa = 6 * dA * dT * 4 / (h * 16) = 1.5 dA dT / h.
        a = Layer(1e-3, 100e9, 20e-6)
        b = Layer(1e-3, 100e9, 10e-6)
        kappa = bimaterial_curvature(a, b, 100.0)
        expected = 1.5 * (10e-6 - 20e-6) * 100.0 / 2e-3
        assert kappa == pytest.approx(expected, rel=1e-9)

    def test_curvature_sign_flips_with_dt(self, fr4, alumina):
        hot = bimaterial_curvature(fr4, alumina, 80.0)
        cold = bimaterial_curvature(fr4, alumina, -80.0)
        assert hot == pytest.approx(-cold)

    def test_bow_scales_with_length_squared(self, fr4, alumina):
        bow_short = abs(bimaterial_bow(fr4, alumina, 80.0, 0.05))
        bow_long = abs(bimaterial_bow(fr4, alumina, 80.0, 0.10))
        assert bow_long == pytest.approx(4.0 * bow_short)

    def test_interface_stress_magnitude(self, fr4, alumina):
        # CTE gap 8.8 ppm over 100 K on stiff layers: tens of MPa class.
        stress = bimaterial_interface_stress(alumina, fr4, 100.0)
        assert 1e6 < stress < 500e6

    def test_interface_stress_zero_for_matched(self):
        a = Layer(1e-3, 100e9, 10e-6)
        b = Layer(1e-3, 50e9, 10e-6)
        assert bimaterial_interface_stress(a, b, 100.0) == 0.0

    def test_invalid_layer(self):
        with pytest.raises(InputError):
            Layer(-1e-3, 100e9, 10e-6)


class TestConstrainedStress:
    def test_formula(self):
        # Aluminium clamped over 100 K: 68.9e9 * 23.6e-6 * 100 = 163 MPa.
        assert constrained_thermal_stress(68.9e9, 23.6e-6, 100.0) \
            == pytest.approx(162.6e6, rel=0.01)

    def test_sign_independent(self):
        assert constrained_thermal_stress(68.9e9, 23.6e-6, -100.0) \
            == constrained_thermal_stress(68.9e9, 23.6e-6, 100.0)


class TestSolderJoint:
    def test_ceramic_on_fr4_worst_case(self):
        # 25 mm ceramic package on FR-4, 100 K swing: the classic CTE
        # nightmare - strain in the percent class, life in the hundreds.
        assessment = solder_joint_assessment(
            package_half_diagonal=17.7e-3, joint_height=0.1e-3,
            cte_component=7e-6, cte_board=16e-6, delta_t=100.0)
        assert assessment.shear_strain > 0.01
        assert assessment.cycles_to_failure < 10_000.0

    def test_matched_cte_infinite_life(self):
        assessment = solder_joint_assessment(
            17.7e-3, 0.1e-3, 16e-6, 16e-6, 100.0)
        assert assessment.cycles_to_failure == float("inf")

    def test_taller_joint_lives_longer(self):
        short = solder_joint_assessment(10e-3, 0.05e-3, 7e-6, 16e-6,
                                        80.0)
        tall = solder_joint_assessment(10e-3, 0.2e-3, 7e-6, 16e-6, 80.0)
        assert tall.cycles_to_failure > short.cycles_to_failure

    def test_corner_joint_worst(self):
        near = solder_joint_assessment(3e-3, 0.1e-3, 7e-6, 16e-6, 80.0)
        corner = solder_joint_assessment(15e-3, 0.1e-3, 7e-6, 16e-6,
                                         80.0)
        assert corner.cycles_to_failure < near.cycles_to_failure

    def test_survives_predicate(self):
        assessment = solder_joint_assessment(5e-3, 0.15e-3, 14e-6, 16e-6,
                                             60.0)
        assert assessment.survives(100.0)
        with pytest.raises(InputError):
            assessment.survives(-1.0)

    def test_invalid_geometry(self):
        with pytest.raises(InputError):
            solder_joint_assessment(-5e-3, 0.1e-3, 7e-6, 16e-6, 80.0)


class TestQualificationHelpers:
    def test_small_smt_passes_paper_shock(self):
        # A small SMT part survives the -45/+55 campaign easily.
        assert qualification_shock_joint_life(
            package_half_diagonal=5e-3, joint_height=0.15e-3,
            cte_component=14e-6, cte_board=16e-6,
            chamber_swing=100.0, n_test_cycles=10)

    def test_large_ceramic_fails_paper_shock(self):
        assert not qualification_shock_joint_life(
            package_half_diagonal=20e-3, joint_height=0.08e-3,
            cte_component=7e-6, cte_board=16e-6,
            chamber_swing=100.0, n_test_cycles=10)

    def test_underfill_factor(self):
        # 70 % strain cut at exponent 2: ~11x life.
        assert underfill_benefit_factor() == pytest.approx(11.1, rel=0.01)

    def test_underfill_invalid(self):
        with pytest.raises(InputError):
            underfill_benefit_factor(strain_reduction=1.0)
