"""Chaos battery for the durability layer: real kills, injected damage.

The headline test SIGKILLs a journalled sweep subprocess mid-campaign —
no atexit handler, no flush, the closest a test gets to a power cut —
then resumes from the surviving journal and demands ranking parity with
an uninterrupted run.  The in-process variants drive the journal's own
fault sites (torn write, bit flip) through
:class:`~avipack.resilience.faults.FaultPlan` for deterministic
corruption coverage.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from avipack.durability import replay_journal
from avipack.resilience import faults as faults_mod
from avipack.resilience.faults import FaultPlan, FaultSpec
from avipack.sweep import DesignSpace, SweepRunner

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The space both the killed child and the in-process referee evaluate.
KILL_AXES = {
    "power_per_module": (8.0, 12.0, 16.0, 20.0, 24.0, 28.0),
    "cooling": ("direct_air_flow", "air_flow_through"),
}

KILL_SPACE = DesignSpace(axes=KILL_AXES)

#: Journalled sweep the parent will SIGKILL.  The evaluator sleeps per
#: candidate so the kill lands mid-campaign deterministically; the
#: journal path arrives via argv.
CHILD_SCRIPT = textwrap.dedent("""
    import sys, time
    from avipack.sweep import DesignSpace, SweepRunner
    from avipack.sweep.runner import evaluate_candidate

    def slow(task):
        time.sleep(0.25)
        return evaluate_candidate(task)

    space = DesignSpace(axes={
        "power_per_module": (8.0, 12.0, 16.0, 20.0, 24.0, 28.0),
        "cooling": ("direct_air_flow", "air_flow_through"),
    })
    SweepRunner(parallel=False, evaluator=slow).run(
        space, journal_path=sys.argv[1])
""")


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults_mod.uninstall()
    yield
    faults_mod.uninstall()


def ranking_signature(report):
    return [(o.fingerprint, o.cost_rank, o.worst_board_c)
            for o in report.ranked()]


class TestKillResume:
    def test_sigkill_mid_campaign_then_resume_ranks_identically(
            self, tmp_path):
        journal = str(tmp_path / "killed.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, journal],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120.0
            progressed = 0
            while time.monotonic() < deadline:
                if child.poll() is not None:
                    break
                try:
                    replay = replay_journal(journal,
                                            write_quarantine=False)
                except Exception:
                    replay = None
                if replay is not None:
                    progressed = len(replay.outcomes)
                    if progressed >= 3:
                        break
                time.sleep(0.02)
        finally:
            if child.poll() is None:
                os.kill(child.pid, signal.SIGKILL)
            child.wait()

        assert progressed >= 3, \
            "child never journalled 3 outcomes before the deadline"
        # The kill landed mid-campaign: the journal cannot hold the
        # full space (0.25 s per remaining candidate was still owed).
        survivors = replay_journal(journal, write_quarantine=False)
        assert len(survivors.outcomes) < KILL_SPACE.size
        # SIGKILL can at worst tear the record being appended.
        assert survivors.n_quarantined <= 1

        fresh = SweepRunner(parallel=False).run(KILL_SPACE)
        resumed = SweepRunner(parallel=False).resume(journal)
        stats = resumed.durability
        assert stats.n_resumed >= 3
        assert stats.n_resumed + stats.n_recomputed == KILL_SPACE.size
        assert ranking_signature(resumed) == ranking_signature(fresh)

        # The resumed journal is complete: one more resume restores
        # everything without recomputing.
        again = SweepRunner(parallel=False).resume(journal)
        assert again.durability.n_recomputed == 0
        assert ranking_signature(again) == ranking_signature(fresh)


class TestInjectedJournalDamage:
    SPACE = DesignSpace(axes={
        "power_per_module": (10.0, 15.0, 20.0, 25.0, 30.0, 35.0),
    })

    def test_targeted_bitflip_and_torn_write_survive_resume(
            self, tmp_path):
        # Serial layout: seq 0 plan, 1-6 dispatched, 7-12 outcomes.
        # Bit-flip outcome seq 9; tear outcome seq 11 (which leaves no
        # newline, so record 12 concatenates onto the damaged line —
        # two quarantined lines, three lost outcomes).
        journal = str(tmp_path / "damaged.jsonl")
        plan = FaultPlan(specs=(
            FaultSpec("durability.journal_bitflip", "cache_corrupt",
                      scopes=(("journal", 9),)),
            FaultSpec("durability.journal_torn_write", "cache_corrupt",
                      scopes=(("journal", 11),)),
        ))
        fresh = SweepRunner(parallel=False, faults=plan).run(
            self.SPACE, journal_path=journal)
        assert fresh.n_candidates == 6

        resumed = SweepRunner(parallel=False).resume(journal)
        stats = resumed.durability
        assert stats.n_quarantined == 2
        assert stats.n_resumed == 3
        assert stats.n_recomputed == 3
        assert stats.n_audit_failures == 0
        assert ranking_signature(resumed) == ranking_signature(fresh)
        assert os.path.exists(journal + ".quarantine")

        # Convergence: the resume journalled its recomputes, so the
        # next resume trusts everything.
        again = SweepRunner(parallel=False).resume(journal)
        assert again.durability.n_recomputed == 0
        assert ranking_signature(again) == ranking_signature(fresh)

    def test_random_rate_damage_never_crashes_resume(self, tmp_path):
        # Seeded but untargeted: whatever the coin flips hit, resume
        # must quarantine, recompute, and rank at parity.
        journal = str(tmp_path / "noisy.jsonl")
        plan = FaultPlan(specs=(
            FaultSpec("durability.journal_bitflip", "cache_corrupt",
                      rate=0.4),
            FaultSpec("durability.journal_torn_write", "cache_corrupt",
                      rate=0.2),
        ), seed=5)
        fresh = SweepRunner(parallel=False, faults=plan).run(
            self.SPACE, journal_path=journal)
        reference = SweepRunner(parallel=False).run(self.SPACE)

        resumed = SweepRunner(parallel=False).resume(journal)
        stats = resumed.durability
        assert stats.n_resumed + stats.n_recomputed == 6
        assert ranking_signature(resumed) == ranking_signature(reference)
        assert ranking_signature(fresh) == ranking_signature(reference)
