"""Tests for effective-medium TIM conductivity models."""

import pytest

from avipack.errors import InputError
from avipack.tim.models import (
    bruggeman,
    cnt_array_conductivity,
    electrical_resistivity_filled,
    lewis_nielsen,
    loading_for_conductivity,
    maxwell_garnett,
    percolation_conductivity,
)

K_EPOXY = 0.2
K_SILVER = 429.0


class TestMaxwellGarnett:
    def test_zero_loading_gives_matrix(self):
        assert maxwell_garnett(K_EPOXY, K_SILVER, 0.0) \
            == pytest.approx(K_EPOXY)

    def test_monotonic_in_loading(self):
        values = [maxwell_garnett(K_EPOXY, K_SILVER, phi)
                  for phi in (0.0, 0.1, 0.2, 0.3)]
        assert values == sorted(values)

    def test_dilute_limit_slope(self):
        # MG with k_f >> k_m: k/k_m -> (1+2phi)/(1-phi) ~ 1+3phi.
        phi = 0.01
        assert maxwell_garnett(K_EPOXY, K_SILVER, phi) / K_EPOXY \
            == pytest.approx(1.0 + 3.0 * phi, rel=0.02)

    def test_invalid_fraction(self):
        with pytest.raises(InputError):
            maxwell_garnett(K_EPOXY, K_SILVER, 1.0)


class TestBruggeman:
    def test_reduces_to_matrix_at_zero(self):
        assert bruggeman(K_EPOXY, K_SILVER, 0.0) == pytest.approx(K_EPOXY,
                                                                  rel=1e-6)

    def test_reduces_to_filler_at_unity_approach(self):
        assert bruggeman(K_EPOXY, K_SILVER, 0.99) \
            == pytest.approx(K_SILVER, rel=0.05)

    def test_percolation_kick_above_one_third(self):
        # For k_f >> k_m, Bruggeman jumps near phi = 1/3.
        below = bruggeman(K_EPOXY, K_SILVER, 0.30)
        above = bruggeman(K_EPOXY, K_SILVER, 0.40)
        assert above > 10.0 * below

    def test_beats_maxwell_garnett_at_high_loading(self):
        phi = 0.45
        assert bruggeman(K_EPOXY, K_SILVER, phi) \
            > maxwell_garnett(K_EPOXY, K_SILVER, phi)


class TestLewisNielsen:
    def test_matches_target_design_flow(self):
        # The NANOPACK design numbers: 6 W/m.K from flakes.
        phi = loading_for_conductivity(K_EPOXY, K_SILVER, 6.0, "flakes")
        assert lewis_nielsen(K_EPOXY, K_SILVER, phi, "flakes") \
            == pytest.approx(6.0, rel=1e-3)

    def test_realistic_loading_for_6_w_mk(self):
        # Real silver-epoxy adhesives hit 4-8 W/m.K near 45-60 vol%.
        phi = loading_for_conductivity(K_EPOXY, K_SILVER, 6.0, "flakes")
        assert 0.35 < phi < 0.52

    def test_flakes_beat_spheres_at_same_loading(self):
        phi = 0.4
        assert lewis_nielsen(K_EPOXY, K_SILVER, phi, "flakes") \
            > lewis_nielsen(K_EPOXY, K_SILVER, phi, "spheres")

    def test_loading_above_packing_rejected(self):
        with pytest.raises(InputError):
            lewis_nielsen(K_EPOXY, K_SILVER, 0.7, "spheres")

    def test_unreachable_target_rejected(self):
        with pytest.raises(InputError):
            loading_for_conductivity(K_EPOXY, 2.0, 50.0, "spheres")

    def test_unknown_shape_rejected(self):
        with pytest.raises(InputError):
            lewis_nielsen(K_EPOXY, K_SILVER, 0.3, "stars")

    def test_target_below_matrix_rejected(self):
        with pytest.raises(InputError):
            loading_for_conductivity(K_EPOXY, K_SILVER, 0.1)


class TestPercolation:
    def test_below_threshold_is_mg(self):
        assert percolation_conductivity(K_EPOXY, K_SILVER, 0.1) \
            == pytest.approx(maxwell_garnett(K_EPOXY, K_SILVER, 0.1))

    def test_above_threshold_network_dominates(self):
        k = percolation_conductivity(K_EPOXY, K_SILVER, 0.5)
        assert k > 10.0 * maxwell_garnett(K_EPOXY, K_SILVER, 0.17)

    def test_continuous_at_threshold(self):
        just_below = percolation_conductivity(K_EPOXY, K_SILVER, 0.1699)
        just_above = percolation_conductivity(K_EPOXY, K_SILVER, 0.1701)
        assert just_above == pytest.approx(just_below, rel=0.02)


class TestElectrical:
    def test_insulating_below_threshold(self):
        assert electrical_resistivity_filled(1e-7, 0.1) == float("inf")

    def test_conductive_above_threshold(self):
        rho = electrical_resistivity_filled(1e-7, 0.5)
        assert rho < 1e-5

    def test_nanopack_resistivity_class(self):
        # The paper quotes 1e-6 to 1e-4 Ohm.cm = 1e-8 to 1e-6 Ohm.m.
        rho = electrical_resistivity_filled(8e-7, 0.48)
        assert 1e-8 < rho < 1e-5

    def test_monotone_decreasing(self):
        assert electrical_resistivity_filled(1e-7, 0.6) \
            < electrical_resistivity_filled(1e-7, 0.3)


class TestCntArray:
    def test_nanopack_20_w_mk_class(self):
        # MWCNT bundles ~300 W/m.K at ~8% areal density: ~20 W/m.K.
        k = cnt_array_conductivity(300.0, 0.08, 0.85)
        assert k == pytest.approx(20.4, rel=0.02)

    def test_scales_with_density(self):
        assert cnt_array_conductivity(300.0, 0.2) \
            == pytest.approx(2.0 * cnt_array_conductivity(300.0, 0.1))

    def test_invalid_density(self):
        with pytest.raises(InputError):
            cnt_array_conductivity(300.0, 1.5)
