"""Chaos battery for the job service: SIGKILL, restart, full recovery.

The headline drill: SIGKILL the server mid-campaign (no drain, no
flush — a power cut), restart it on the same journal directory, and
demand that every unfinished job is recovered and finishes with
rankings identical to an uninterrupted run.  A client streaming events
across the kill must survive via reconnect-and-replay: its stale
sequence cursor is answered with ``replay_gap`` by the new server
incarnation, it resets to the advertised buffer head, and still
observes the job through to its terminal event.
"""

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from avipack.durability import replay_journal
from avipack.errors import ServiceError
from avipack.service import JobStore, ServiceClient
from avipack.sweep import DesignSpace, SweepRunner

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

AXES = {
    "power_per_module": [8.0, 12.0, 16.0, 20.0, 24.0, 28.0],
    "cooling": ["direct_air_flow", "air_flow_through"],
}


def expected_ranking():
    space = DesignSpace(axes={name: tuple(values)
                              for name, values in AXES.items()})
    report = SweepRunner(parallel=False).run(space)
    return [[o.fingerprint, o.cost_rank, round(o.worst_board_c, 9)]
            for o in report.ranked()]


@pytest.fixture()
def sockets():
    sock_dir = tempfile.mkdtemp(prefix="avichaos", dir="/tmp")
    yield sock_dir
    shutil.rmtree(sock_dir, ignore_errors=True)


def start_server(socket_path, journal_dir, throttle_s):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "avipack", "serve",
         "--socket", socket_path, "--journal-dir", journal_dir,
         "--serial", "--heartbeat-s", "0.1",
         "--throttle-s", str(throttle_s)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    client = ServiceClient(socket_path, timeout_s=10.0, retries=2)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"server died during startup: "
                f"{process.stderr.read().decode()}")
        try:
            client.ping()
            return process, client
        except ServiceError:
            time.sleep(0.1)
    process.kill()
    raise AssertionError("server did not become ready")


def wait_for_progress(client, job_id, at_least, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = client.status(job_id)
        if status["done"] >= at_least:
            return status
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached "
                         f"{at_least} candidates")


class TestKillRecovery:
    def test_sigkill_mid_campaign_restart_recovers_to_parity(
            self, sockets, tmp_path):
        journal_dir = str(tmp_path / "jobs")
        os.makedirs(journal_dir)
        socket_path = os.path.join(sockets, "kill.sock")
        process, client = start_server(socket_path, journal_dir,
                                       throttle_s=0.15)
        queued_id = None
        try:
            job_id = client.submit(axes=AXES, seed=1)["job_id"]
            # A second, queued job must also survive the kill.
            queued_id = client.submit(axes=AXES, sample=6, seed=2,
                                      client="other")["job_id"]
            wait_for_progress(client, job_id, at_least=2)
            process.kill()  # SIGKILL: no handler, no flush, no drain
            process.wait(timeout=30.0)
        except BaseException:
            if process.poll() is None:
                process.kill()
            raise

        # The journal holds a clean prefix; at most the record being
        # appended at the instant of the kill may be torn.
        journal = os.path.join(journal_dir, f"{job_id}.journal.jsonl")
        partial = replay_journal(journal, write_quarantine=False)
        assert partial.n_quarantined <= 1
        assert 0 < len(partial.outcomes) < 12

        # Restart on the same journal dir: every unfinished job is
        # recovered and driven to completion without client action.
        socket2 = os.path.join(sockets, "kill2.sock")
        process2, client2 = start_server(socket2, journal_dir,
                                         throttle_s=0.0)
        try:
            final = client2.wait(job_id, timeout_s=120.0)
            assert final["state"] == "completed"
            assert final["restored"] >= len(partial.outcomes) - 1
            assert final["result"]["ranking"] == expected_ranking()

            queued_final = client2.wait(queued_id, timeout_s=120.0)
            assert queued_final["state"] == "completed"
            assert queued_final["done"] == 6

            stats = client2.stats()["stats"]
            assert stats["recovered_jobs"] == 2
            client2.shutdown()
            assert process2.wait(timeout=60.0) == 0
        finally:
            if process2.poll() is None:
                process2.kill()

    def test_streaming_client_survives_kill_via_reconnect_and_replay(
            self, sockets, tmp_path):
        journal_dir = str(tmp_path / "jobs")
        os.makedirs(journal_dir)
        socket_path = os.path.join(sockets, "stream.sock")
        process, client = start_server(socket_path, journal_dir,
                                       throttle_s=0.15)
        process2 = None
        try:
            job_id = client.submit(axes=AXES)["job_id"]
            # Patient stream: wide reconnect budget to ride across the
            # kill -> restart window.
            stream_client = ServiceClient(socket_path, timeout_s=10.0,
                                          retries=3, retry_delay_s=0.5)
            events = []
            killed = False
            for event in stream_client.stream(job_id,
                                              max_reconnects=60):
                events.append(event)
                if not killed and event.get("event") == "progress" \
                        and event.get("done", 0) >= 2:
                    process.kill()
                    process.wait(timeout=30.0)
                    # Same socket path: the restarted server clears the
                    # stale socket and takes over.
                    process2, _ = start_server(socket_path, journal_dir,
                                               throttle_s=0.0)
                    killed = True
            assert killed, "stream finished before the kill landed"
            assert events[-1].get("terminal") is True
            assert events[-1]["event"] in ("completed", "closed")
            # The job really completed with full parity.
            final = ServiceClient(socket_path).status(job_id)
            assert final["state"] == "completed"
            assert final["result"]["ranking"] == expected_ranking()
        finally:
            for proc in (process, process2):
                if proc is not None and proc.poll() is None:
                    proc.kill()
