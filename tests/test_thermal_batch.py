"""Batched multi-candidate solver core (:mod:`avipack.thermal.batch`).

The batch path's contract is *bit-level trajectory parity* with the
scalar solver: grouping by structural fingerprint, stacked assembly,
shared factorizations and convergence masking are allowed to change
the cost, never the answer — every candidate's temperatures, iteration
count, flows and failure behaviour must match what a per-candidate
:meth:`~avipack.thermal.network.ThermalNetwork.solve` produces.
"""

import numpy as np
import pytest

from avipack import perf
from avipack.errors import ConvergenceError, InputError
from avipack.thermal import ThermalNetwork
from avipack.thermal.batch import (
    BatchOutcome,
    group_by_structure,
    solve_batched,
    structural_fingerprint,
)

REL = 1e-10


def build_stack(power=10.0, g_tim=3.0, sink=300.0, nonlinear=False,
                fn=None):
    """A chip/case/board/sink candidate stack (one sweep topology)."""
    net = ThermalNetwork()
    net.add_node("chip", heat_load=power)
    net.add_node("case", heat_load=0.2 * power)
    net.add_node("board")
    net.add_node("sink", fixed_temperature=sink)
    net.add_conductance("chip", "case", g_tim, label="tim")
    net.add_conductance("case", "board", 2.0)
    net.add_conductance("board", "sink", 1.5)
    if nonlinear:
        net.add_conductance("case", "sink",
                            fn or (lambda a, b: 0.05 + 1e-4 * (a - b)))
    else:
        net.add_conductance("case", "sink", 0.08)
    return net


def build_other_topology(power=5.0):
    """A structurally different network (extra node, different links)."""
    net = ThermalNetwork()
    net.add_node("a", heat_load=power)
    net.add_node("b")
    net.add_node("amb", fixed_temperature=290.0)
    net.add_conductance("a", "b", 1.0)
    net.add_conductance("b", "amb", 0.5)
    return net


def assert_matches_scalar(network, outcome, rel=REL):
    reference = network.solve()
    assert outcome.ok
    for name, expected in reference.temperatures.items():
        got = outcome.solution.temperatures[name]
        assert abs(got - expected) <= rel * max(1.0, abs(expected))
    for key, expected in reference.heat_flows.items():
        assert outcome.solution.heat_flows[key] == pytest.approx(
            expected, abs=1e-8)
    assert outcome.solution.iterations == reference.iterations
    assert outcome.solution.residual == pytest.approx(
        reference.residual, abs=1e-9)


class TestStructuralFingerprint:
    def test_parameter_values_do_not_change_the_fingerprint(self):
        a = build_stack(power=5.0, g_tim=3.0, sink=290.0)
        b = build_stack(power=25.0, g_tim=9.0, sink=330.0)
        assert structural_fingerprint(a) == structural_fingerprint(b)

    def test_different_callables_share_a_structure(self):
        a = build_stack(nonlinear=True, fn=lambda x, y: 0.1)
        b = build_stack(nonlinear=True, fn=lambda x, y: 0.2 + 1e-3 * x)
        assert structural_fingerprint(a) == structural_fingerprint(b)

    def test_callable_vs_constant_is_structural(self):
        assert structural_fingerprint(build_stack()) != \
            structural_fingerprint(build_stack(nonlinear=True))

    def test_fixed_node_set_is_structural(self):
        free_sink = build_stack()
        object.__setattr__(free_sink._nodes["board"], "fixed_temperature",
                           310.0)
        assert structural_fingerprint(free_sink) != \
            structural_fingerprint(build_stack())

    def test_grouping_preserves_input_order(self):
        nets = [build_stack(power=1.0), build_other_topology(),
                build_stack(power=2.0), build_other_topology(),
                build_stack(power=3.0)]
        groups = group_by_structure(nets)
        assert list(groups.values()) == [[0, 2, 4], [1, 3]]


class TestLinearParity:
    def test_grid_parity_and_rankings(self):
        nets = [build_stack(power=p, g_tim=g)
                for g in (2.0, 4.0) for p in np.linspace(4.0, 16.0, 8)]
        outcomes = solve_batched(nets)
        assert all(o.batched for o in outcomes)
        for net, outcome in zip(nets, outcomes):
            assert_matches_scalar(net, outcome)
        batched_order = sorted(
            range(len(nets)),
            key=lambda i: outcomes[i].solution.temperature("chip"))
        scalar_order = sorted(
            range(len(nets)),
            key=lambda i: nets[i].solve().temperature("chip"))
        assert batched_order == scalar_order

    def test_multi_rhs_grouping_counters(self):
        # One conductance variant, many power levels: every candidate
        # shares a single factorization.
        nets = [build_stack(power=p) for p in np.linspace(2.0, 9.0, 12)]
        perf.reset("network.batched")
        outcomes = solve_batched(nets)
        stats = perf.stats("network.batched")
        assert all(o.ok and o.batched for o in outcomes)
        assert stats.batched_solves == 1
        assert stats.batch_width == 12
        assert stats.solves == 12
        assert stats.factorizations == 1
        assert stats.factorization_reuses == 11
        assert stats.assemblies == 1
        assert stats.candidates_per_factorization == pytest.approx(12.0)

    def test_mixed_topologies_solve_as_separate_groups(self):
        nets = [build_stack(power=1.0), build_other_topology(1.0),
                build_stack(power=2.0), build_other_topology(2.0)]
        outcomes = solve_batched(nets)
        assert all(o.ok and o.batched for o in outcomes)
        for net, outcome in zip(nets, outcomes):
            assert_matches_scalar(net, outcome)

    def test_varying_sink_temperatures_batch(self):
        nets = [build_stack(sink=s) for s in (280.0, 300.0, 320.0)]
        outcomes = solve_batched(nets)
        assert all(o.ok and o.batched for o in outcomes)
        for net, outcome in zip(nets, outcomes):
            assert_matches_scalar(net, outcome)


class TestNonlinearParity:
    def test_shared_callable_broadcasts(self):
        nets = [build_stack(power=p, nonlinear=True)
                for p in np.linspace(4.0, 16.0, 10)]
        outcomes = solve_batched(nets)
        assert all(o.ok and o.batched for o in outcomes)
        for net, outcome in zip(nets, outcomes):
            assert_matches_scalar(net, outcome)

    def test_scalar_only_callable_falls_back_to_loop(self):
        def scalar_only(a, b):
            # Branches on its inputs: raises on arrays, so the batch
            # path must detect it and evaluate per candidate.
            return 0.08 if a > b else 0.02

        nets = [build_stack(power=p, nonlinear=True, fn=scalar_only)
                for p in (5.0, 8.0, 11.0)]
        outcomes = solve_batched(nets)
        assert all(o.ok and o.batched for o in outcomes)
        for net, outcome in zip(nets, outcomes):
            assert_matches_scalar(net, outcome)

    def test_distinct_callables_per_candidate(self):
        def make_fn(coefficient):
            return lambda a, b: coefficient * (1.0 + 1e-3 * (a - b))

        nets = [build_stack(power=8.0, nonlinear=True, fn=make_fn(c))
                for c in (0.05, 0.08, 0.11)]
        outcomes = solve_batched(nets)
        assert all(o.ok and o.batched for o in outcomes)
        for net, outcome in zip(nets, outcomes):
            assert_matches_scalar(net, outcome)


class TestMixedConvergence:
    def test_straggler_falls_back_with_scalar_error(self):
        oscillator = (lambda a, b:
                      0.02 if int(a * 1e6) % 2 == 0 else 8.0)
        good = [build_stack(power=p, nonlinear=True)
                for p in (5.0, 8.0, 11.0)]
        bad = build_stack(power=10.0, nonlinear=True, fn=oscillator)
        outcomes = solve_batched(good + [bad], max_iterations=40)
        for net, outcome in zip(good, outcomes[:3]):
            assert outcome.ok and outcome.batched
            assert_matches_scalar(net, outcome)
        straggler = outcomes[3]
        assert not straggler.ok and not straggler.batched
        assert isinstance(straggler.error, ConvergenceError)
        reference = build_stack(power=10.0, nonlinear=True,
                                fn=oscillator)
        with pytest.raises(ConvergenceError) as excinfo:
            reference.solve(max_iterations=40)
        assert str(straggler.error) == str(excinfo.value)
        assert straggler.error.last_iterate.keys() == \
            excinfo.value.last_iterate.keys()

    def test_negative_callable_reproduces_scalar_input_error(self):
        nets = [build_stack(power=5.0, nonlinear=True),
                build_stack(power=7.0, nonlinear=True,
                            fn=lambda a, b: -1.0),
                build_stack(power=9.0, nonlinear=True)]
        outcomes = solve_batched(nets)
        assert outcomes[0].ok and outcomes[0].batched
        assert outcomes[2].ok and outcomes[2].batched
        failed = outcomes[1]
        assert not failed.ok and not failed.batched
        assert isinstance(failed.error, InputError)
        assert "negative" in str(failed.error)
        assert_matches_scalar(nets[0], outcomes[0])


class TestScalarRouting:
    def test_singleton_groups_take_the_scalar_path(self):
        outcomes = solve_batched([build_stack(), build_other_topology()])
        assert all(o.ok and not o.batched for o in outcomes)

    def test_min_batch_forces_scalar(self):
        nets = [build_stack(power=p) for p in (3.0, 6.0, 9.0)]
        outcomes = solve_batched(nets, min_batch=4)
        assert all(o.ok and not o.batched for o in outcomes)
        for net, outcome in zip(nets, outcomes):
            assert_matches_scalar(net, outcome)

    def test_invalid_networks_fail_like_scalar(self):
        empty = ThermalNetwork()
        no_sink = ThermalNetwork()
        no_sink.add_node("hot", heat_load=1.0)
        floating = build_stack()
        floating.add_node("orphan", heat_load=1.0)
        outcomes = solve_batched([empty, no_sink, floating,
                                  build_stack(2.0), build_stack(3.0)])
        assert isinstance(outcomes[0].error, InputError)
        assert "no nodes" in str(outcomes[0].error)
        assert isinstance(outcomes[1].error, InputError)
        assert "fixed-temperature" in str(outcomes[1].error)
        assert isinstance(outcomes[2].error, InputError)
        assert "orphan" in str(outcomes[2].error)
        assert outcomes[3].ok and outcomes[4].ok

    def test_floating_group_fails_every_member_by_name(self):
        nets = []
        for power in (1.0, 2.0):
            net = build_stack(power)
            net.add_node("orphan", heat_load=power)
            nets.append(net)
        outcomes = solve_batched(nets)
        assert all(isinstance(o.error, InputError) for o in outcomes)
        assert all("orphan" in str(o.error) for o in outcomes)

    def test_settings_validated_eagerly(self):
        with pytest.raises(InputError, match="at least one network"):
            solve_batched([])
        with pytest.raises(InputError, match="relaxation"):
            solve_batched([build_stack(), build_stack()], relaxation=0.0)
        with pytest.raises(InputError, match="min_batch"):
            solve_batched([build_stack(), build_stack()], min_batch=1)


class TestBatchOutcome:
    def test_ok_reflects_solution_presence(self):
        assert not BatchOutcome().ok
        outcomes = solve_batched([build_stack(1.0), build_stack(2.0)])
        assert outcomes[0].ok and outcomes[0].error is None
