"""Unit coverage of the service's non-asyncio layers.

Protocol encode/decode/validate, submission normalisation and
fingerprinting, admission decisions, the priority queue, per-job event
buffers with replay, and the crash-safe manifest store — everything
the server builds on, tested without a socket in sight.
"""

import json

import pytest

from avipack import perf
from avipack.errors import ServiceError
from avipack.service import (
    AdmissionPolicy,
    Job,
    JobQueue,
    JobStore,
    ProtocolError,
    ServiceStats,
    admit,
    build_candidates,
    normalize_submission,
    submission_fingerprint,
)
from avipack.service.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    encode_line,
    error_response,
    validate_request,
)

AXES = {"power_per_module": [10.0, 20.0], "cooling": ["natural", "forced_air"]}


def make_job(job_id="j000001", tmp_path=None, **overrides):
    submission = normalize_submission({"axes": AXES})
    fields = dict(
        job_id=job_id, client="anonymous", priority=0,
        submission=submission,
        fingerprint=submission_fingerprint(submission),
        journal_path=str(tmp_path / f"{job_id}.journal.jsonl")
        if tmp_path else f"/tmp/{job_id}.journal.jsonl",
        total=submission["n_candidates"])
    fields.update(overrides)
    return Job(**fields)


class TestWire:
    def test_round_trip(self):
        payload = {"op": "submit", "axes": AXES, "seed": 3}
        assert decode_line(encode_line(payload)) == payload

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_line(b"[1, 2, 3]\n")

    def test_rejects_damage(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{\"op\": \n")

    def test_rejects_oversize_line(self):
        with pytest.raises(ProtocolError):
            decode_line(b"x" * (MAX_LINE_BYTES + 1))

    def test_error_response_shape(self):
        response = error_response("queue_full", "try later")
        assert response == {"ok": False, "error": {
            "code": "queue_full", "reason": "try later"}}


class TestValidateRequest:
    def test_accepts_known_op(self):
        op, params = validate_request({"op": "ping"})
        assert op == "ping" and params == {"op": "ping"}

    def test_missing_op(self):
        with pytest.raises(ProtocolError):
            validate_request({"axes": AXES})

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as excinfo:
            validate_request({"op": "frobnicate"})
        assert excinfo.value.code == "unknown_op"

    @pytest.mark.parametrize("op", ["status", "stream", "cancel"])
    def test_job_ops_require_job_id(self, op):
        with pytest.raises(ProtocolError):
            validate_request({"op": op})

    def test_stream_from_seq_must_be_non_negative(self):
        with pytest.raises(ProtocolError):
            validate_request({"op": "stream", "job_id": "j1",
                              "from_seq": -2})


class TestNormalizeSubmission:
    def test_grid_size(self):
        submission = normalize_submission({"axes": AXES})
        assert submission["n_candidates"] == 4
        assert submission["client"] == "anonymous"

    def test_axes_xor_candidates(self):
        with pytest.raises(ProtocolError):
            normalize_submission({})
        with pytest.raises(ProtocolError):
            normalize_submission({
                "axes": AXES,
                "candidates": [{"power_per_module": 10.0}]})

    def test_unknown_axis_field(self):
        with pytest.raises(ProtocolError) as excinfo:
            normalize_submission({"axes": {"warp_factor": [9]}})
        assert excinfo.value.code == "invalid_space"

    def test_empty_axis(self):
        with pytest.raises(ProtocolError):
            normalize_submission({"axes": {"power_per_module": []}})

    def test_non_scalar_axis_value(self):
        with pytest.raises(ProtocolError):
            normalize_submission({"axes": {"power_per_module": [[10.0]]}})

    def test_sample_caps_size(self):
        submission = normalize_submission({"axes": AXES, "sample": 3})
        assert submission["n_candidates"] == 3
        oversampled = normalize_submission({"axes": AXES, "sample": 99})
        assert oversampled["n_candidates"] == 4

    def test_sample_requires_axes(self):
        with pytest.raises(ProtocolError):
            normalize_submission({
                "candidates": [{"power_per_module": 10.0}],
                "sample": 2})

    def test_explicit_candidates(self):
        submission = normalize_submission({"candidates": [
            {"power_per_module": 12.0, "cooling": "forced_air"},
            {"power_per_module": 18.0}]})
        assert submission["n_candidates"] == 2
        candidates = build_candidates(submission)
        assert candidates[0].power_per_module == 12.0
        assert candidates[1].power_per_module == 18.0

    def test_candidate_unknown_field(self):
        with pytest.raises(ProtocolError):
            normalize_submission({"candidates": [{"warp_factor": 9}]})

    def test_deadline_must_be_positive(self):
        with pytest.raises(ProtocolError):
            normalize_submission({"axes": AXES, "deadline_s": -1.0})


class TestFingerprint:
    def test_key_order_invariant(self):
        a = normalize_submission({"axes": {
            "power_per_module": [10.0, 20.0],
            "cooling": ["natural", "forced_air"]}})
        b = normalize_submission({"axes": {
            "cooling": ["natural", "forced_air"],
            "power_per_module": [10.0, 20.0]}})
        assert submission_fingerprint(a) == submission_fingerprint(b)

    def test_ignores_tenancy_fields(self):
        a = normalize_submission({"axes": AXES, "client": "alice",
                                  "priority": 5, "deadline_s": 30.0})
        b = normalize_submission({"axes": AXES, "client": "bob"})
        assert submission_fingerprint(a) == submission_fingerprint(b)

    def test_seed_matters(self):
        a = normalize_submission({"axes": AXES, "sample": 2, "seed": 1})
        b = normalize_submission({"axes": AXES, "sample": 2, "seed": 2})
        assert submission_fingerprint(a) != submission_fingerprint(b)


class TestAdmission:
    POLICY = AdmissionPolicy(max_queued=2, max_jobs_per_client=1,
                             max_candidates_per_job=10)

    def admit(self, **overrides):
        kwargs = dict(n_candidates=4, queued=0, client_active=0,
                      draining=False)
        kwargs.update(overrides)
        return admit(self.POLICY, **kwargs)

    def test_admits_within_bounds(self):
        assert self.admit() is None

    def test_draining_refuses_everything(self):
        rejection = self.admit(draining=True)
        assert rejection.code == "draining"

    def test_job_too_large(self):
        rejection = self.admit(n_candidates=11)
        assert rejection.code == "job_too_large"
        assert "split the space" in rejection.reason

    def test_queue_full(self):
        rejection = self.admit(queued=2)
        assert rejection.code == "queue_full"

    def test_quota_exceeded(self):
        rejection = self.admit(client_active=1)
        assert rejection.code == "quota_exceeded"

    def test_draining_wins_over_other_refusals(self):
        rejection = self.admit(draining=True, n_candidates=11, queued=5)
        assert rejection.code == "draining"


class TestJobQueue:
    def test_priority_then_fifo(self):
        queue = JobQueue()
        queue.push("low", 0, 0)
        queue.push("high", 5, 1)
        queue.push("low2", 0, 2)
        assert [queue.pop(), queue.pop(), queue.pop()] == \
            ["high", "low", "low2"]
        assert queue.pop() is None

    def test_remove_tombstones(self):
        queue = JobQueue()
        queue.push("a", 0, 0)
        queue.push("b", 0, 1)
        queue.remove("a")
        assert len(queue) == 1
        assert queue.pop() == "b"
        assert queue.pop() is None

    def test_ids_in_pop_order(self):
        queue = JobQueue()
        queue.push("a", 0, 0)
        queue.push("b", 3, 1)
        queue.remove("a")
        assert queue.ids() == ["b"]


class TestEventBuffer:
    def test_sequence_and_replay(self, tmp_path):
        job = make_job(tmp_path=tmp_path)
        for seq in range(5):
            job.append_event({"seq": seq, "event": "progress"},
                             max_events=10)
        assert job.next_seq == 5
        assert [e["seq"] for e in job.events_from(2)] == [2, 3, 4]
        assert job.events_from(5) == []

    def test_bounded_eviction(self, tmp_path):
        job = make_job(tmp_path=tmp_path)
        for seq in range(7):
            job.append_event({"seq": seq, "event": "progress"},
                             max_events=3)
        assert job.event_base_seq == 4
        assert [e["seq"] for e in job.events_from(4)] == [4, 5, 6]

    def test_replay_gap_below_buffer(self, tmp_path):
        job = make_job(tmp_path=tmp_path)
        for seq in range(7):
            job.append_event({"seq": seq, "event": "progress"},
                             max_events=3)
        with pytest.raises(ServiceError) as excinfo:
            job.events_from(1)
        assert excinfo.value.code == "replay_gap"

    def test_replay_gap_beyond_issued(self, tmp_path):
        job = make_job(tmp_path=tmp_path)
        job.append_event({"seq": 0, "event": "queued"}, max_events=10)
        with pytest.raises(ServiceError) as excinfo:
            job.events_from(99)
        assert excinfo.value.code == "replay_gap"


class TestJobStore:
    def test_manifest_round_trip(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = make_job(tmp_path=tmp_path, state="running",
                       submit_order=7, priority=2)
        store.save(job)
        (loaded,) = store.load_all()
        assert loaded.job_id == job.job_id
        assert loaded.state == "running"
        assert loaded.priority == 2
        assert loaded.submit_order == 7
        assert loaded.fingerprint == job.fingerprint
        assert loaded.submission == job.submission

    def test_load_all_sorted_and_tolerant(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.save(make_job("j000002", tmp_path, submit_order=2))
        store.save(make_job("j000001", tmp_path, submit_order=1))
        (tmp_path / "broken.manifest.json").write_text("{torn")
        loaded = store.load_all()
        assert [job.job_id for job in loaded] == ["j000001", "j000002"]

    def test_save_leaves_no_tmp_litter(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.save(make_job(tmp_path=tmp_path))
        leftovers = [name for name in tmp_path.iterdir()
                     if ".tmp." in name.name]
        assert leftovers == []


class TestServiceStats:
    def test_reject_counting(self):
        stats = ServiceStats()
        stats.reject("queue_full")
        stats.reject("queue_full")
        stats.reject("draining")
        assert stats.rejected == {"queue_full": 2, "draining": 1}
        assert stats.n_rejected == 3
        assert stats.snapshot()["n_rejected"] == 3

    def test_record_job_perf_lands_in_registry(self):
        perf.reset("service.job")
        ServiceStats().record_job_perf(12, 3.5)
        record = perf.stats("service.job")
        assert record.solves == 1
        assert record.iterations == 12
        assert record.wall_s == pytest.approx(3.5)

    def test_to_lines_covers_snapshot(self):
        stats = ServiceStats()
        lines = stats.to_lines()
        assert len(lines) == len(stats.snapshot())
        assert any("submitted" in line for line in lines)


def test_json_wire_format_is_plain():
    # The wire format must stay language-agnostic: plain JSON, no
    # framing beyond the newline.
    line = encode_line({"op": "ping"})
    assert line.endswith(b"\n")
    assert json.loads(line) == {"op": "ping"}
