"""Tests for the ATR form-factor catalogue."""

import pytest

from avipack.errors import InputError
from avipack.packaging.formfactors import (
    ATR_WIDTHS,
    AtrCase,
    generation_power_density,
)


class TestAtrCase:
    def test_width_ladder_monotone(self):
        ordered = ("1/4_atr", "3/8_atr", "1/2_atr", "3/4_atr", "1_atr")
        widths = [ATR_WIDTHS[size] for size in ordered]
        assert widths == sorted(widths)

    def test_half_atr_volume(self):
        # 124 x 194 x 318 mm = 7.65 litres.
        assert AtrCase("1/2_atr").volume_litres \
            == pytest.approx(7.65, rel=0.01)

    def test_long_case_deeper(self):
        short = AtrCase("1/2_atr", long_case=False)
        long = AtrCase("1/2_atr", long_case=True)
        assert long.volume_litres > 1.5 * short.volume_litres

    def test_card_count(self):
        assert AtrCase("1_atr").card_count(pitch=0.02) == 12
        assert AtrCase("1/4_atr").card_count(pitch=0.02) == 2

    def test_module_envelope_valid(self):
        envelope = AtrCase("3/4_atr").module_envelope()
        assert envelope.board_area > 0.0
        assert envelope.shell_area > 0.0

    def test_unknown_size(self):
        with pytest.raises(InputError):
            AtrCase("2_atr")

    def test_negative_power_density(self):
        with pytest.raises(InputError):
            AtrCase("1/2_atr").power_density(-1.0)


class TestGenerationDensity:
    def test_trend_triples_then_doubles(self):
        densities = dict(generation_power_density())
        assert densities["near_future"] \
            == pytest.approx(3.0 * densities["current"])
        assert densities["next"] \
            == pytest.approx(2.0 * densities["near_future"])

    def test_next_generation_exceeds_40w_per_litre(self):
        # The squeeze in absolute numbers: ~47 W/litre in a 1/2 ATR -
        # beyond what free or direct forced air handles.
        densities = dict(generation_power_density())
        assert densities["next"] > 40.0
