"""Tests for mission-profile reliability roll-up."""

import pytest

from avipack.errors import InputError
from avipack.reliability.mission import (
    MissionPhase,
    degraded_cooling_penalty,
    predict_mission_mtbf,
    standard_flight_profile,
)
from avipack.reliability.mtbf import PartReliability, predict_mtbf
from avipack.units import celsius_to_kelvin


@pytest.fixture
def parts():
    return [PartReliability("cpu", 200.0, 0.5, quality="full_mil"),
            PartReliability("reg", 120.0, quality="full_mil")]


def junctions(temp_c):
    t = celsius_to_kelvin(temp_c)
    return {"cpu": t, "reg": t}


class TestMissionPrediction:
    def test_single_phase_equals_point_prediction(self, parts):
        phase = MissionPhase("cruise", 1.0, junctions(70.0))
        mission = predict_mission_mtbf(parts, [phase])
        point = predict_mtbf(parts, junctions(70.0))
        assert mission.mtbf_hours == pytest.approx(point.mtbf_hours)

    def test_weighted_between_extremes(self, parts):
        cold = MissionPhase("ground", 0.5, junctions(30.0),
                            environment="ground_fixed")
        hot = MissionPhase("cruise", 0.5, junctions(90.0))
        mission = predict_mission_mtbf(parts, [cold, hot])
        only_cold = predict_mtbf(parts, junctions(30.0),
                                 environment="ground_fixed")
        only_hot = predict_mtbf(parts, junctions(90.0))
        assert only_hot.mtbf_hours < mission.mtbf_hours \
            < only_cold.mtbf_hours

    def test_worst_phase_identified(self, parts):
        phases = [MissionPhase("ground", 0.3, junctions(30.0),
                               environment="ground_fixed"),
                  MissionPhase("cruise", 0.7, junctions(95.0))]
        mission = predict_mission_mtbf(parts, phases)
        assert mission.worst_phase == "cruise"

    def test_fractions_must_sum_to_one(self, parts):
        phases = [MissionPhase("a", 0.5, junctions(50.0)),
                  MissionPhase("b", 0.3, junctions(50.0))]
        with pytest.raises(InputError):
            predict_mission_mtbf(parts, phases)

    def test_duplicate_phase_names_rejected(self, parts):
        phases = [MissionPhase("a", 0.5, junctions(50.0)),
                  MissionPhase("a", 0.5, junctions(60.0))]
        with pytest.raises(InputError):
            predict_mission_mtbf(parts, phases)

    def test_empty_profile_rejected(self, parts):
        with pytest.raises(InputError):
            predict_mission_mtbf(parts, [])

    def test_invalid_fraction(self):
        with pytest.raises(InputError):
            MissionPhase("a", 1.5, junctions(50.0))


class TestStandardProfile:
    def test_builds_three_phases(self, parts):
        profile = standard_flight_profile(junctions(35.0),
                                          junctions(60.0),
                                          junctions(55.0))
        assert len(profile) == 3
        mission = predict_mission_mtbf(parts, list(profile))
        assert mission.mtbf_hours > 0.0

    def test_ground_uses_benign_environment(self):
        profile = standard_flight_profile(junctions(35.0),
                                          junctions(60.0),
                                          junctions(55.0))
        assert profile[0].environment == "ground_fixed"


class TestDegradedCooling:
    def test_penalty_direction(self, parts):
        nominal, degraded = degraded_cooling_penalty(
            parts, junctions(60.0), junctions(110.0),
            degraded_exposure=0.1)
        assert degraded < nominal

    def test_small_exposure_small_penalty(self, parts):
        nominal, barely = degraded_cooling_penalty(
            parts, junctions(60.0), junctions(110.0),
            degraded_exposure=0.01)
        assert barely > 0.8 * nominal

    def test_invalid_exposure(self, parts):
        with pytest.raises(InputError):
            degraded_cooling_penalty(parts, junctions(60.0),
                                     junctions(110.0),
                                     degraded_exposure=1.5)


class TestNetworkConnectivityGuard:
    """The new floating-node validation (lives here to reuse fixtures)."""

    def test_floating_node_reported_by_name(self):
        from avipack.thermal.network import ThermalNetwork

        net = ThermalNetwork()
        net.add_node("hot", heat_load=1.0)
        net.add_node("sink", fixed_temperature=300.0)
        net.add_node("island", heat_load=2.0)
        net.add_resistance("hot", "sink", 1.0)
        with pytest.raises(InputError) as excinfo:
            net.solve()
        assert "island" in str(excinfo.value)

    def test_connected_chain_fine(self):
        from avipack.thermal.network import ThermalNetwork

        net = ThermalNetwork()
        net.add_node("a", heat_load=1.0)
        net.add_node("b")
        net.add_node("sink", fixed_temperature=300.0)
        net.add_resistance("a", "b", 1.0)
        net.add_resistance("b", "sink", 1.0)
        assert net.solve().residual < 1e-9
