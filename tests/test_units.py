"""Tests for avipack.units conversions and constants."""

import math

import pytest

from avipack import units
from avipack.errors import InputError


class TestTemperature:
    def test_celsius_roundtrip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(25.0)) \
            == pytest.approx(25.0)

    def test_zero_celsius(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_below_absolute_zero_rejected(self):
        with pytest.raises(InputError):
            units.celsius_to_kelvin(-300.0)

    def test_negative_kelvin_rejected(self):
        with pytest.raises(InputError):
            units.kelvin_to_celsius(-1.0)

    def test_paper_limits(self):
        # The 125 degC junction / 85 degC ambient rules.
        assert units.celsius_to_kelvin(125.0) == pytest.approx(398.15)
        assert units.celsius_to_kelvin(85.0) == pytest.approx(358.15)


class TestFluxAndResistance:
    def test_flux_roundtrip(self):
        assert units.si_to_w_per_cm2(units.w_per_cm2_to_si(100.0)) \
            == pytest.approx(100.0)

    def test_100_w_cm2_is_1e6_si(self):
        # The paper's hot-spot ceiling.
        assert units.w_per_cm2_to_si(100.0) == pytest.approx(1.0e6)

    def test_resistance_roundtrip(self):
        assert units.si_to_kmm2_per_w(units.kmm2_per_w_to_si(5.0)) \
            == pytest.approx(5.0)

    def test_nanopack_target_in_si(self):
        # 5 K.mm2/W = 5e-6 K.m2/W.
        assert units.kmm2_per_w_to_si(5.0) == pytest.approx(5.0e-6)


class TestArincFlow:
    def test_standard_allocation_1kw(self):
        # 220 kg/h/kW at 1 kW = 220 kg/h = 0.0611 kg/s.
        flow = units.arinc_flow_to_kg_per_s(220.0, 1000.0)
        assert flow == pytest.approx(220.0 / 3600.0, rel=1e-9)

    def test_roundtrip(self):
        flow = units.arinc_flow_to_kg_per_s(220.0, 450.0)
        assert units.kg_per_s_to_arinc_flow(flow, 450.0) \
            == pytest.approx(220.0)

    def test_zero_power_gives_zero_flow(self):
        assert units.arinc_flow_to_kg_per_s(220.0, 0.0) == 0.0

    def test_negative_power_rejected(self):
        with pytest.raises(InputError):
            units.arinc_flow_to_kg_per_s(220.0, -1.0)

    def test_normalising_zero_power_rejected(self):
        with pytest.raises(InputError):
            units.kg_per_s_to_arinc_flow(0.1, 0.0)


class TestAcceleration:
    def test_one_g(self):
        assert units.g_to_m_s2(1.0) == pytest.approx(9.80665)

    def test_roundtrip(self):
        assert units.m_s2_to_g(units.g_to_m_s2(9.0)) == pytest.approx(9.0)


class TestDbPerOctave:
    def test_plus_6db_doubles_frequency_quadruples_psd(self):
        value = units.db_per_octave_slope(0.01, 100.0, 200.0, 6.0)
        assert value == pytest.approx(0.01 * 10 ** 0.6, rel=1e-9)

    def test_zero_slope_flat(self):
        assert units.db_per_octave_slope(0.01, 100.0, 400.0, 0.0) \
            == pytest.approx(0.01)

    def test_negative_slope_decreases(self):
        assert units.db_per_octave_slope(0.01, 100.0, 200.0, -6.0) < 0.01

    def test_invalid_frequency_rejected(self):
        with pytest.raises(InputError):
            units.db_per_octave_slope(0.01, 0.0, 100.0, 6.0)


class TestLengthsAndTime:
    def test_mil(self):
        assert units.mil_to_m(1000.0) == pytest.approx(25.4e-3)

    def test_inch(self):
        assert units.inch_to_m(1.0) == pytest.approx(25.4e-3)

    def test_hours_roundtrip(self):
        assert units.seconds_to_hours(units.hours_to_seconds(40_000.0)) \
            == pytest.approx(40_000.0)

    def test_rpm(self):
        assert units.rpm_to_hz(3000.0) == pytest.approx(50.0)


class TestConstants:
    def test_stefan_boltzmann(self):
        assert units.STEFAN_BOLTZMANN == pytest.approx(5.670374419e-8)

    def test_boltzmann_ev(self):
        assert units.BOLTZMANN_EV == pytest.approx(8.617333262e-5)
