"""Tests for assembled thermal interfaces and the NANOPACK objectives."""

import pytest

from avipack.errors import InputError
from avipack.tim.interface import (
    ThermalInterface,
    bond_line_thickness,
    contact_resistance_mikic,
    meets_nanopack_target,
    series_interface_resistance,
)


@pytest.fixture
def good_interface():
    # 20 W/m.K composite at 15 um BLT, 1 K.mm2/W contacts total.
    return ThermalInterface(conductivity=20.0, bond_line_thickness=15e-6,
                            contact_resistance=0.5e-6, area=1e-4)


class TestSpecificResistance:
    def test_formula(self, good_interface):
        expected = 15e-6 / 20.0 + 2 * 0.5e-6
        assert good_interface.specific_resistance \
            == pytest.approx(expected)

    def test_kmm2_conversion(self, good_interface):
        assert good_interface.specific_resistance_kmm2 \
            == pytest.approx(good_interface.specific_resistance * 1e6)

    def test_absolute_resistance(self, good_interface):
        assert good_interface.resistance == pytest.approx(
            good_interface.specific_resistance / 1e-4)

    def test_thinner_is_better(self, good_interface):
        from dataclasses import replace

        thin = replace(good_interface, bond_line_thickness=5e-6)
        assert thin.specific_resistance \
            < good_interface.specific_resistance


class TestNanopackTarget:
    def test_composite_meets_target(self, good_interface):
        # < 5 K.mm2/W at < 20 um: the project objective.
        assert meets_nanopack_target(good_interface)

    def test_grease_at_thick_blt_fails(self):
        grease = ThermalInterface(0.8, 100e-6, 3e-6, 1e-4)
        assert not meets_nanopack_target(grease)

    def test_thin_but_resistive_fails(self):
        bad = ThermalInterface(0.5, 15e-6, 10e-6, 1e-4)
        assert not meets_nanopack_target(bad)


class TestSurfaceEnhancements:
    def test_hnc_reduces_blt_by_default_22pct(self, good_interface):
        enhanced = good_interface.with_hnc_surface()
        assert enhanced.bond_line_thickness \
            == pytest.approx(15e-6 * 0.78)

    def test_hnc_reduces_resistance(self, good_interface):
        assert good_interface.with_hnc_surface().specific_resistance \
            < good_interface.specific_resistance

    def test_nanosponge_halves_contacts(self, good_interface):
        enhanced = good_interface.with_nanosponge_contacts()
        assert enhanced.contact_resistance == pytest.approx(0.25e-6)

    def test_invalid_reduction(self, good_interface):
        with pytest.raises(InputError):
            good_interface.with_hnc_surface(blt_reduction=1.5)


class TestBltScaling:
    def test_particle_floor(self):
        # High pressure: BLT approaches 1.31 x filler diameter.
        blt = bond_line_thickness(10e-6, 10.0, 1e7)
        assert blt >= 1.31 * 10e-6

    def test_pressure_thins_bond_line(self):
        soft = bond_line_thickness(5e-6, 50.0, 1e5)
        hard = bond_line_thickness(5e-6, 50.0, 1e6)
        assert hard < soft

    def test_viscosity_thickens_bond_line(self):
        runny = bond_line_thickness(5e-6, 10.0, 3e5)
        pasty = bond_line_thickness(5e-6, 1000.0, 3e5)
        assert pasty > runny

    def test_invalid_inputs(self):
        with pytest.raises(InputError):
            bond_line_thickness(-5e-6, 10.0, 3e5)


class TestMikicContact:
    def test_magnitude_aluminum_joint(self):
        # Al-Al, 1 um roughness, 1 MPa on 1 GPa hardness: R ~ 1e-4 K.m2/W
        # class (dry joints are bad - the reason TIMs exist).
        r = contact_resistance_mikic(1e-6, 0.1, 180.0, 1e6, 1e9)
        assert 1e-6 < r < 1e-3

    def test_pressure_improves_contact(self):
        low = contact_resistance_mikic(1e-6, 0.1, 180.0, 0.5e6, 1e9)
        high = contact_resistance_mikic(1e-6, 0.1, 180.0, 5e6, 1e9)
        assert high < low

    def test_rough_surface_worse(self):
        smooth = contact_resistance_mikic(0.5e-6, 0.1, 180.0, 1e6, 1e9)
        rough = contact_resistance_mikic(5e-6, 0.1, 180.0, 1e6, 1e9)
        assert rough > smooth

    def test_pressure_above_hardness_rejected(self):
        with pytest.raises(InputError):
            contact_resistance_mikic(1e-6, 0.1, 180.0, 2e9, 1e9)


class TestSeries:
    def test_two_interfaces_add(self, good_interface):
        total = series_interface_resistance(good_interface,
                                            good_interface)
        assert total == pytest.approx(2.0 * good_interface.resistance)

    def test_empty_rejected(self):
        with pytest.raises(InputError):
            series_interface_resistance()


class TestValidation:
    def test_invalid_conductivity(self):
        with pytest.raises(InputError):
            ThermalInterface(-1.0, 15e-6, 1e-6, 1e-4)

    def test_invalid_blt(self):
        with pytest.raises(InputError):
            ThermalInterface(20.0, 0.0, 1e-6, 1e-4)

    def test_negative_contact_rejected(self):
        with pytest.raises(InputError):
            ThermalInterface(20.0, 15e-6, -1e-6, 1e-4)
