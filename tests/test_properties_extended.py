"""Property-based tests for the extension modules."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from avipack.mechanical.sine import sdof_magnification
from avipack.mechanical.thermomechanical import (
    Layer,
    bimaterial_curvature,
    solder_joint_assessment,
)
from avipack.packaging.ife import IfeSystem
from avipack.reliability.mission import MissionPhase, predict_mission_mtbf
from avipack.reliability.mtbf import PartReliability
from avipack.twophase.wick import sintered_necked_wick, \
    sintered_powder_wick


class TestWickProperties:
    radius = st.floats(min_value=1e-7, max_value=2e-4)
    porosity = st.floats(min_value=0.2, max_value=0.8)

    @given(radius, porosity)
    @settings(max_examples=50)
    def test_necked_conductivity_between_phases(self, r, eps):
        wick = sintered_necked_wick(r, eps, 398.0, 0.63)
        assert 0.63 <= wick.conductivity_saturated <= 398.0

    @given(radius, st.floats(min_value=0.2, max_value=0.7))
    @settings(max_examples=50)
    def test_necked_beats_packed_at_practical_porosity(self, r, eps):
        # The two correlations bracket reality and cross only above
        # ~0.75 porosity, beyond practical sintered structures.
        packed = sintered_powder_wick(r, eps, 398.0, 0.63)
        necked = sintered_necked_wick(r, eps, 398.0, 0.63)
        assert necked.conductivity_saturated \
            >= packed.conductivity_saturated - 1e-9

    @given(radius, porosity,
           st.floats(min_value=1e-3, max_value=0.08))
    @settings(max_examples=50)
    def test_capillary_pressure_positive(self, r, eps, sigma):
        wick = sintered_powder_wick(r, eps, 398.0, 0.63)
        assert wick.max_capillary_pressure(sigma) > 0.0


class TestThermomechanicalProperties:
    layer = st.builds(
        Layer,
        thickness=st.floats(min_value=1e-4, max_value=5e-3),
        youngs_modulus=st.floats(min_value=1e9, max_value=400e9),
        cte=st.floats(min_value=1e-6, max_value=30e-6))

    @given(layer, layer, st.floats(min_value=-150.0, max_value=150.0))
    @settings(max_examples=100)
    def test_curvature_antisymmetric_in_layers(self, a, b, delta_t):
        # Swapping the layers flips the bending direction.
        kappa_ab = bimaterial_curvature(a, b, delta_t)
        kappa_ba = bimaterial_curvature(b, a, delta_t)
        if abs(kappa_ab) > 1e-12:
            assert kappa_ab * kappa_ba <= 1e-15

    @given(layer, layer, st.floats(min_value=1.0, max_value=150.0))
    @settings(max_examples=100)
    def test_curvature_linear_in_delta_t(self, a, b, delta_t):
        kappa_1 = bimaterial_curvature(a, b, delta_t)
        kappa_2 = bimaterial_curvature(a, b, 2.0 * delta_t)
        assert kappa_2 == pytest.approx(2.0 * kappa_1, rel=1e-9,
                                        abs=1e-15)

    @given(st.floats(min_value=1e-3, max_value=30e-3),
           st.floats(min_value=5e-5, max_value=5e-4),
           st.floats(min_value=1.0, max_value=150.0))
    @settings(max_examples=50)
    def test_solder_life_monotone_in_swing(self, dnp, height, swing):
        small = solder_joint_assessment(dnp, height, 7e-6, 16e-6, swing)
        large = solder_joint_assessment(dnp, height, 7e-6, 16e-6,
                                        swing * 1.5)
        assert large.cycles_to_failure <= small.cycles_to_failure


class TestSineProperties:
    @given(st.floats(min_value=1.0, max_value=2000.0),
           st.floats(min_value=10.0, max_value=1000.0),
           st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=100)
    def test_magnification_positive(self, f, f_n, q):
        assert sdof_magnification(f, f_n, q) > 0.0

    @given(st.floats(min_value=10.0, max_value=1000.0),
           st.floats(min_value=2.0, max_value=50.0))
    def test_resonance_equals_q_within_tolerance(self, f_n, q):
        assert sdof_magnification(f_n, f_n, q) \
            == pytest.approx(math.sqrt(1.0 + q * q), rel=1e-9)


class TestMissionProperties:
    @given(st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=300.0, max_value=380.0),
           st.floats(min_value=300.0, max_value=380.0))
    @settings(max_examples=50)
    def test_mission_between_phase_extremes(self, fraction, t1, t2):
        parts = [PartReliability("p", 300.0)]
        phases = [
            MissionPhase("a", fraction, {"p": t1}),
            MissionPhase("b", 1.0 - fraction, {"p": t2}),
        ]
        mission = predict_mission_mtbf(parts, phases)
        phase_mtbfs = [pred.mtbf_hours
                       for pred in mission.per_phase.values()]
        assert min(phase_mtbfs) - 1e-6 <= mission.mtbf_hours \
            <= max(phase_mtbfs) + 1e-6


class TestIfeProperties:
    @given(st.integers(min_value=1, max_value=800),
           st.floats(min_value=5.0, max_value=100.0))
    @settings(max_examples=50)
    def test_fleet_figures_scale_linearly(self, n_seats, power):
        one = IfeSystem(1, seb_power=power, cooling="fan")
        many = IfeSystem(n_seats, seb_power=power, cooling="fan")
        assert many.system_power \
            == pytest.approx(n_seats * one.system_power)
        assert many.system_failure_rate_fit \
            == pytest.approx(n_seats * one.system_failure_rate_fit)

    @given(st.integers(min_value=1, max_value=800))
    @settings(max_examples=30)
    def test_passive_always_more_reliable(self, n_seats):
        fan = IfeSystem(n_seats, cooling="fan")
        passive = IfeSystem(n_seats, cooling="passive")
        assert passive.seb_mtbf_hours > fan.seb_mtbf_hours
