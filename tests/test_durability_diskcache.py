"""Persistent solver cache: atomic publish, checksum gate, eviction."""

import os

import pytest

from avipack.durability import DiskSolverCache, worker_disk_cache
from avipack.durability.diskcache import _MAGIC
from avipack.errors import InputError
from avipack.resilience import faults as faults_mod
from avipack.resilience.faults import FaultPlan, FaultSpec
from avipack.sweep import DesignSpace, SweepRunner


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults_mod.uninstall()
    yield
    faults_mod.uninstall()


def entry_files(directory):
    return sorted(name for name in os.listdir(directory)
                  if name.endswith(".entry"))


def tmp_files(directory):
    return [name for name in os.listdir(directory)
            if name.endswith(".tmp")]


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = DiskSolverCache(str(tmp_path))
        calls = []
        value = cache.get_or_compute("k", lambda: calls.append(1) or 41)
        again = cache.get_or_compute("k", lambda: calls.append(1) or 99)
        assert (value, again) == (41, 41)
        assert calls == [1]
        assert (cache.hits, cache.misses, cache.corrupt) == (1, 1, 0)

    def test_entries_survive_the_instance(self, tmp_path):
        first = DiskSolverCache(str(tmp_path))
        first.get_or_compute(("net", 3), lambda: {"t": 57.5})
        reborn = DiskSolverCache(str(tmp_path))
        hit = reborn.get_or_compute(("net", 3), lambda: {"t": -1.0})
        assert hit == {"t": 57.5}
        assert (reborn.hits, reborn.misses) == (1, 0)

    def test_structured_keys_and_values(self, tmp_path):
        cache = DiskSolverCache(str(tmp_path))
        key = ("solve", (("power", 20.0), ("cooling", "afT")), 4)
        stored = cache.get_or_compute(key, lambda: [1.0, float("inf")])
        assert cache.get_or_compute(key, lambda: None) == stored

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = DiskSolverCache(str(tmp_path))
        for i in range(8):
            cache.get_or_compute(f"k{i}", lambda: i)
        assert tmp_files(str(tmp_path)) == []
        assert len(entry_files(str(tmp_path))) == 8
        assert len(cache) == 8

    def test_stats_and_clear(self, tmp_path):
        cache = DiskSolverCache(str(tmp_path), max_entries=100)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("a", lambda: 1)
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries,
                stats.corrupt, stats.max_entries) == (1, 1, 1, 0, 100)
        cache.clear()
        assert entry_files(str(tmp_path)) == []
        assert cache.stats().misses == 0

    def test_input_validation(self, tmp_path):
        with pytest.raises(InputError):
            DiskSolverCache("")
        with pytest.raises(InputError):
            DiskSolverCache(str(tmp_path), max_entries=-1)


class TestBound:
    def test_full_cache_stops_persisting_but_still_returns(self, tmp_path):
        cache = DiskSolverCache(str(tmp_path), max_entries=2)
        assert [cache.get_or_compute(f"k{i}", lambda i=i: i * 10)
                for i in range(5)] == [0, 10, 20, 30, 40]
        assert len(cache) == 2

    def test_zero_bound_never_persists(self, tmp_path):
        cache = DiskSolverCache(str(tmp_path), max_entries=0)
        assert cache.get_or_compute("k", lambda: 7) == 7
        assert entry_files(str(tmp_path)) == []


class TestCorruption:
    def _entry(self, tmp_path):
        names = entry_files(str(tmp_path))
        assert len(names) == 1
        return tmp_path / names[0]

    def test_bitflipped_payload_is_evicted_and_recomputed(self, tmp_path):
        cache = DiskSolverCache(str(tmp_path))
        cache.get_or_compute("k", lambda: 41)
        entry = self._entry(tmp_path)
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0x08
        entry.write_bytes(bytes(blob))

        assert cache.get_or_compute("k", lambda: 42) == 42
        assert cache.corrupt == 1
        # The recompute was re-persisted atomically; the damaged file
        # is gone and a later lookup hits again.
        assert cache.get_or_compute("k", lambda: -1) == 42
        assert cache.hits == 1

    def test_bad_magic_is_evicted(self, tmp_path):
        cache = DiskSolverCache(str(tmp_path))
        cache.get_or_compute("k", lambda: 41)
        entry = self._entry(tmp_path)
        entry.write_bytes(b"not-an-avipack-entry\n" + b"x" * 16)
        assert cache.get_or_compute("k", lambda: 42) == 42
        assert cache.corrupt == 1

    def test_truncated_entry_is_evicted(self, tmp_path):
        cache = DiskSolverCache(str(tmp_path))
        cache.get_or_compute("k", lambda: {"big": list(range(64))})
        entry = self._entry(tmp_path)
        entry.write_bytes(entry.read_bytes()[:len(_MAGIC) + 20])
        assert cache.get_or_compute("k", lambda: "fresh") == "fresh"
        assert cache.corrupt == 1

    def test_injected_fault_site(self, tmp_path):
        # durability.cache_disk_corrupt classifies a pristine file as
        # damaged on its first read: evict + recompute, never raise.
        cache = DiskSolverCache(str(tmp_path))
        cache.get_or_compute("k", lambda: 41)
        faults_mod.install(FaultPlan(specs=(
            FaultSpec("durability.cache_disk_corrupt", "cache_corrupt"),)))
        try:
            assert cache.get_or_compute("k", lambda: 42) == 42
            assert (cache.corrupt, cache.misses) == (1, 2)
            # persist=1: the fault fires once per (site, scope); the
            # re-persisted entry reads back clean.
            assert cache.get_or_compute("k", lambda: -1) == 42
        finally:
            faults_mod.uninstall()


class TestWorkerSingleton:
    def test_one_instance_per_directory(self, tmp_path):
        a1 = worker_disk_cache(str(tmp_path / "a"))
        a2 = worker_disk_cache(str(tmp_path / "a"))
        b = worker_disk_cache(str(tmp_path / "b"))
        assert a1 is a2
        assert a1 is not b


class TestSweepIntegration:
    SPACE = DesignSpace(axes={
        "power_per_module": (10.0, 20.0),
        "cooling": ("direct_air_flow", "air_flow_through"),
    })

    def test_second_run_hits_disk(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = SweepRunner(parallel=False, cache_dir=cache_dir) \
            .run(self.SPACE)
        warm = SweepRunner(parallel=False, cache_dir=cache_dir) \
            .run(self.SPACE)
        assert cold.cache.misses > 0
        assert warm.cache.hits > 0
        assert warm.cache.misses == 0
        assert [(o.fingerprint, o.worst_board_c) for o in warm.results] \
            == [(o.fingerprint, o.worst_board_c) for o in cold.results]
        # Disk-backed runs report an unbounded persistent cache.
        assert warm.cache.max_entries is None
