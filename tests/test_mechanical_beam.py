"""Tests for the beam FEM against closed-form solutions."""

import numpy as np
import pytest

from avipack.errors import InputError
from avipack.mechanical.beam import (
    BeamModel,
    BeamSection,
    simply_supported_beam_frequency,
)


@pytest.fixture
def alu_section():
    return BeamSection.rectangular(0.02, 0.005, 70e9, 2700.0)


def pinned_beam(section, length=0.5, n=40):
    beam = BeamModel(length, section, n)
    beam.set_support("left", "pinned")
    beam.set_support("right", "pinned")
    return beam


class TestSections:
    def test_rectangular_inertia(self):
        sec = BeamSection.rectangular(0.02, 0.01, 70e9, 2700.0)
        assert sec.inertia == pytest.approx(0.02 * 0.01 ** 3 / 12.0)

    def test_tube_area(self):
        sec = BeamSection.tube(0.03, 0.002, 70e9, 2700.0)
        expected = np.pi / 4.0 * (0.03 ** 2 - 0.026 ** 2)
        assert sec.area == pytest.approx(expected)

    def test_tube_wall_too_thick(self):
        with pytest.raises(InputError):
            BeamSection.tube(0.03, 0.02, 70e9, 2700.0)

    def test_invalid_section(self):
        with pytest.raises(InputError):
            BeamSection(area=-1.0, inertia=1e-8, youngs_modulus=70e9,
                        density=2700.0)


class TestModal:
    def test_pinned_pinned_matches_analytic(self, alu_section):
        beam = pinned_beam(alu_section)
        fem = beam.natural_frequencies(3)
        for mode in range(1, 4):
            analytic = simply_supported_beam_frequency(0.5, alu_section,
                                                       mode)
            assert fem[mode - 1] == pytest.approx(analytic, rel=0.001)

    def test_clamped_clamped_stiffer_than_pinned(self, alu_section):
        pinned = pinned_beam(alu_section)
        clamped = BeamModel(0.5, alu_section, 40)
        clamped.set_support("left", "clamped")
        clamped.set_support("right", "clamped")
        assert clamped.natural_frequencies(1)[0] \
            > 2.0 * pinned.natural_frequencies(1)[0]

    def test_cantilever_frequency(self, alu_section):
        # f1 = (1.8751^2 / 2 pi L^2) sqrt(EI/rhoA).
        beam = BeamModel(0.3, alu_section, 40)
        beam.set_support("left", "clamped")
        ei = alu_section.youngs_modulus * alu_section.inertia
        rho_a = alu_section.density * alu_section.area
        analytic = 1.8751 ** 2 / (2.0 * np.pi * 0.3 ** 2) \
            * np.sqrt(ei / rho_a)
        assert beam.natural_frequencies(1)[0] == pytest.approx(analytic,
                                                               rel=0.001)

    def test_point_mass_lowers_frequency(self, alu_section):
        bare = pinned_beam(alu_section)
        loaded = pinned_beam(alu_section)
        loaded.add_point_mass(0.25, 0.5)
        assert loaded.natural_frequencies(1)[0] \
            < bare.natural_frequencies(1)[0]

    def test_mass_at_node_of_mode2_ignored_by_mode2(self, alu_section):
        # Mass at mid-span sits on mode 2's node: f2 barely changes.
        bare = pinned_beam(alu_section)
        loaded = pinned_beam(alu_section)
        loaded.add_point_mass(0.25, 0.3)
        f2_bare = bare.natural_frequencies(2)[1]
        f2_loaded = loaded.natural_frequencies(2)[1]
        assert f2_loaded == pytest.approx(f2_bare, rel=0.01)

    def test_unconstrained_rejected(self, alu_section):
        beam = BeamModel(0.5, alu_section)
        with pytest.raises(InputError):
            beam.natural_frequencies(1)


class TestStatic:
    def test_center_load_matches_analytic(self, alu_section):
        # Pinned-pinned centre load: delta = F L^3 / (48 EI).
        beam = pinned_beam(alu_section, n=40)
        deflection = beam.static_deflection({0.25: 100.0})
        ei = alu_section.youngs_modulus * alu_section.inertia
        analytic = 100.0 * 0.5 ** 3 / (48.0 * ei)
        assert deflection[20] == pytest.approx(analytic, rel=0.001)

    def test_supports_stay_put(self, alu_section):
        beam = pinned_beam(alu_section)
        deflection = beam.static_deflection({0.25: 100.0})
        assert deflection[0] == pytest.approx(0.0, abs=1e-15)
        assert deflection[-1] == pytest.approx(0.0, abs=1e-15)

    def test_quasi_static_9g(self, alu_section):
        # The paper's acceleration test: deflection under 9 g must exceed
        # the 1 g deflection by exactly 9x (linear).
        beam = pinned_beam(alu_section)
        d9 = beam.quasi_static_acceleration_deflection(9.0 * 9.80665)
        d1 = beam.quasi_static_acceleration_deflection(9.80665)
        assert np.max(np.abs(d9)) == pytest.approx(
            9.0 * np.max(np.abs(d1)), rel=1e-9)

    def test_bending_stress_positive(self, alu_section):
        beam = pinned_beam(alu_section)
        deflection = beam.static_deflection({0.25: 100.0})
        stress = beam.max_bending_stress(deflection, 0.0025)
        assert stress > 0.0

    def test_bending_stress_wrong_shape(self, alu_section):
        beam = pinned_beam(alu_section)
        with pytest.raises(InputError):
            beam.max_bending_stress(np.zeros(3), 0.0025)

    def test_off_beam_load_rejected(self, alu_section):
        beam = pinned_beam(alu_section)
        with pytest.raises(InputError):
            beam.static_deflection({2.0: 100.0})
