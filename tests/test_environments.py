"""Tests for DO-160, ARINC 600 and qualification profiles."""

import math

import pytest

from avipack.errors import InputError
from avipack.environments.arinc600 import (
    CardChannel,
    STANDARD_FLOW_KG_H_PER_KW,
    allocated_mass_flow,
    hotspot_surface_rise,
    module_performance,
    required_flow_multiplier,
)
from avipack.environments.do160 import (
    TEMPERATURE_CATEGORIES,
    ambient_pressure_at_altitude,
    curve_names,
    temperature_category,
    vibration_curve,
)
from avipack.environments.profiles import (
    AccelerationTest,
    ClimaticTest,
    ThermalShockTest,
    VibrationTest,
    cosee_campaign,
)
from avipack.units import celsius_to_kelvin


class TestDo160Vibration:
    def test_curve_c1_exists(self):
        assert "C1" in curve_names()

    def test_curve_plateau_levels_ordered(self):
        # Severity order: B < C < C1 < D < E.
        order = ["B", "C", "C1", "D", "E"]
        levels = [vibration_curve(c).level(100.0) for c in order]
        assert levels == sorted(levels)

    def test_curve_shape_rises_then_falls(self):
        psd = vibration_curve("C1")
        assert psd.level(10.0) < psd.level(100.0)
        assert psd.level(2000.0) < psd.level(100.0)

    def test_c1_grms_magnitude(self):
        # 0.02 g2/Hz plateau from 40-500 Hz: grms ~ 3.5-4.5 g.
        grms = vibration_curve("C1").rms_g()
        assert 3.0 < grms < 5.5

    def test_unknown_curve(self):
        with pytest.raises(InputError):
            vibration_curve("Z9")


class TestTemperatureCategories:
    def test_a1_operating_band(self):
        cat = temperature_category("A1")
        assert cat.contains_operating(celsius_to_kelvin(20.0))
        assert not cat.contains_operating(celsius_to_kelvin(70.0))

    def test_external_category_colder(self):
        assert TEMPERATURE_CATEGORIES["D2"].operating_low \
            < TEMPERATURE_CATEGORIES["A1"].operating_low

    def test_unknown_category(self):
        with pytest.raises(InputError):
            temperature_category("Q7")

    def test_all_categories_consistent(self):
        for cat in TEMPERATURE_CATEGORIES.values():
            assert cat.operating_low < cat.operating_high


class TestAltitude:
    def test_sea_level(self):
        assert ambient_pressure_at_altitude(0.0) \
            == pytest.approx(101_325.0)

    def test_cruise_altitude(self):
        # 11 km: ~22.6 kPa.
        assert ambient_pressure_at_altitude(11_000.0) \
            == pytest.approx(22_632.0, rel=0.01)

    def test_monotone_decreasing(self):
        p = [ambient_pressure_at_altitude(h)
             for h in (0.0, 3000.0, 8000.0, 12_000.0, 16_000.0)]
        assert p == sorted(p, reverse=True)

    def test_negative_altitude_rejected(self):
        with pytest.raises(InputError):
            ambient_pressure_at_altitude(-100.0)


class TestArinc600:
    def test_standard_flow_constant(self):
        assert STANDARD_FLOW_KG_H_PER_KW == pytest.approx(220.0)

    def test_allocation_scales_with_power(self):
        assert allocated_mass_flow(200.0) \
            == pytest.approx(2.0 * allocated_mass_flow(100.0))

    def test_module_performance_monotone_in_power_rise(self):
        # Board rise grows with dissipation generation: 10 -> 30 -> 60 W.
        rises = [module_performance(p).surface_rise
                 for p in (10.0, 30.0, 60.0)]
        assert rises == sorted(rises)

    def test_outlet_rise_fixed_by_allocation(self):
        # T_out - T_in = Q/(mdot cp) with mdot ~ Q: constant ~16 K.
        p1 = module_performance(10.0)
        p2 = module_performance(60.0)
        rise1 = p1.outlet_temperature - 313.15
        rise2 = p2.outlet_temperature - 313.15
        assert rise1 == pytest.approx(rise2, rel=1e-6)
        assert 10.0 < rise1 < 20.0

    def test_flow_multiplier_cools(self):
        base = module_performance(60.0)
        boosted = module_performance(60.0, flow_multiplier=10.0)
        assert boosted.surface_temperature < base.surface_temperature

    def test_hotspot_rise_formula(self):
        assert hotspot_surface_rise(1e6, 100.0) == pytest.approx(1e4)

    def test_hotspot_crisis_100w_cm2_infeasible(self):
        # The paper's conclusion: forced air cannot cope with 100 W/cm2.
        multiplier = required_flow_multiplier(100.0, 60.0)
        assert multiplier == float("inf")

    def test_moderate_hotspot_needs_multiple_of_standard(self):
        # ~10 W/cm2 class hot spots need several times the allocation
        # ("up to ten times the standard air flow rate").
        multiplier = required_flow_multiplier(5.0, 60.0)
        assert 1.0 < multiplier < 200.0

    def test_small_flux_fine_at_standard(self):
        assert required_flow_multiplier(0.2, 60.0) == pytest.approx(1.0)

    def test_channel_geometry(self):
        channel = CardChannel()
        assert channel.hydraulic_diameter \
            == pytest.approx(4.0 * channel.flow_area
                             / (2 * (channel.card_height
                                     + channel.channel_gap)))

    def test_invalid_power(self):
        with pytest.raises(InputError):
            module_performance(-10.0)


class TestProfiles:
    def test_cosee_campaign_matches_paper(self):
        campaign = cosee_campaign()
        assert campaign.acceleration.level_g == pytest.approx(9.0)
        assert campaign.acceleration.duration_per_axis_s \
            == pytest.approx(180.0)
        assert campaign.climatic.ambient_low \
            == pytest.approx(celsius_to_kelvin(-25.0))
        assert campaign.climatic.ambient_high \
            == pytest.approx(celsius_to_kelvin(55.0))
        assert campaign.thermal_shock.temperature_low \
            == pytest.approx(celsius_to_kelvin(-45.0))
        assert campaign.thermal_shock.ramp_rate_k_per_min \
            == pytest.approx(5.0)

    def test_thermal_shock_period(self):
        shock = ThermalShockTest(dwell_time_s=600.0)
        ramp = shock.swing / shock.ramp_rate_k_per_s
        assert shock.cycle_period_s == pytest.approx(2 * (600.0 + ramp))

    def test_climatic_evaluation_points(self):
        points = ClimaticTest().evaluation_points(5)
        assert len(points) == 5
        assert points[0] == pytest.approx(celsius_to_kelvin(-25.0))
        assert points[-1] == pytest.approx(celsius_to_kelvin(55.0))

    def test_vibration_from_curve(self):
        test = VibrationTest.do160("C1")
        assert test.psd.level(100.0) == pytest.approx(
            vibration_curve("C1").level(100.0))

    def test_invalid_acceleration(self):
        with pytest.raises(InputError):
            AccelerationTest(level_g=-9.0)

    def test_invalid_axis(self):
        with pytest.raises(InputError):
            AccelerationTest(axes=("x", "q"))

    def test_invalid_climatic_order(self):
        with pytest.raises(InputError):
            ClimaticTest(ambient_low=celsius_to_kelvin(60.0),
                         ambient_high=celsius_to_kelvin(55.0))
