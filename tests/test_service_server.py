"""In-process integration tests for the sweep job service.

A real :class:`~avipack.service.ThreadedService` (asyncio server on a
background thread, Unix socket, JSON lines) driven through the real
:class:`~avipack.service.ServiceClient`: submission parity against a
direct runner, dedup, structured admission rejections, cooperative
cancellation, event-stream contiguity and replay, deadline
enforcement, and drain-then-restart resume parity — everything short
of killing the process (the subprocess drills live in
``test_service_drain.py`` / ``test_service_chaos.py``).
"""

import os
import shutil
import tempfile

import pytest

from avipack.errors import ServiceError
from avipack.service import (
    AdmissionPolicy,
    ServiceClient,
    ServiceConfig,
    ThreadedService,
)
from avipack.sweep import DesignSpace, SweepRunner

#: Mixed-compliance space (8 of 12 comply) shared with the chaos tests.
AXES = {
    "power_per_module": [8.0, 12.0, 16.0, 20.0, 24.0, 28.0],
    "cooling": ["direct_air_flow", "air_flow_through"],
}

SPACE = DesignSpace(axes={name: tuple(values)
                          for name, values in AXES.items()})


def expected_ranking():
    report = SweepRunner(parallel=False).run(SPACE)
    return [[o.fingerprint, o.cost_rank, round(o.worst_board_c, 9)]
            for o in report.ranked()]


@pytest.fixture()
def sockets():
    # AF_UNIX paths are capped around 108 bytes; pytest tmp paths can
    # blow past that, so sockets live in a short-lived /tmp dir.
    sock_dir = tempfile.mkdtemp(prefix="avisvc", dir="/tmp")
    yield sock_dir
    shutil.rmtree(sock_dir, ignore_errors=True)


def make_config(sockets, tmp_path, name="a", **overrides):
    defaults = dict(
        socket_path=os.path.join(sockets, f"{name}.sock"),
        journal_dir=str(tmp_path / "jobs"),
        parallel=False,
        heartbeat_s=0.1,
        stall_timeout_s=60.0)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestSubmitAndComplete:
    def test_ranking_parity_with_direct_runner(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            accepted = client.submit(axes=AXES)
            assert accepted["state"] == "queued"
            assert accepted["n_candidates"] == 12
            final = client.wait(accepted["job_id"], timeout_s=120.0)
        assert final["state"] == "completed"
        assert final["done"] == 12
        assert final["result"]["n_compliant"] == 8
        assert final["result"]["ranking"] == expected_ranking()

    def test_event_stream_is_contiguous_and_replayable(
            self, sockets, tmp_path):
        config = make_config(sockets, tmp_path, throttle_s=0.02)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = client.submit(axes=AXES)["job_id"]
            events = list(client.stream(job_id))
            seqs = [event["seq"] for event in events]
            assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
            assert events[-1]["event"] == "completed"
            kinds = {event["event"] for event in events}
            assert {"queued", "started", "progress",
                    "completed"} <= kinds
            # Replaying from the middle yields exactly the tail.
            replayed = list(client.stream(job_id, from_seq=seqs[5]))
            assert [e["seq"] for e in replayed] == seqs[5:]
            assert replayed == events[5:]

    def test_heartbeats_are_emitted(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path, throttle_s=0.1,
                             heartbeat_s=0.05)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = client.submit(axes=AXES)["job_id"]
            events = list(client.stream(job_id))
        assert any(e["event"] == "heartbeat" for e in events)

    def test_duplicate_active_submission_dedups(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path, throttle_s=0.1)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            first = client.submit(axes=AXES, client="alice")
            second = client.submit(axes=AXES, client="bob")
            assert second.get("deduplicated") is True
            assert second["job_id"] == first["job_id"]
            client.cancel(first["job_id"])

    def test_stats_and_perf_surface(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = client.submit(axes=AXES)["job_id"]
            client.wait(job_id, timeout_s=120.0)
            payload = client.stats()
            assert payload["stats"]["accepted"] == 1
            assert payload["stats"]["completed"] == 1
            assert payload["stats"]["evaluated_candidates"] == 12
            assert payload["perf"]["solves"] >= 1
            assert payload["perf"]["iterations"] >= 12


class TestAdmission:
    def test_saturated_queue_rejects_with_structured_reason(
            self, sockets, tmp_path):
        config = make_config(
            sockets, tmp_path, throttle_s=0.2,
            admission=AdmissionPolicy(max_queued=1,
                                      max_jobs_per_client=8))
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            running = client.submit(axes=AXES, seed=1)["job_id"]
            queued = client.submit(axes=AXES, sample=6,
                                   seed=2)["job_id"]
            with pytest.raises(ServiceError) as excinfo:
                client.submit(axes=AXES, sample=6, seed=3)
            assert excinfo.value.code == "queue_full"
            assert "bound" in str(excinfo.value)
            client.cancel(queued)
            client.cancel(running)

    def test_per_client_quota(self, sockets, tmp_path):
        config = make_config(
            sockets, tmp_path, throttle_s=0.2,
            admission=AdmissionPolicy(max_queued=8,
                                      max_jobs_per_client=1))
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            mine = client.submit(axes=AXES, client="alice")["job_id"]
            with pytest.raises(ServiceError) as excinfo:
                client.submit(axes=AXES, sample=6, client="alice")
            assert excinfo.value.code == "quota_exceeded"
            # Another tenant is unaffected.
            other = client.submit(axes=AXES, sample=6, seed=9,
                                  client="bob")["job_id"]
            client.cancel(other)
            client.cancel(mine)

    def test_oversized_job_rejected(self, sockets, tmp_path):
        config = make_config(
            sockets, tmp_path,
            admission=AdmissionPolicy(max_candidates_per_job=4))
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(axes=AXES)
            assert excinfo.value.code == "job_too_large"

    def test_invalid_space_rejected(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(axes={"warp_factor": [9]})
            assert excinfo.value.code == "invalid_space"

    def test_unknown_job_is_structured(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            with pytest.raises(ServiceError) as excinfo:
                client.status("j999999")
            assert excinfo.value.code == "unknown_job"


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, sockets, tmp_path):
        config = make_config(
            sockets, tmp_path, throttle_s=0.2,
            admission=AdmissionPolicy(max_queued=4,
                                      max_jobs_per_client=8))
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            running = client.submit(axes=AXES, seed=1)["job_id"]
            queued = client.submit(axes=AXES, sample=6,
                                   seed=2)["job_id"]
            cancelled = client.cancel(queued, reason="changed my mind")
            assert cancelled["state"] == "cancelled"
            final = client.status(queued)
            assert final["state"] == "cancelled"
            assert final["done"] == 0
            client.cancel(running)

    def test_cancel_running_job_stops_at_candidate_boundary(
            self, sockets, tmp_path):
        config = make_config(sockets, tmp_path, throttle_s=0.15)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = client.submit(axes=AXES)["job_id"]
            events = []
            requested = False
            for event in client.stream(job_id):
                events.append(event)
                if not requested and event["event"] == "progress" \
                        and event["done"] >= 2:
                    client.cancel(job_id, reason="enough")
                    requested = True
            assert events[-1]["event"] == "cancelled"
            final = client.status(job_id)
            assert final["state"] == "cancelled"
            assert 2 <= final["done"] < 12
        # The journalled prefix survived the cancellation cleanly.
        from avipack.durability import replay_journal
        journal = os.path.join(str(tmp_path / "jobs"),
                               f"{job_id}.journal.jsonl")
        replay = replay_journal(journal, write_quarantine=False)
        assert replay.n_quarantined == 0
        assert len(replay.outcomes) == final["done"]

    def test_cancel_terminal_job_refused(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = client.submit(axes=AXES, sample=2)["job_id"]
            client.wait(job_id, timeout_s=120.0)
            with pytest.raises(ServiceError) as excinfo:
                client.cancel(job_id)
            assert excinfo.value.code == "not_cancellable"


class TestDeadlines:
    def test_job_deadline_cancels_at_boundary(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path, throttle_s=0.2,
                             heartbeat_s=0.05)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = client.submit(axes=AXES, deadline_s=0.5)["job_id"]
            events = list(client.stream(job_id))
            assert events[-1]["event"] == "cancelled"
            assert "deadline" in events[-1]["reason"]
            final = client.status(job_id)
            assert final["state"] == "cancelled"
            assert 0 < final["done"] < 12


class TestReplayBounds:
    def test_evicted_buffer_resets_to_head(self, sockets, tmp_path):
        config = make_config(sockets, tmp_path, event_buffer=4)
        with ThreadedService(config):
            client = ServiceClient(config.socket_path)
            job_id = client.submit(axes=AXES)["job_id"]
            client.wait(job_id, timeout_s=120.0)
            status = client.status(job_id)
            base = status["next_seq"] - 4
            # from_seq=0 is long gone; the client transparently resets
            # to the advertised buffer head and still reaches terminal.
            events = list(client.stream(job_id, from_seq=0))
            assert events[0]["seq"] == base
            assert events[-1].get("terminal") is True


class TestDrainResume:
    def test_drain_interrupts_then_restart_resumes_to_parity(
            self, sockets, tmp_path):
        config = make_config(sockets, tmp_path, throttle_s=0.15)
        first = ThreadedService(config)
        first.start()
        client = ServiceClient(config.socket_path)
        job_id = client.submit(axes=AXES)["job_id"]
        # Let a couple of candidates land in the journal, then drain.
        for event in client.stream(job_id):
            if event["event"] == "progress" and event["done"] >= 2:
                break
        first.stop(timeout_s=60.0)

        from avipack.durability import replay_journal
        journal = os.path.join(str(tmp_path / "jobs"),
                               f"{job_id}.journal.jsonl")
        partial = replay_journal(journal, write_quarantine=False)
        assert partial.n_quarantined == 0
        assert 0 < len(partial.outcomes) < 12

        # A new instance on the same journal dir resumes automatically.
        config2 = make_config(sockets, tmp_path, name="b")
        with ThreadedService(config2):
            client2 = ServiceClient(config2.socket_path)
            final = client2.wait(job_id, timeout_s=120.0)
            stats = client2.stats()["stats"]
        assert final["state"] == "completed"
        assert final["restored"] == len(partial.outcomes)
        assert final["result"]["ranking"] == expected_ranking()
        assert stats["recovered_jobs"] == 1
        assert stats["restored_candidates"] == len(partial.outcomes)

    def test_draining_server_rejects_submissions(self, sockets,
                                                 tmp_path):
        config = make_config(sockets, tmp_path, throttle_s=0.2)
        service = ThreadedService(config)
        service.start()
        try:
            client = ServiceClient(config.socket_path)
            job_id = client.submit(axes=AXES)["job_id"]
            client.shutdown()
            with pytest.raises(ServiceError) as excinfo:
                client.submit(axes=AXES, sample=6, seed=5)
            # Either the drain refusal, or the socket already went away.
            assert excinfo.value.code in ("draining", "unreachable")
            assert job_id  # the in-flight job is journalled, not lost
        finally:
            service.stop(timeout_s=60.0)
