"""Graceful-drain battery: SIGTERM against a real server process.

Satellite contract: SIGTERM during an active job stops admission,
interrupts the job at the next candidate boundary with its journal
flushed (no quarantined records), persists every manifest, and exits
0.  A restarted server resumes the interrupted job from the journal
and finishes with rankings identical to an uninterrupted run.
"""

import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from avipack.durability import replay_journal
from avipack.errors import ServiceError
from avipack.service import JobStore, ServiceClient
from avipack.sweep import DesignSpace, SweepRunner

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

AXES = {
    "power_per_module": [8.0, 12.0, 16.0, 20.0, 24.0, 28.0],
    "cooling": ["direct_air_flow", "air_flow_through"],
}


def expected_ranking():
    space = DesignSpace(axes={name: tuple(values)
                              for name, values in AXES.items()})
    report = SweepRunner(parallel=False).run(space)
    return [[o.fingerprint, o.cost_rank, round(o.worst_board_c, 9)]
            for o in report.ranked()]


@pytest.fixture()
def sockets():
    sock_dir = tempfile.mkdtemp(prefix="avidrain", dir="/tmp")
    yield sock_dir
    shutil.rmtree(sock_dir, ignore_errors=True)


def start_server(socket_path, journal_dir, throttle_s=0.15):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    process = subprocess.Popen(
        [sys.executable, "-m", "avipack", "serve",
         "--socket", socket_path, "--journal-dir", journal_dir,
         "--serial", "--heartbeat-s", "0.1",
         "--throttle-s", str(throttle_s)],
        env=env, cwd=journal_dir and os.path.dirname(journal_dir) or None,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    client = ServiceClient(socket_path, timeout_s=10.0, retries=2)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"server died during startup: "
                f"{process.stderr.read().decode()}")
        try:
            client.ping()
            return process, client
        except ServiceError:
            time.sleep(0.1)
    process.kill()
    raise AssertionError("server did not become ready")


def wait_for_progress(client, job_id, at_least, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status = client.status(job_id)
        if status["done"] >= at_least:
            return status
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached "
                         f"{at_least} candidates")


class TestGracefulDrain:
    def test_sigterm_journals_in_flight_work_and_exits_zero(
            self, sockets, tmp_path):
        journal_dir = str(tmp_path / "jobs")
        os.makedirs(journal_dir)
        socket_path = os.path.join(sockets, "drain.sock")
        process, client = start_server(socket_path, journal_dir)
        try:
            job_id = client.submit(axes=AXES)["job_id"]
            wait_for_progress(client, job_id, at_least=2)
            process.send_signal(signal.SIGTERM)
            rc = process.wait(timeout=60.0)
        finally:
            if process.poll() is None:
                process.kill()
        assert rc == 0, process.stderr.read().decode()

        # In-flight work was journalled cleanly: a resumable prefix,
        # zero quarantined records.
        journal = os.path.join(journal_dir, f"{job_id}.journal.jsonl")
        replay = replay_journal(journal, write_quarantine=False)
        assert replay.n_quarantined == 0
        assert 0 < len(replay.outcomes) < 12

        # The manifest marks the job interrupted (resumable), and the
        # interruption reason is the drain.
        (job,) = [j for j in JobStore(journal_dir).load_all()
                  if j.job_id == job_id]
        assert job.state == "interrupted"

        # A restarted server resumes the job to full-ranking parity.
        socket2 = os.path.join(sockets, "drain2.sock")
        process2, client2 = start_server(socket2, journal_dir,
                                         throttle_s=0.0)
        try:
            final = client2.wait(job_id, timeout_s=120.0)
            assert final["state"] == "completed"
            assert final["restored"] == len(replay.outcomes)
            assert final["result"]["ranking"] == expected_ranking()
            client2.shutdown()
            rc2 = process2.wait(timeout=60.0)
            assert rc2 == 0
        finally:
            if process2.poll() is None:
                process2.kill()

    def test_sigterm_with_idle_server_exits_zero_immediately(
            self, sockets, tmp_path):
        journal_dir = str(tmp_path / "jobs")
        os.makedirs(journal_dir)
        socket_path = os.path.join(sockets, "idle.sock")
        process, _client = start_server(socket_path, journal_dir)
        try:
            process.send_signal(signal.SIGTERM)
            rc = process.wait(timeout=30.0)
        finally:
            if process.poll() is None:
                process.kill()
        assert rc == 0
        assert not os.path.exists(socket_path)

    def test_sigterm_closes_admission(self, sockets, tmp_path):
        journal_dir = str(tmp_path / "jobs")
        os.makedirs(journal_dir)
        socket_path = os.path.join(sockets, "close.sock")
        process, client = start_server(socket_path, journal_dir)
        try:
            job_id = client.submit(axes=AXES)["job_id"]
            wait_for_progress(client, job_id, at_least=1)
            process.send_signal(signal.SIGTERM)
            # Between the signal and exit the server must refuse new
            # work; once it exits the socket is simply gone.  Distinct
            # client names and seeds keep quota/dedup out of the way.
            refused = None
            for attempt in range(200):
                try:
                    client.submit(axes=AXES, sample=6,
                                  seed=100 + attempt,
                                  client=f"probe{attempt}")
                except ServiceError as exc:
                    if exc.code in ("draining", "unreachable"):
                        refused = exc
                        break
                time.sleep(0.02)
            assert refused is not None
            assert process.wait(timeout=60.0) == 0
        finally:
            if process.poll() is None:
                process.kill()
