"""Tests for shock response and quasi-static acceleration checks."""

import math

import numpy as np
import pytest

from avipack.errors import InputError
from avipack.mechanical.shock import (
    QuasiStaticLoadCase,
    bracket_stress,
    fastener_shear_stress,
    half_sine_pulse,
    sdof_peak_response,
    shock_response_spectrum,
    terminal_sawtooth_pulse,
)
from avipack.units import G0


class TestPulses:
    def test_half_sine_peak(self):
        pulse = half_sine_pulse(6.0, 0.011)
        assert pulse(0.0055) == pytest.approx(6.0 * G0)

    def test_half_sine_zero_outside(self):
        pulse = half_sine_pulse(6.0, 0.011)
        assert pulse(-0.001) == 0.0
        assert pulse(0.02) == 0.0

    def test_sawtooth_peak_at_end(self):
        pulse = terminal_sawtooth_pulse(20.0, 0.011)
        assert pulse(0.011) == pytest.approx(20.0 * G0)
        assert pulse(0.0) == pytest.approx(0.0)

    def test_invalid_pulse(self):
        with pytest.raises(InputError):
            half_sine_pulse(-6.0, 0.011)


class TestSdofResponse:
    def test_static_regime_tracks_input(self):
        # f_n >> 1/duration: response approaches the input peak.
        pulse = half_sine_pulse(6.0, 0.011)
        peak = sdof_peak_response(2000.0, 0.05, pulse, 0.011)
        assert peak == pytest.approx(6.0, rel=0.1)

    def test_impulsive_regime_attenuates(self):
        # f_n << 1/duration: the mass barely moves.
        pulse = half_sine_pulse(6.0, 0.011)
        peak = sdof_peak_response(5.0, 0.05, pulse, 0.011)
        assert peak < 3.0

    def test_dynamic_amplification_near_resonance(self):
        # Half-sine SRS peaks ~1.6-1.8x input around f ~ 0.8/duration.
        pulse = half_sine_pulse(6.0, 0.011)
        peak = sdof_peak_response(0.8 / 0.011, 0.05, pulse, 0.011)
        assert 1.4 * 6.0 < peak < 1.9 * 6.0

    def test_damping_reduces_peak(self):
        pulse = half_sine_pulse(6.0, 0.011)
        light = sdof_peak_response(70.0, 0.02, pulse, 0.011)
        heavy = sdof_peak_response(70.0, 0.3, pulse, 0.011)
        assert heavy < light

    def test_invalid_damping(self):
        pulse = half_sine_pulse(6.0, 0.011)
        with pytest.raises(InputError):
            sdof_peak_response(100.0, 1.5, pulse, 0.011)


class TestSrs:
    def test_srs_shape(self):
        pulse = half_sine_pulse(6.0, 0.011)
        freqs = [5.0, 20.0, 70.0, 200.0, 1000.0]
        srs = shock_response_spectrum(pulse, 0.011, freqs)
        # Rising at low frequency, peak near 0.8/D, settling to input.
        assert srs[0] < srs[2]
        assert srs[2] == max(srs)
        assert srs[-1] == pytest.approx(6.0, rel=0.15)

    def test_srs_scales_with_input(self):
        freqs = [50.0, 100.0]
        srs6 = shock_response_spectrum(half_sine_pulse(6.0, 0.011),
                                       0.011, freqs)
        srs12 = shock_response_spectrum(half_sine_pulse(12.0, 0.011),
                                        0.011, freqs)
        assert np.allclose(srs12, 2.0 * srs6, rtol=1e-6)

    def test_empty_frequencies_rejected(self):
        with pytest.raises(InputError):
            shock_response_spectrum(half_sine_pulse(6.0, 0.011), 0.011, [])


class TestQuasiStatic:
    def test_paper_load_case(self):
        # 9 g, 3 minutes per axis.
        case = QuasiStaticLoadCase(acceleration_g=9.0)
        assert case.duration_s == pytest.approx(180.0)
        assert case.inertial_force(2.0) == pytest.approx(2.0 * 9.0 * G0)

    def test_invalid_axis(self):
        with pytest.raises(InputError):
            QuasiStaticLoadCase(9.0, axis="w")

    def test_bracket_stress(self):
        # 100 N at 50 mm on Z = 1e-7 m3: 50 MPa.
        assert bracket_stress(100.0, 0.05, 1e-7) == pytest.approx(5.0e7)

    def test_fastener_shear(self):
        stress = fastener_shear_stress(1000.0, 4, 4e-3)
        area = math.pi / 4.0 * (4e-3) ** 2
        assert stress == pytest.approx(1000.0 / (4 * area))

    def test_fastener_count_validated(self):
        with pytest.raises(InputError):
            fastener_shear_stress(1000.0, 0, 4e-3)
