"""Scenario: the complete COSEE study — Fig. 10, the §IV.A claims and
the qualification campaign.

Regenerates the paper's seat-electronics-box evaluation end to end:

1. the Fig. 10 curves (ΔT vs power, three configurations) printed as an
   ASCII chart;
2. the headline claims for the aluminium and carbon-composite seats;
3. the virtual environmental qualification campaign (9 g, DO-160 C1,
   climatic, thermal shock).

Run:  python examples/seat_electronics_cooling.py
"""

from avipack.core.qualification import run_campaign
from avipack.core.report import render_qualification_report
from avipack.environments.profiles import cosee_campaign
from avipack.experiments.cosee import (
    fig10_curves,
    measure_claims,
    measure_composite_claims,
    seb_under_test,
)


def ascii_chart(curves, width=60, max_delta=120.0):
    """Plot the Fig. 10 curves as rows of characters."""
    markers = {"without_lhp": "x", "with_lhp_horizontal": "o",
               "with_lhp_tilt22": "+"}
    print(f"  dT(PCB-air) [K] vs power [W]   "
          f"(x = no LHP, o = LHP horizontal, + = LHP 22deg)")
    all_points = []
    for name, curve in curves.items():
        for power, delta in curve:
            all_points.append((power, delta, markers[name]))
    for power in sorted({p for p, _d, _m in all_points}):
        line = [" "] * (width + 1)
        for p, delta, marker in all_points:
            if p == power:
                column = min(int(delta / max_delta * width), width)
                line[column] = marker
        print(f"  {power:5.0f} W |{''.join(line)}")
    print(f"          +{'-' * width}")
    print(f"           0{' ' * (width - 8)}{max_delta:.0f} K")


def main() -> None:
    print("=" * 70)
    print("1. Fig. 10 - thermal results")
    print("=" * 70)
    curves = fig10_curves()
    ascii_chart(curves)

    print()
    print("=" * 70)
    print("2. Quantitative claims (paper vs model)")
    print("=" * 70)
    aluminum = measure_claims()
    composite = measure_composite_claims()
    print(f"  aluminium seat : capability {aluminum.capability_without_lhp:5.1f}"
          f" -> {aluminum.capability_with_lhp:5.1f} W "
          f"(+{aluminum.capability_increase_pct:.0f} %, paper: +150 %)")
    print(f"                   dT drop at 40 W: "
          f"{aluminum.temperature_drop_at_40w:.1f} K (paper: 32 K)")
    print(f"                   LHP share at capability: "
          f"{aluminum.lhp_heat_at_capability:.1f} W (paper: 58 W)")
    print(f"  composite seat : capability {composite.capability_without_lhp:5.1f}"
          f" -> {composite.capability_with_lhp:5.1f} W "
          f"(+{composite.capability_increase_pct:.0f} %, paper: +80 %)")
    print(f"                   dT drop at 40 W: "
          f"{composite.temperature_drop_at_40w:.1f} K (paper: 20 K)")

    print()
    print("=" * 70)
    print("3. Virtual qualification campaign")
    print("=" * 70)
    report = run_campaign(seb_under_test(power=40.0), cosee_campaign())
    print(render_qualification_report(report))


if __name__ == "__main__":
    main()
