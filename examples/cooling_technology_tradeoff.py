"""Scenario: the cooling-capacity crisis and the architecture decision.

Walks the paper's §I/§III/§IV argument quantitatively:

1. the module dissipation trend (10 -> 30 -> 60 W in the same envelope)
   against standard ARINC 600 forced air;
2. the hot-spot analysis: the flow multiplier needed as local fluxes
   climb from 1 to 100 W/cm²;
3. the architecture selector verdict for each scenario — showing exactly
   where "standard cooling approaches using forced air are no longer
   applicable" and a two-phase system becomes mandatory.

Run:  python examples/cooling_technology_tradeoff.py
"""

from avipack.core.selector import (
    ThermalRequirement,
    assess,
    forced_air_no_longer_applicable,
    select_architecture,
)
from avipack.environments.arinc600 import (
    module_performance,
    required_flow_multiplier,
)
from avipack.packaging.module import module_generation
from avipack.units import kelvin_to_celsius


def main() -> None:
    print("1. Module dissipation trend under ARINC 600 forced air")
    print("-" * 60)
    for generation in ("current", "near_future", "next"):
        module = module_generation(generation)
        performance = module_performance(module.power)
        board_c = kelvin_to_celsius(performance.surface_temperature)
        verdict = "OK" if board_c <= 85.0 else "OVER 85 degC"
        print(f"  {generation:<12} {module.power:5.0f} W/module -> "
              f"board {board_c:6.1f} degC  [{verdict}]")

    print()
    print("2. Hot-spot crisis: extra air needed vs local flux")
    print("-" * 60)
    for flux in (1.0, 5.0, 10.0, 20.0, 50.0, 100.0):
        multiplier = required_flow_multiplier(flux, 60.0)
        label = (f"{multiplier:5.1f} x standard flow"
                 if multiplier != float("inf") else
                 "infeasible with air")
        print(f"  {flux:6.1f} W/cm2 -> {label}")

    print()
    print("3. Architecture selection per scenario")
    print("-" * 60)
    scenarios = {
        "today's rack card (10 W, 2 W/cm2)":
            ThermalRequirement(module_power=10.0, peak_flux_w_cm2=2.0),
        "next-gen card (60 W, 8 W/cm2)":
            ThermalRequirement(module_power=60.0, peak_flux_w_cm2=8.0),
        "hot-spot module (120 W, 40 W/cm2)":
            ThermalRequirement(module_power=120.0, peak_flux_w_cm2=40.0),
        "cabin SEB (100 W, no ECS air, 0.6 m to sink)":
            ThermalRequirement(module_power=100.0, peak_flux_w_cm2=15.0,
                               air_available=False,
                               coldwall_available=False,
                               transport_distance=0.6),
    }
    for label, requirement in scenarios.items():
        choice = select_architecture(requirement)
        crisis = forced_air_no_longer_applicable(requirement)
        print(f"  {label}")
        print(f"      -> {choice.value}"
              + ("   [forced air no longer applicable]" if crisis
                 else ""))
        rejected = [a for a in assess(requirement) if not a.viable][:2]
        for verdict in rejected:
            print(f"         rejected {verdict.architecture.value}: "
                  f"{verdict.reasons[0]}")


if __name__ == "__main__":
    main()
