"""Scenario: a failed design review closed by the advisor.

Start with a deliberately weak design — a thin, soft board whose first
mode violates the frequency-allocation plan and whose hot component
drives an MTBF miss — run the Fig. 1 procedure, let the advisor propose
quantified moves, apply them, and re-run to compliance.  The "design at
a minimum cost and in one shot" loop, automated.

Run:  python examples/design_iteration.py
"""

from dataclasses import replace

from avipack import (
    FrequencyAllocation,
    PackagingSpecification,
    run_design_procedure,
)
from avipack.core.advisor import advise
from avipack.packaging.component import make_component
from avipack.packaging.module import Module
from avipack.packaging.pcb import Pcb
from avipack.packaging.rack import Rack


def weak_rack() -> Rack:
    """A thin 1.0 mm board with sparse copper - soft AND hot."""
    rack = Rack("draft_unit")
    board = Pcb(0.16, 0.10, thickness=1.0e-3, n_copper_layers=2,
                copper_coverage=0.3)
    board.place(make_component("cpu", "bga_23mm", 6.0, (0.08, 0.05)))
    board.place(make_component("reg", "to_220", 4.0, (0.04, 0.03)))
    rack.add_module(Module("card1", pcb=board))
    return rack


def improved_rack() -> Rack:
    """The advised design: thick laminate, heavy copper, spread power."""
    rack = Rack("revised_unit")
    board = Pcb(0.16, 0.10, thickness=2.4e-3, n_copper_layers=8,
                copper_coverage=0.75)
    board.place(make_component("cpu", "bga_35mm", 4.0, (0.08, 0.05)))
    board.place(make_component("reg", "to_220", 3.0, (0.04, 0.03)))
    board.place(make_component("aux", "dpak", 3.0, (0.12, 0.07)))
    rack.add_module(Module("card1", pcb=board))
    return rack


def main() -> None:
    spec = PackagingSpecification(
        name="draft_unit",
        frequency_allocation=FrequencyAllocation(150.0, 2000.0),
    )

    print("ITERATION 1 - draft design")
    print("-" * 60)
    review = run_design_procedure(weak_rack(), spec)
    if review.violations:
        for violation in review.violations:
            print(f"  VIOLATION: {violation}")
    else:
        print("  (unexpectedly compliant)")

    print()
    print("ADVISOR - proposed moves (cheapest first)")
    print("-" * 60)
    for move in advise(review, module_power=10.0, peak_flux_w_cm2=2.0):
        print(f"  [{move.category}/{move.intrusiveness}] {move.action}")

    print()
    print("ITERATION 2 - revised design")
    print("-" * 60)
    revised_spec = replace(spec, name="revised_unit")
    revised = run_design_procedure(improved_rack(), revised_spec)
    if revised.compliant:
        print(f"  COMPLIANT: f1 = {revised.mechanical.fundamental_hz:.0f}"
              f" Hz (plan: 150-2000 Hz), worst board "
              f"{revised.thermal.level2.worst_board_temperature - 273.15:.1f}"
              " degC")
    else:
        for violation in revised.violations:
            print(f"  STILL OPEN: {violation}")


if __name__ == "__main__":
    main()
