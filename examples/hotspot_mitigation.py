"""Scenario: taming a 100 W/cm² hot spot.

Walks the escalation chain for the paper's projected worst case — a
1 cm² source at 100 W/cm²:

1. direct air at the ARINC 600 allocation (fails by orders of
   magnitude);
2. a copper spreader to a cold plate (helps, still hot);
3. a copper/water vapor chamber (makes it routine);
4. the operating limits that bound the chamber solution.

Run:  python examples/hotspot_mitigation.py
"""

from avipack.environments.arinc600 import (
    hotspot_surface_rise,
    module_performance,
    required_flow_multiplier,
)
from avipack.twophase.vaporchamber import electronics_vapor_chamber

POWER = 100.0        # W
SOURCE_AREA = 1e-4   # 1 cm2
T_VAPOR = 353.15     # chamber vapour temperature


def main() -> None:
    print(f"Problem: {POWER:.0f} W on 1 cm2 (100 W/cm2), cold plate / "
          "air at 40-70 degC\n")

    # 1. Direct air.
    performance = module_performance(POWER)
    rise_air = hotspot_surface_rise(POWER / SOURCE_AREA,
                                    performance.film_coefficient)
    print(f"1. direct ARINC 600 air       : local rise "
          f"{rise_air:8.0f} K   -> impossible")
    multiplier = required_flow_multiplier(100.0, 60.0)
    print(f"   flow needed for +60 K      : "
          f"{'infeasible at any sane flow' if multiplier == float('inf') else f'{multiplier:.0f}x the allocation'}")

    # 2 & 3. Spreaders.
    chamber = electronics_vapor_chamber()
    r_chamber = chamber.hotspot_resistance(SOURCE_AREA, T_VAPOR)
    r_copper = r_chamber * chamber.improvement_over_copper(SOURCE_AREA,
                                                           T_VAPOR)
    print(f"2. 3 mm copper spreader       : source rise "
          f"{POWER * r_copper:8.1f} K   -> marginal")
    print(f"3. copper/water vapor chamber : source rise "
          f"{POWER * r_chamber:8.1f} K   -> routine")
    print(f"   chamber k_eff = "
          f"{chamber.effective_conductivity(T_VAPOR):.0f} W/m.K "
          f"({chamber.effective_conductivity(T_VAPOR) / 398.0:.0f}x "
          "copper)")

    # 4. Limits.
    print()
    print("4. chamber operating limits:")
    print(f"   boiling (on the 1 cm2 source): "
          f"{chamber.boiling_limit(SOURCE_AREA):.0f} W")
    print(f"   capillary (return from periphery): "
          f"{chamber.capillary_limit(T_VAPOR):.0f} W")
    chamber.check_operation(POWER, SOURCE_AREA, T_VAPOR)
    print(f"   -> {POWER:.0f} W is inside the envelope")


if __name__ == "__main__":
    main()
