"""Scenario: NANOPACK thermal-interface-material engineering.

Plays the §IV.B programme on the simulation side:

1. design the three adhesive classes by filler loading (Lewis–Nielsen),
   hitting the 6 / 9.5 / 20 W/m·K targets;
2. assemble every catalogued TIM on flat and HNC-machined surfaces and
   score them against the project objective (< 5 K·mm²/W, BLT < 20 µm);
3. characterise the winners on the virtual ASTM D5470 tester;
4. quantify what the better TIM buys at system level: the junction
   temperature of a 50 W power module across its saddle interface.

Run:  python examples/tim_selection.py
"""

from avipack.experiments.nanopack import (
    characterize_material,
    design_nanopack_adhesives,
    hnc_interface_study,
)
from avipack.tim.catalog import get_tim


def main() -> None:
    print("1. Filler design for the NANOPACK conductivity targets")
    print("-" * 64)
    for design in design_nanopack_adhesives():
        print(f"  {design.name:<28} {design.filler_loading * 100:5.1f} "
              f"vol% silver -> {design.achieved_conductivity:5.2f} W/m.K"
              f"  (rho = {design.volume_resistivity * 100:.2e} Ohm.cm)")

    print()
    print("2. Interface scoring (target < 5 K.mm2/W at BLT < 20 um)")
    print("-" * 64)
    print(f"  {'TIM':<34}{'flat':>10}{'HNC':>10}{'meets':>8}")
    for study in hnc_interface_study():
        print(f"  {study.material_name:<34}"
              f"{study.resistance_flat_kmm2:>10.2f}"
              f"{study.resistance_hnc_kmm2:>10.2f}"
              f"{'  yes' if study.meets_target_hnc else '   no':>8}")

    print()
    print("3. Virtual ASTM D5470 characterisation")
    print("-" * 64)
    for name in ("standard_grease", "nanopack_silver_sphere_epoxy",
                 "nanopack_metal_polymer_composite"):
        result = characterize_material(name)
        print(f"  {name:<34} k = {result.conductivity:6.2f} W/m.K "
              f"(true {get_tim(name).conductivity:5.2f}), "
              f"Rc = {result.contact_resistance_kmm2:.2f} K.mm2/W")

    print()
    print("4. System-level payoff: 50 W module saddle (4 cm2)")
    print("-" * 64)
    area, power, t_sink_c = 4.0e-4, 50.0, 70.0
    for name in ("silicone_pad", "standard_grease",
                 "nanopack_metal_polymer_composite"):
        interface = get_tim(name).assemble(area, hnc_surface=True)
        rise = power * interface.resistance
        print(f"  {name:<34} interface dT = {rise:6.2f} K -> "
              f"case at {t_sink_c + rise:6.1f} degC")
    print()
    print("  -> the 20 W/m.K composite makes the interface drop "
          "negligible, which is what lets the HP/LHP chain work.")


if __name__ == "__main__":
    main()
