"""Quickstart: cool a seat electronics box with and without loop heat
pipes.

The 60-second tour of avipack: build the COSEE seat electronics box,
solve its thermal state at 40 W under passive (natural convection)
cooling and with the heat-pipe + loop-heat-pipe chain, and print the
comparison — the paper's headline "32 degC decrease without the use of
fans".

Run:  python examples/quickstart.py
"""

from avipack import SeatElectronicsBox, SebConfiguration
from avipack.units import kelvin_to_celsius


def main() -> None:
    seb = SeatElectronicsBox()
    power = 40.0  # W dissipated inside the box

    passive = seb.solve(power, SebConfiguration(cooling="natural"))
    assisted = seb.solve(power, SebConfiguration(cooling="hp_lhp"))

    print(f"Seat electronics box at {power:.0f} W, cabin at "
          f"{kelvin_to_celsius(passive.ambient):.0f} degC")
    print()
    print(f"  natural convection only : PCB at "
          f"{kelvin_to_celsius(passive.pcb_temperature):6.1f} degC "
          f"(dT = {passive.delta_t_pcb_air:.1f} K)")
    print(f"  with HP + LHP chain     : PCB at "
          f"{kelvin_to_celsius(assisted.pcb_temperature):6.1f} degC "
          f"(dT = {assisted.delta_t_pcb_air:.1f} K)")
    print()
    drop = passive.delta_t_pcb_air - assisted.delta_t_pcb_air
    print(f"  -> the two-phase chain buys {drop:.1f} K at the PCB "
          "(paper: ~32 K), without fans")
    print(f"  -> {assisted.lhp_heat:.1f} W of the {power:.0f} W leave "
          "through the loop heat pipes into the seat structure")

    # How far can each configuration go before the PCB runs 60 K hot?
    cap_passive = seb.max_power_for_delta_t(
        60.0, SebConfiguration(cooling="natural"))
    cap_assisted = seb.max_power_for_delta_t(
        60.0, SebConfiguration(cooling="hp_lhp"))
    print()
    print(f"  capability at dT = 60 K: {cap_passive:.0f} W passive -> "
          f"{cap_assisted:.0f} W with LHPs "
          f"(+{(cap_assisted / cap_passive - 1) * 100:.0f} %)")


if __name__ == "__main__":
    main()
