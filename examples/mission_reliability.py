"""Scenario: mission-profile reliability and the degraded-cooling case.

The §II.B reliability calculation, taken through a full flight profile:

1. solve the SEB thermal model at the ground / climb / cruise operating
   points to get per-phase junction temperatures;
2. roll them up into the duty-cycle-weighted MTBF;
3. quantify the dispatch question a safety case asks: what does flying
   5 % of the time with one LHP failed cost in MTBF?

Run:  python examples/mission_reliability.py
"""

from avipack.packaging.seb import SeatElectronicsBox, SebConfiguration
from avipack.reliability.mission import (
    degraded_cooling_penalty,
    predict_mission_mtbf,
    standard_flight_profile,
)
from avipack.reliability.mtbf import PartReliability
from avipack.units import celsius_to_kelvin, kelvin_to_celsius

PARTS = [
    PartReliability("cpu", 250.0, activation_energy_ev=0.5,
                    quality="full_mil"),
    PartReliability("video", 200.0, activation_energy_ev=0.45,
                    quality="full_mil"),
    PartReliability("psu", 180.0, quality="full_mil"),
]


def junctions_for(seb, power, ambient_c, cooling="hp_lhp"):
    """Junction temperatures of the three parts at one operating point.

    The SEB network gives the PCB temperature; each part adds its
    package rise (simplified R_jb at its share of the power).
    """
    config = SebConfiguration(cooling=cooling,
                              ambient=celsius_to_kelvin(ambient_c))
    pcb = seb.solve(power, config).pcb_temperature
    shares = {"cpu": 0.5, "video": 0.3, "psu": 0.2}
    rises = {"cpu": 6.0, "video": 9.0, "psu": 3.0}  # R_jb [K/W]
    return {name: pcb + shares[name] * power * rises[name] / 10.0
            for name in shares}


def main() -> None:
    seb = SeatElectronicsBox()

    ground = junctions_for(seb, power=20.0, ambient_c=35.0)
    climb = junctions_for(seb, power=40.0, ambient_c=28.0)
    cruise = junctions_for(seb, power=40.0, ambient_c=22.0)

    print("1. Per-phase junction temperatures (LHP-cooled SEB)")
    print("-" * 60)
    for name, junctions in (("ground", ground), ("climb", climb),
                            ("cruise", cruise)):
        worst = max(junctions.values())
        print(f"  {name:<8} worst junction "
              f"{kelvin_to_celsius(worst):.1f} degC")

    profile = standard_flight_profile(ground, climb, cruise)
    mission = predict_mission_mtbf(PARTS, list(profile))
    print()
    print("2. Mission-weighted reliability")
    print("-" * 60)
    print(f"  mission MTBF: {mission.mtbf_hours:.0f} h "
          f"(target 40,000 h -> "
          f"{'OK' if mission.compliant_40k else 'MISS'})")
    print(f"  worst phase : {mission.worst_phase}")

    degraded = junctions_for(seb, power=40.0, ambient_c=22.0,
                             cooling="natural")
    nominal_mtbf, dispatch_mtbf = degraded_cooling_penalty(
        PARTS, cruise, degraded, degraded_exposure=0.05)
    print()
    print("3. Dispatch with one cooling chain failed (5 % exposure)")
    print("-" * 60)
    print(f"  nominal MTBF          : {nominal_mtbf:.0f} h")
    print(f"  with degraded dispatch: {dispatch_mtbf:.0f} h "
          f"({(1.0 - dispatch_mtbf / nominal_mtbf) * 100.0:.0f} % "
          "penalty)")
    print("  -> the degraded junctions dominate the budget even at 5 % "
          "exposure: fix cooling failures at the next stop.")


if __name__ == "__main__":
    main()
