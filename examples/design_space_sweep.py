"""Scenario: batch design-space exploration with the sweep engine.

The paper's objective — "design at a minimum cost and in one shot" —
becomes a batch problem once several packaging choices are open at
once: cooling mode, thermal interface material, ATR width and power
budget multiply into hundreds of candidate stacks.  This example:

1. builds the canonical cooling × TIM × form-factor × power trade
   space (every Fig. 5 technique, cheap grease vs a NANOPACK TIM);
2. sweeps it through the full Fig. 1 procedure (thermal pyramid +
   mechanical branch) with solver caching, in parallel when the
   machine allows;
3. prints the ranked compliant candidates and the execution/cache
   statistics, then shows how invalid points are isolated as
   structured failures instead of aborting the batch;
4. journals a campaign, kills it mid-flight, and resumes it from the
   write-ahead journal — the resumed report ranks identically to an
   uninterrupted run and only the unfinished candidates are re-paid.

Run:  python examples/design_space_sweep.py
"""

import os
import signal
import subprocess
import sys
import tempfile
import textwrap
import time

from avipack.durability import replay_journal
from avipack.sweep import (
    Candidate,
    DesignSpace,
    SweepRunner,
    render_sweep_document,
)

#: The journalled campaign the demo SIGKILLs mid-flight.  A real crash
#: needs a real process: the child sleeps per candidate so the kill
#: reliably lands while work is still owed.
_DOOMED_SWEEP = textwrap.dedent("""
    import sys, time
    from avipack.sweep import DesignSpace, SweepRunner
    from avipack.sweep.runner import evaluate_candidate

    def slow(task):
        time.sleep(0.2)
        return evaluate_candidate(task)

    space = DesignSpace.standard_tradeoff(powers=(10.0, 20.0, 30.0))
    SweepRunner(parallel=False, evaluator=slow).run(
        space.sample(12, seed=0), journal_path=sys.argv[1])
""")


def _crash_and_resume(journal: str) -> None:
    child = subprocess.Popen(
        [sys.executable, "-c", _DOOMED_SWEEP, journal],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and child.poll() is None:
            try:
                if len(replay_journal(journal,
                                      write_quarantine=False).outcomes) >= 4:
                    break
            except Exception:
                pass
            time.sleep(0.05)
    finally:
        if child.poll() is None:
            os.kill(child.pid, signal.SIGKILL)
        child.wait()

    survivors = replay_journal(journal, write_quarantine=False)
    print(f"  SIGKILLed the campaign with "
          f"{len(survivors.outcomes)}/12 candidates journalled")

    space = DesignSpace.standard_tradeoff(powers=(10.0, 20.0, 30.0))
    resumed = SweepRunner(parallel=False).resume(journal)
    stats = resumed.durability
    print(f"  resumed: {stats.n_resumed} restored from the journal, "
          f"{stats.n_recomputed} recomputed, "
          f"{stats.n_quarantined} quarantined")
    fresh = SweepRunner(parallel=False).run(space.sample(12, seed=0))
    parity = ([(o.fingerprint, o.cost_rank) for o in resumed.ranked()]
              == [(o.fingerprint, o.cost_rank) for o in fresh.ranked()])
    print(f"  ranking parity with an uninterrupted run: {parity}")


def main() -> None:
    print("1. The trade space")
    print("-" * 60)
    space = DesignSpace.standard_tradeoff(powers=(10.0, 20.0, 30.0))
    for name, values in space.axes.items():
        pretty = ", ".join(getattr(v, "value", str(v)) for v in values)
        print(f"  {name:<18}: {pretty}")
    print(f"  -> {space.size} candidate stacks")

    print()
    print("2. Sweep (parallel, cached)")
    print("-" * 60)
    report = SweepRunner().run(space)
    print(render_sweep_document(report, top=8))

    print()
    print("3. Failure isolation")
    print("-" * 60)
    mixed = [
        Candidate(power_per_module=15.0),
        Candidate(tim_name="unobtainium_paste"),   # unknown TIM
        Candidate(power_per_module=-3.0),          # impossible budget
        Candidate(power_per_module=25.0),
    ]
    partial = SweepRunner(parallel=False).run(mixed)
    print(f"  {len(partial.results)} evaluated, "
          f"{len(partial.failures)} isolated failures:")
    for failure in partial.failures:
        print(f"    #{failure.index} [{failure.stage}] "
              f"{failure.error_type}: {failure.message}")

    print()
    print("4. Crash-safe resume from the write-ahead journal")
    print("-" * 60)
    with tempfile.TemporaryDirectory() as scratch:
        _crash_and_resume(os.path.join(scratch, "campaign.jsonl"))


if __name__ == "__main__":
    main()
