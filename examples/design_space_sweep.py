"""Scenario: batch design-space exploration with the sweep engine.

The paper's objective — "design at a minimum cost and in one shot" —
becomes a batch problem once several packaging choices are open at
once: cooling mode, thermal interface material, ATR width and power
budget multiply into hundreds of candidate stacks.  This example:

1. builds the canonical cooling × TIM × form-factor × power trade
   space (every Fig. 5 technique, cheap grease vs a NANOPACK TIM);
2. sweeps it through the full Fig. 1 procedure (thermal pyramid +
   mechanical branch) with solver caching, in parallel when the
   machine allows;
3. prints the ranked compliant candidates and the execution/cache
   statistics, then shows how invalid points are isolated as
   structured failures instead of aborting the batch.

Run:  python examples/design_space_sweep.py
"""

from avipack.sweep import (
    Candidate,
    DesignSpace,
    SweepRunner,
    render_sweep_document,
)


def main() -> None:
    print("1. The trade space")
    print("-" * 60)
    space = DesignSpace.standard_tradeoff(powers=(10.0, 20.0, 30.0))
    for name, values in space.axes.items():
        pretty = ", ".join(getattr(v, "value", str(v)) for v in values)
        print(f"  {name:<18}: {pretty}")
    print(f"  -> {space.size} candidate stacks")

    print()
    print("2. Sweep (parallel, cached)")
    print("-" * 60)
    report = SweepRunner().run(space)
    print(render_sweep_document(report, top=8))

    print()
    print("3. Failure isolation")
    print("-" * 60)
    mixed = [
        Candidate(power_per_module=15.0),
        Candidate(tim_name="unobtainium_paste"),   # unknown TIM
        Candidate(power_per_module=-3.0),          # impossible budget
        Candidate(power_per_module=25.0),
    ]
    partial = SweepRunner(parallel=False).run(mixed)
    print(f"  {len(partial.results)} evaluated, "
          f"{len(partial.failures)} isolated failures:")
    for failure in partial.failures:
        print(f"    #{failure.index} [{failure.stage}] "
              f"{failure.error_type}: {failure.message}")


if __name__ == "__main__":
    main()
