"""Scenario: run the full Fig. 1 packaging design procedure on an
avionics computer.

Builds a two-board ARINC-rack computer (the Fig. 6 equipment class),
writes its specification — DO-160 category A1 environment, curve C1
vibration, a frequency-allocation plan, the 85/125 degC rules and the
40 000 h MTBF target — and runs the parallel thermal + mechanical
procedure, printing the resulting packaging design document.

Run:  python examples/design_avionics_computer.py
"""

from avipack import (
    FrequencyAllocation,
    PackagingSpecification,
    run_design_procedure,
)
from avipack.core.report import render_design_document
from avipack.packaging.component import make_component
from avipack.packaging.module import Module
from avipack.packaging.pcb import Pcb
from avipack.packaging.rack import Rack
from avipack.reliability.mtbf import PartReliability


def build_computer() -> Rack:
    """A 2-card mission computer: CPU card + power/IO card."""
    rack = Rack("mission_computer")

    cpu_card = Pcb(0.16, 0.10, n_copper_layers=8, copper_coverage=0.7)
    cpu_card.place(make_component("cpu", "bga_35mm", 3.0, (0.08, 0.05)))
    cpu_card.place(make_component("ddr", "bga_23mm", 1.0, (0.12, 0.07)))
    rack.add_module(Module("cpu_card", pcb=cpu_card))

    power_card = Pcb(0.16, 0.10, n_copper_layers=8, copper_coverage=0.7)
    power_card.place(make_component("buck", "to_220", 2.0, (0.05, 0.05)))
    power_card.place(make_component("ldo", "dpak", 1.0, (0.11, 0.05)))
    rack.add_module(Module("power_card", pcb=power_card))
    return rack


def main() -> None:
    rack = build_computer()
    specification = PackagingSpecification(
        name="mission_computer",
        temperature_category_name="A1",
        vibration_curve_name="C1",
        frequency_allocation=FrequencyAllocation(150.0, 2000.0),
        mission_vibration_hours=10_000.0,
    )
    parts = [
        PartReliability("cpu", 150.0, activation_energy_ev=0.5,
                        quality="full_mil"),
        PartReliability("ddr", 80.0, quality="full_mil"),
        PartReliability("buck", 100.0, quality="full_mil"),
        PartReliability("ldo", 60.0, quality="full_mil"),
    ]

    review = run_design_procedure(rack, specification, parts=parts)
    print(render_design_document(review))

    if review.compliant:
        print()
        print("Design accepted: thermal, mechanical and reliability "
              "branches all green in one pass.")
    else:
        print()
        print("Design iteration required; address the violations above.")


if __name__ == "__main__":
    main()
